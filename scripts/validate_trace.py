#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file exported by ``--trace``.

Usage: ``python scripts/validate_trace.py trace.json``

Exits non-zero (with the first violation on stderr) if the file does
not conform to the trace-event subset ``repro.obs`` emits; prints a
one-line summary otherwise.  CI runs this against the demo's export so
the trace schema cannot silently drift.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.context import validate_chrome_trace  # noqa: E402


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: validate_trace.py TRACE.json", file=sys.stderr)
        return 2
    path = pathlib.Path(argv[0])
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 1
    try:
        count = validate_chrome_trace(payload)
    except ValueError as exc:
        print(f"invalid trace {path}: {exc}", file=sys.stderr)
        return 1
    phases = {
        event["name"]
        for event in payload["traceEvents"]
        if event.get("cat") == "phase"
    }
    missing = {"prep", "lopt", "ann", "exec"} - phases
    if missing:
        print(
            f"invalid trace {path}: missing phase span(s) "
            f"{sorted(missing)}",
            file=sys.stderr,
        )
        return 1
    print(f"{path}: {count} trace events OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
