"""Shared logical rewrites: pushdown, pruning, join reordering."""

import pytest

from repro.engine.cost import CardinalityEstimator
from repro.engine.database import Database
from repro.relational import algebra
from repro.relational.builder import build_plan
from repro.relational.optimizer import (
    collect_join_region,
    prune_columns,
    push_filters,
    reorder_joins,
)
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows


@pytest.fixture
def db():
    database = Database("D")
    database.create_table(
        "big",
        Schema(
            [Field("k", INTEGER), Field("g", INTEGER), Field("v", DOUBLE)]
        ),
        [(i, i % 10, float(i)) for i in range(500)],
    )
    database.create_table(
        "mid",
        Schema([Field("k", INTEGER), Field("m", INTEGER)]),
        [(i * 2, i % 7) for i in range(100)],
    )
    database.create_table(
        "small",
        Schema([Field("m", INTEGER), Field("name", varchar(8))]),
        [(i, f"n{i}") for i in range(7)],
    )
    return database


def plan_of(db, sql):
    return build_plan(parse_statement(sql), db.catalog)


def scans_under_filters(plan):
    """(filter predicate count directly above each scan)."""
    out = []

    def walk(node):
        if isinstance(node, algebra.Filter) and isinstance(
            node.child, algebra.Scan
        ):
            out.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return out


# -- filter pushdown -------------------------------------------------------------


def test_pushdown_moves_single_table_predicates_to_scans(db):
    plan = plan_of(
        db,
        "SELECT b.v FROM big b, mid m "
        "WHERE b.k = m.k AND b.g > 5 AND m.m = 1",
    )
    pushed = push_filters(plan)
    filters = scans_under_filters(pushed)
    assert len(filters) == 2  # one per table


def test_pushdown_turns_cross_join_into_inner(db):
    plan = plan_of(
        db, "SELECT b.v FROM big b, mid m WHERE b.k = m.k"
    )
    pushed = push_filters(plan)

    def find_join(node):
        if isinstance(node, algebra.Join):
            return node
        for child in node.children():
            found = find_join(child)
            if found:
                return found
        return None

    join = find_join(pushed)
    assert join.kind == "INNER"
    assert join.condition is not None


def test_pushdown_preserves_results(db):
    sql = (
        "SELECT b.g, COUNT(*) AS n FROM big b, mid m, small s "
        "WHERE b.k = m.k AND m.m = s.m AND b.v > 100 AND s.name <> 'n3' "
        "GROUP BY b.g"
    )
    baseline = db.execute(sql)
    plan = push_filters(plan_of(db, sql))
    physical = db.planner.to_physical(plan)
    assert_same_rows(list(physical.rows()), baseline.rows)


def test_pushdown_does_not_cross_limit(db):
    plan = plan_of(
        db,
        "SELECT q.v FROM (SELECT v FROM big LIMIT 5) AS q WHERE q.v > 1",
    )
    pushed = push_filters(plan)

    # The filter must remain above the Limit.
    def check(node, filter_seen_above_limit=False):
        if isinstance(node, algebra.Limit):
            for scan_filter in scans_under_filters(node):
                raise AssertionError("filter crossed a LIMIT")
        for child in node.children():
            check(child)

    check(pushed)
    physical = db.planner.to_physical(pushed)
    rows = list(physical.rows())
    assert all(row[0] > 1 for row in rows)


def test_pushdown_left_join_keeps_right_filter_above(db):
    sql = (
        "SELECT b.k, m.m FROM big b LEFT JOIN mid m ON b.k = m.k "
        "WHERE m.m = 1"
    )
    baseline = db.execute(sql)
    pushed = push_filters(plan_of(db, sql))
    physical = db.planner.to_physical(pushed)
    assert_same_rows(list(physical.rows()), baseline.rows)


# -- projection pruning ------------------------------------------------------------


def test_prune_inserts_narrow_projects_over_scans(db):
    plan = push_filters(
        plan_of(
            db,
            "SELECT b.v FROM big b, mid m WHERE b.k = m.k",
        )
    )
    pruned = prune_columns(plan)
    scans = pruned.leaves()
    for scan in scans:
        # every scan feeds a narrowing projection
        parents = _parents_of(pruned, scan)
        assert any(isinstance(p, algebra.Project) for p in parents)


def test_prune_keeps_join_keys(db):
    sql = "SELECT b.v FROM big b, mid m WHERE b.k = m.k"
    plan = prune_columns(push_filters(plan_of(db, sql)))
    physical = db.planner.to_physical(plan)
    baseline = db.execute(sql)
    assert_same_rows(list(physical.rows()), baseline.rows)


def test_prune_preserves_aggregate_inputs(db):
    sql = (
        "SELECT b.g, SUM(b.v) AS s FROM big b, mid m "
        "WHERE b.k = m.k GROUP BY b.g"
    )
    plan = prune_columns(push_filters(plan_of(db, sql)))
    physical = db.planner.to_physical(plan)
    baseline = db.execute(sql)
    assert_same_rows(list(physical.rows()), baseline.rows)


def _parents_of(root, target):
    parents = []

    def walk(node):
        for child in node.children():
            if child is target:
                parents.append(node)
            walk(child)

    walk(root)
    return parents


# -- join reordering -----------------------------------------------------------------


def _estimator(db):
    return CardinalityEstimator(db.planner.scan_stats)


def test_collect_join_region_units_and_edges(db):
    plan = push_filters(
        plan_of(
            db,
            "SELECT b.v FROM big b, mid m, small s "
            "WHERE b.k = m.k AND m.m = s.m",
        )
    )

    def find_join(node):
        if isinstance(node, algebra.Join):
            return node
        for child in node.children():
            found = find_join(child)
            if found is not None:
                return found
        return None

    region, leftover = collect_join_region(find_join(plan))
    assert len(region.units) == 3
    assert len(region.equi_edges) == 2
    assert not leftover


def test_reorder_starts_from_selective_unit(db):
    plan = push_filters(
        plan_of(
            db,
            "SELECT b.v FROM big b, mid m, small s "
            "WHERE b.k = m.k AND m.m = s.m AND s.name = 'n3'",
        )
    )
    estimator = _estimator(db)
    ordered = reorder_joins(
        plan, estimator.estimate_rows, estimator.estimate_ndv
    )
    # The big table joins last: the selective small⋈mid pair goes first
    # (ties between equal-cost prefixes may order mid/small either way).
    scans = ordered.leaves()
    assert scans[-1].table == "big"
    assert {scans[0].table, scans[1].table} == {"mid", "small"}


def test_reorder_preserves_results(db):
    sql = (
        "SELECT b.g, COUNT(*) AS n FROM big b, mid m, small s "
        "WHERE b.k = m.k AND m.m = s.m GROUP BY b.g"
    )
    baseline = db.execute(sql)
    estimator = _estimator(db)
    plan = reorder_joins(
        push_filters(plan_of(db, sql)),
        estimator.estimate_rows,
        estimator.estimate_ndv,
    )
    physical = db.planner.to_physical(plan)
    assert_same_rows(list(physical.rows()), baseline.rows)


def test_reorder_handles_cross_product_when_unavoidable(db):
    sql = "SELECT COUNT(*) AS n FROM mid m, small s"
    baseline = db.execute(sql)
    estimator = _estimator(db)
    plan = reorder_joins(
        push_filters(plan_of(db, sql)),
        estimator.estimate_rows,
        estimator.estimate_ndv,
    )
    physical = db.planner.to_physical(plan)
    assert list(physical.rows()) == baseline.rows


def test_reorder_attaches_complex_predicate_once_covered(db):
    sql = (
        "SELECT COUNT(*) AS n FROM big b, mid m "
        "WHERE b.k = m.k AND b.g + m.m > 3"
    )
    baseline = db.execute(sql)
    estimator = _estimator(db)
    plan = reorder_joins(
        push_filters(plan_of(db, sql)),
        estimator.estimate_rows,
        estimator.estimate_ndv,
    )
    physical = db.planner.to_physical(plan)
    assert list(physical.rows()) == baseline.rows


def test_self_join_with_aliases_reorders_safely(db):
    sql = (
        "SELECT COUNT(*) AS n FROM mid m1, mid m2 "
        "WHERE m1.k = m2.k AND m1.m > 2"
    )
    baseline = db.execute(sql)
    estimator = _estimator(db)
    plan = reorder_joins(
        push_filters(plan_of(db, sql)),
        estimator.estimate_rows,
        estimator.estimate_ndv,
    )
    physical = db.planner.to_physical(plan)
    assert list(physical.rows()) == baseline.rows


# -- DP enumeration speed --------------------------------------------------------


def _chain_database(relations):
    """``relations`` tables t0..t{n-1} joined in a chain on b = a."""
    database = Database("CHAIN")
    for i in range(relations):
        database.create_table(
            f"t{i}",
            Schema([Field("a", INTEGER), Field("b", INTEGER)]),
            [(j, j) for j in range(5 + i)],
        )
    joins = " AND ".join(
        f"t{i}.b = t{i + 1}.a" for i in range(relations - 1)
    )
    sql = (
        "SELECT COUNT(*) AS n FROM "
        + ", ".join(f"t{i}" for i in range(relations))
        + " WHERE "
        + joins
    )
    return database, sql


def test_reorder_ten_relation_chain_is_fast_and_correct():
    """The subset DP (memoized set_rows, adjacency-set connectivity)
    must enumerate a 10-relation region quickly — and still produce the
    correct join result."""
    from repro.obs.clock import wall_now

    database, sql = _chain_database(10)
    baseline = database.execute(sql)

    estimator = _estimator(database)
    plan = push_filters(plan_of(database, sql))
    start = wall_now()
    ordered = reorder_joins(
        plan, estimator.estimate_rows, estimator.estimate_ndv
    )
    elapsed = wall_now() - start
    # 2^10 subsets x 10 extension candidates: well under a second with
    # the memoized estimator; the bound is generous for slow CI boxes.
    assert elapsed < 2.0

    physical = database.planner.to_physical(ordered)
    assert list(physical.rows()) == baseline.rows


def test_reorder_bushy_eight_relation_chain_is_fast_and_correct():
    from repro.obs.clock import wall_now

    database, sql = _chain_database(8)
    baseline = database.execute(sql)

    estimator = _estimator(database)
    plan = push_filters(plan_of(database, sql))
    start = wall_now()
    ordered = reorder_joins(
        plan,
        estimator.estimate_rows,
        estimator.estimate_ndv,
        shape="bushy",
    )
    elapsed = wall_now() - start
    assert elapsed < 3.0

    physical = database.planner.to_physical(ordered)
    assert list(physical.rows()) == baseline.rows
