"""Partitioned tables and intra-query parallelism.

Covers the partition spec (routing, validation, compatibility), the
expansion pass through a real federation (co-partitioned joins staying
in-situ, mismatched keys forcing a repartition edge), composition with
replication and drift (a dead shard's replica is picked; drift on one
partition quarantines only that holder), the schedule simulator's
worker-slot model, and the worker pool's context propagation — the
span tree stays well-formed and counters stay query-scoped even when
branches run on pool threads.
"""

import re

import pytest

from repro.core.client import XDB
from repro.core.partition import (
    PartitionSpec,
    cross_shard_bytes,
    is_partition_table,
    partition_name,
    stable_hash,
)
from repro.core.timing import simulate_schedule
from repro.drift import apply_drift
from repro.engine.parallel import WorkerPool, makespan
from repro.errors import CatalogError
from repro.faults import SchemaDrift
from repro.federation.deployment import Deployment
from repro.health import BreakerConfig
from repro.obs.context import validate_chrome_trace
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows

DBS = ["p1", "p2", "p3", "p4"]

ORDERS = Schema(
    [
        Field("o_orderkey", INTEGER),
        Field("o_custkey", INTEGER),
        Field("o_total", DOUBLE),
    ]
)
ORDERS_ROWS = [(i, i % 10, float(i * 7 % 90)) for i in range(80)]

LINEITEM = Schema(
    [
        Field("l_orderkey", INTEGER),
        Field("l_qty", INTEGER),
    ]
)
LINEITEM_ROWS = [(i % 80, 1 + i % 5) for i in range(200)]

CUSTOMER = Schema(
    [
        Field("c_custkey", INTEGER),
        Field("c_name", varchar(16)),
    ]
)
CUSTOMER_ROWS = [(i, f"cust{i}") for i in range(10)]

JOIN_SQL = """
    SELECT o.o_custkey, SUM(l.l_qty) AS total
    FROM orders o, lineitem l
    WHERE o.o_orderkey = l.l_orderkey
    GROUP BY o.o_custkey
    ORDER BY total DESC, o.o_custkey
"""

TRIPLE_SQL = """
    SELECT c.c_name, SUM(l.l_qty) AS total
    FROM customer c, orders o, lineitem l
    WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
    GROUP BY c.c_name
    ORDER BY total DESC, c.c_name
"""

ORDERS_SQL = """
    SELECT o_custkey, SUM(o_total) AS total
    FROM orders
    GROUP BY o_custkey
    ORDER BY total DESC, o_custkey
"""


def load_tables(dep: Deployment, db: str) -> None:
    dep.load_table(db, "orders", ORDERS, ORDERS_ROWS)
    dep.load_table(db, "lineitem", LINEITEM, LINEITEM_ROWS)
    dep.load_table(db, "customer", CUSTOMER, CUSTOMER_ROWS)


def build_sharded(
    workers: int = 2,
    lineitem_key: str = "l_orderkey",
    orders_dbs=None,
) -> Deployment:
    """orders + lineitem hash-partitioned across four engines; the
    customer dimension replicated everywhere."""
    dep = Deployment(
        {name: "postgres" for name in DBS}, parallel_workers=workers
    )
    load_tables(dep, "p1")
    for db in DBS[1:]:
        dep.replicate_table("customer", db, from_db="p1")
    dep.partition_table("orders", "o_orderkey", orders_dbs or DBS)
    dep.partition_table("lineitem", lineitem_key, DBS)
    return dep


def truth_rows(sql: str):
    """Ground truth: the same data, unpartitioned, on one engine."""
    dep = Deployment({"T": "postgres"})
    load_tables(dep, "T")
    return XDB(dep).submit(sql).result.rows


def branch_tasks(dplan):
    return [
        task
        for task in dplan.tasks.values()
        if any(is_partition_table(name) for name in task.base_tables())
    ]


def all_spans(root):
    yield root
    for child in root.children:
        yield from all_spans(child)


# -- the spec: routing, validation, compatibility ------------------------


def test_spec_validation_rejects_bad_inputs():
    with pytest.raises(CatalogError):
        PartitionSpec("t", "k", 4, scheme="mod")
    with pytest.raises(CatalogError):
        PartitionSpec("t", "k", 0)
    with pytest.raises(CatalogError):
        PartitionSpec("t", "k", 4, scheme="range", bounds=(10,))
    spec = PartitionSpec("t", "k", 3, scheme="range", bounds=(10, 20))
    assert spec.partition_names() == ["t__p0", "t__p1", "t__p2"]


def test_hash_routing_is_stable_and_in_range():
    spec = PartitionSpec("t", "k", 4)
    values = [0, 1, -17, 10**9, "abc", "", None, True, 2.5]
    routed = [spec.index_for(v) for v in values]
    assert all(0 <= index < 4 for index in routed)
    # Routing is a pure function of the value — a second spec instance
    # (another session) must agree on placement.
    again = PartitionSpec("t", "k", 4)
    assert [again.index_for(v) for v in values] == routed
    assert stable_hash("abc") == stable_hash("abc")


def test_range_routing_respects_bounds():
    spec = PartitionSpec("t", "k", 3, scheme="range", bounds=(10, 20))
    assert spec.index_for(5) == 0
    assert spec.index_for(10) == 1  # bounds are upper-exclusive
    assert spec.index_for(15) == 1
    assert spec.index_for(20) == 2
    assert spec.index_for(10**6) == 2
    assert spec.index_for(None) == 0


def test_compatibility_requires_scheme_count_and_bounds():
    base = PartitionSpec("a", "k", 4)
    assert base.compatible_with(PartitionSpec("b", "j", 4))
    assert not base.compatible_with(PartitionSpec("b", "j", 3))
    assert not base.compatible_with(
        PartitionSpec("b", "j", 4, scheme="range", bounds=(1, 2, 3))
    )


def test_partition_table_splits_rows_and_drops_original():
    dep = build_sharded()
    spec = dep.partition_specs["orders"]
    for db in DBS:
        assert dep.database(db).catalog.get("orders") is None
    scattered = []
    for index, db in enumerate(DBS):
        shard = dep.database(db).catalog.get(partition_name("orders", index))
        assert shard is not None
        for row in shard.rows:
            assert spec.index_for(row[0]) == index
            scattered.append(row)
    assert sorted(scattered) == sorted(ORDERS_ROWS)


def test_is_partition_table_only_matches_shard_names():
    assert is_partition_table("orders__p0")
    assert is_partition_table("a__p12")
    assert not is_partition_table("orders")
    assert not is_partition_table("__p1")
    assert not is_partition_table("orders__pX")


# -- placement: in-situ shard joins vs forced repartition ----------------


def test_co_partitioned_join_stays_in_situ():
    dep = build_sharded()
    report = XDB(dep).submit(JOIN_SQL)
    assert_same_rows(report.result.rows, truth_rows(JOIN_SQL))

    branches = branch_tasks(report.plan)
    assert len(branches) == len(DBS)
    for task in branches:
        shards = sorted(
            name for name in task.base_tables() if is_partition_table(name)
        )
        # The branch join runs where its shards live: both sides of the
        # zipped join are in one task, annotated at the hosting engine.
        index = int(shards[0].rsplit("__p", 1)[1])
        assert shards == [f"lineitem__p{index}", f"orders__p{index}"]
        assert task.annotation == DBS[index]
    assert cross_shard_bytes(report.plan) == 0


def test_replicated_dimension_joins_on_each_shard():
    dep = build_sharded()
    report = XDB(dep).submit(TRIPLE_SQL)
    assert_same_rows(report.result.rows, truth_rows(TRIPLE_SQL))
    branches = branch_tasks(report.plan)
    assert len(branches) == len(DBS)
    for task in branches:
        # Rule 1's partition anchor pulls the replicated dimension onto
        # the shard's engine, so the whole branch merges into one task.
        assert "customer" in task.base_tables()
    assert cross_shard_bytes(report.plan) == 0


def test_mismatched_partition_keys_force_repartition_edge():
    dep = build_sharded(lineitem_key="l_qty")
    report = XDB(dep).submit(JOIN_SQL)
    assert_same_rows(report.result.rows, truth_rows(JOIN_SQL))
    # lineitem is partitioned on a non-join key: branches cannot zip, so
    # shard output must move into the join — a repartition point.
    assert cross_shard_bytes(report.plan) > 0


# -- composition with replication and drift ------------------------------


def test_dead_shards_replica_is_picked():
    dep = build_sharded()
    dep.configure_health(BreakerConfig(cooldown_seconds=1e9))
    dep.replicate_table(partition_name("orders", 0), "p4")
    xdb = XDB(dep)
    xdb.warm_metadata()
    baseline = xdb.submit(ORDERS_SQL)
    assert baseline.result.rows == truth_rows(ORDERS_SQL)

    dep.health.report_outage("p1")
    report = xdb.submit(ORDERS_SQL)
    assert_same_rows(report.result.rows, baseline.result.rows)
    shard0 = [
        task
        for task in report.plan.tasks.values()
        if partition_name("orders", 0) in task.base_tables()
    ]
    assert shard0 and all(task.annotation == "p4" for task in shard0)
    assert all(
        task.annotation != "p1" for task in report.plan.tasks.values()
    )


def test_drift_on_one_partition_quarantines_only_that_holder():
    dep = build_sharded()
    shard = partition_name("orders", 0)
    dep.replicate_table(shard, "p4")
    xdb = XDB(dep)
    truth = xdb.submit(ORDERS_SQL).result.rows

    apply_drift(
        dep.database("p1"),
        SchemaDrift(
            db="p1", table=shard, kind="drop_column", column="o_total"
        ),
    )
    report = xdb.submit(ORDERS_SQL)
    assert report.recovery.drifted
    assert ("p1", shard) in report.recovery.quarantined
    assert xdb.catalog.is_quarantined("p1", shard)
    # Only the drifted holder is out; every sibling shard still serves.
    for index, db in enumerate(DBS):
        if index != 0:
            assert not xdb.catalog.is_quarantined(
                db, partition_name("orders", index)
            )
    assert_same_rows(report.result.rows, truth)


# -- the simulator's worker-slot model -----------------------------------


def test_worker_slots_cap_serializes_same_engine_tasks():
    # Two shards per engine: a 1-slot pool must serialize them, a wider
    # pool overlaps them again, and None keeps the legacy unbounded
    # overlap exactly.
    dep = build_sharded(orders_dbs=["p1", "p1", "p2", "p2"])
    report = XDB(dep).submit(ORDERS_SQL)

    def resim(slots):
        return simulate_schedule(
            report.deployed,
            dep.connectors,
            dep.network,
            dep.client_node,
            result_bytes=report.result.byte_size(),
            worker_slots=slots,
        ).execution_seconds

    unbounded = resim(None)
    serial = resim(1)
    wide = resim(2)
    assert serial > unbounded
    assert unbounded <= wide <= serial


def test_makespan_is_lpt_list_scheduling():
    assert makespan([], 3) == 0.0
    assert makespan([5.0], 4) == 5.0
    assert makespan([4.0, 3.0, 3.0, 2.0], 1) == pytest.approx(12.0)
    assert makespan([4.0, 3.0, 3.0, 2.0], 2) == pytest.approx(6.0)
    assert makespan([4.0, 3.0, 3.0, 2.0], 8) == pytest.approx(4.0)


# -- the worker pool: context propagation (satellite) --------------------


def test_worker_pool_returns_outcomes_in_order_and_reraises():
    pool = WorkerPool(2)
    outcomes = pool.map([lambda: 1, lambda: 2, lambda: 3])
    assert [outcome.value for outcome in outcomes] == [1, 2, 3]
    assert all(outcome.busy_seconds >= 0 for outcome in outcomes)

    def boom():
        raise ValueError("branch died")

    with pytest.raises(ValueError, match="branch died"):
        pool.map([lambda: 1, boom, lambda: 3])


def test_parallel_scan_span_tree_is_well_formed():
    dep = build_sharded()
    report = XDB(dep).submit(JOIN_SQL)
    root = report.context.tracer.root
    spans = list(all_spans(root))

    # Every span closed — pool threads released their adopted stacks.
    assert all(span.wall_end is not None for span in spans)
    branches = [span for span in spans if span.kind == "parallel"]
    assert len(branches) == len(DBS)
    for span in branches:
        assert span.attributes["busy_seconds"] >= 0.0
        assert span.status != "error"
    # No orphans: reachability from the root covers every span the
    # tracer ever allocated (ids are dense from the root's).
    ids = sorted(span.span_id for span in spans)
    assert ids == list(range(min(ids), min(ids) + len(ids)))
    validate_chrome_trace(report.to_chrome_trace())


def test_parallel_counters_do_not_leak_across_queries():
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    first = xdb.submit(JOIN_SQL)
    second = xdb.submit(JOIN_SQL)
    assert first.context is not second.context

    # Identical submissions measure identically: nothing from the first
    # query's pool threads bled into the second query's context.  Label
    # values embed the per-query object names (xv_<qid>_...), which by
    # design differ run to run — normalize them before comparing.
    def normalized(report):
        snapshot = report.context.metrics.snapshot()
        return {
            family: {
                re.sub(r"x([fv])_\d+_", r"x\1_*_", label): value
                for label, value in series.items()
            }
            for family, series in snapshot.items()
        }

    assert normalized(first) == normalized(second)
    first_summary = first.context.trace_summary()
    second_summary = second.context.trace_summary()
    for key in ("spans", "events", "transfers", "sim_seconds"):
        assert first_summary[key] == second_summary[key], key
