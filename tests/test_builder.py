"""Plan builder tests: binding SELECT ASTs into logical plans."""

import pytest

from repro.errors import BindError
from repro.relational import algebra
from repro.relational.builder import (
    ResolvedTable,
    TableResolver,
    build_plan,
    unique_names,
)
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.types import DATE, DOUBLE, INTEGER, TypeKind, varchar


class FakeResolver(TableResolver):
    def __init__(self):
        self.tables = {
            "t": Schema(
                [
                    Field("a", INTEGER),
                    Field("b", DOUBLE),
                    Field("s", varchar(8)),
                    Field("d", DATE),
                ]
            ),
            "u": Schema([Field("a", INTEGER), Field("x", INTEGER)]),
        }
        self.views = {
            "v": parse_statement("SELECT a, b FROM t WHERE a > 1"),
        }

    def resolve_table(self, parts):
        name = parts[-1].lower()
        if name in self.views:
            return ResolvedTable(table=name, view_query=self.views[name])
        if name in self.tables:
            return ResolvedTable(
                table=name, schema=self.tables[name], source_db="DB"
            )
        raise BindError(f"unknown table {name}")


def build(sql):
    return build_plan(parse_statement(sql), FakeResolver())


def test_simple_select_structure():
    plan = build("SELECT a, b FROM t")
    assert isinstance(plan, algebra.Project)
    assert isinstance(plan.child, algebra.Scan)
    assert plan.schema.names == ["a", "b"]


def test_scan_carries_source_db():
    plan = build("SELECT a AS x FROM t")
    scan = plan.leaves()[0]
    assert scan.source_db == "DB"


def test_star_expansion():
    plan = build("SELECT * FROM t")
    assert plan.schema.names == ["a", "b", "s", "d"]


def test_qualified_star_expansion():
    plan = build("SELECT u.* FROM t, u")
    assert plan.schema.names == ["a", "x"]


def test_unknown_star_qualifier():
    with pytest.raises(BindError):
        build("SELECT nope.* FROM t")


def test_where_becomes_filter():
    plan = build("SELECT a FROM t WHERE a > 1")
    assert isinstance(plan.child, algebra.Filter)


def test_comma_join_is_cross():
    plan = build("SELECT t.a AS ta FROM t, u")
    join = plan.child
    assert isinstance(join, algebra.Join) and join.kind == "CROSS"


def test_explicit_join_condition_kept():
    plan = build("SELECT t.a AS ta FROM t JOIN u ON t.a = u.a")
    join = plan.child
    assert isinstance(join, algebra.Join) and join.kind == "INNER"
    assert join.condition is not None


def test_left_join():
    plan = build("SELECT t.a AS ta, u.x FROM t LEFT JOIN u ON t.a = u.a")
    assert plan.child.kind == "LEFT"


def test_derived_table_alias_binding():
    plan = build("SELECT q.a FROM (SELECT a FROM t) AS q")
    alias = plan.child
    assert isinstance(alias, algebra.Alias) and alias.binding == "q"


def test_view_expansion():
    plan = build("SELECT v.a FROM v")
    alias = plan.child
    assert isinstance(alias, algebra.Alias)
    # View body includes its own filter.
    assert any(
        isinstance(node, algebra.Filter)
        for node in _walk(alias)
    )


def test_aggregate_detection_and_schema():
    plan = build("SELECT s, COUNT(*) AS n, SUM(a) AS total FROM t GROUP BY s")
    assert plan.schema.names == ["s", "n", "total"]
    agg = plan.child
    assert isinstance(agg, algebra.Aggregate)
    assert [spec.func for spec in agg.aggregates] == ["COUNT", "SUM"]
    assert agg.aggregates[0].arg is None  # COUNT(*)


def test_global_aggregate_without_group_by():
    plan = build("SELECT COUNT(*) AS n FROM t")
    assert isinstance(plan.child, algebra.Aggregate)
    assert plan.child.keys == ()


def test_group_by_alias_resolution():
    plan = build(
        "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END AS bucket, "
        "COUNT(*) AS n FROM t GROUP BY bucket"
    )
    agg = plan.child
    assert isinstance(agg, algebra.Aggregate)
    assert agg.keys[0].name == "bucket"
    assert isinstance(agg.keys[0].expr, ast.CaseWhen)


def test_having_becomes_filter_above_aggregate():
    plan = build("SELECT s FROM t GROUP BY s HAVING COUNT(*) > 2")
    having = plan.child
    assert isinstance(having, algebra.Filter)
    assert isinstance(having.child, algebra.Aggregate)


def test_having_without_group_by_rejected():
    with pytest.raises(BindError):
        build("SELECT a FROM t HAVING a > 1")


def test_order_by_alias_and_position():
    plan = build("SELECT a AS x, b FROM t ORDER BY x DESC, 2")
    assert isinstance(plan, algebra.Sort)
    assert plan.keys[0].ascending is False
    # position 2 resolves to column "b"
    assert isinstance(plan.keys[1].expr, ast.ColumnRef)
    assert plan.keys[1].expr.name == "b"


def test_order_by_position_out_of_range():
    with pytest.raises(BindError):
        build("SELECT a FROM t ORDER BY 5")


def test_order_by_aggregate_alias():
    plan = build(
        "SELECT s, SUM(a) AS total FROM t GROUP BY s ORDER BY total DESC"
    )
    assert isinstance(plan, algebra.Sort)


def test_limit_and_distinct():
    plan = build("SELECT DISTINCT a FROM t LIMIT 3")
    assert isinstance(plan, algebra.Limit)
    assert isinstance(plan.child, algebra.Distinct)


def test_duplicate_output_names_uniquified():
    plan = build("SELECT a, a FROM t")
    assert plan.schema.names == ["a", "a_1"]


def test_unique_names_helper():
    assert unique_names(["a", "A", "a"]) == ["a", "A_1", "a_2"]
    assert unique_names(["x", "y"]) == ["x", "y"]


def test_ambiguous_column_across_tables():
    with pytest.raises(BindError, match="ambiguous"):
        build("SELECT a FROM t, u")


def test_missing_from_rejected():
    with pytest.raises(BindError):
        build("SELECT 1 AS one")


def test_result_type_of_aggregates():
    plan = build("SELECT AVG(a) AS m, SUM(a) AS s2, MIN(s) AS lo FROM t")
    fields = {f.name: f.type.kind for f in plan.schema}
    assert fields["m"] is TypeKind.DOUBLE
    assert fields["s2"] is TypeKind.BIGINT  # SUM(INTEGER) widens
    assert fields["lo"] is TypeKind.VARCHAR


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)
