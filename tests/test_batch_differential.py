"""Differential testing: batch (vectorized) executor vs. row executor.

The batch engine must be observationally identical to the reference
row-at-a-time interpreter: same rows (up to order outside ORDER BY),
same errors, and — because the schedule simulator consumes them — the
same per-operator ``rows_out`` counts.  This module drives both modes
over the TPC-H suite, the randomized query generator, and directed
edge cases (NULL join keys, LEFT joins, DISTINCT aggregates, empty
inputs).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.relational.builder import build_plan
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.types import DOUBLE, INTEGER, varchar
from repro.workloads.tpch import EXTENDED_QUERIES, QUERIES, generate

from conftest import assert_same_rows
from test_random_queries import build_worlds, random_query


def _twin_databases(tables):
    """Two identical databases, one per execution mode.

    ``tables`` is an iterable of ``(name, schema, rows)``.
    """
    row_db = Database("ROW", execution_mode="row")
    batch_db = Database("BATCH", execution_mode="batch")
    for name, schema, rows in tables:
        row_db.create_table(name, schema, rows)
        batch_db.create_table(name, schema, rows)
    return row_db, batch_db


def _assert_modes_agree(row_db, batch_db, sql, ordered=False):
    row_result = row_db.execute(sql)
    batch_result = batch_db.execute(sql)
    if ordered:
        assert row_result.rows == batch_result.rows
    else:
        assert_same_rows(row_result.rows, batch_result.rows)
    return row_result, batch_result


def _operator_counts(database, sql):
    """Execute ``sql`` and return ``[(label, rows_out), ...]`` in
    pre-order over the physical operator tree."""
    select = parse_statement(sql)
    plan = build_plan(select, database.catalog)
    plan = database.planner.optimize(plan)
    physical = database.planner.to_physical(plan)
    if database.execution_mode == "batch":
        for batch in physical.batches():
            batch.rows()
    else:
        for _ in physical.rows():
            pass
    counts = []

    def walk(node):
        counts.append((node.label(), node.rows_out))
        for child in node.children():
            walk(child)

    walk(physical)
    return counts


# -- TPC-H ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_twins():
    data = generate(0.002, seed=11)
    tables = [
        (name, data.schema_of(name), data.rows_of(name))
        for name in data.tables
    ]
    return _twin_databases(tables)


@pytest.mark.parametrize("key", sorted(QUERIES))
def test_tpch_row_vs_batch(tpch_twins, key):
    row_db, batch_db = tpch_twins
    _assert_modes_agree(row_db, batch_db, QUERIES[key], ordered=True)


@pytest.mark.parametrize("key", sorted(EXTENDED_QUERIES))
def test_tpch_extended_row_vs_batch(tpch_twins, key):
    row_db, batch_db = tpch_twins
    _assert_modes_agree(row_db, batch_db, EXTENDED_QUERIES[key])


@pytest.mark.parametrize("key", sorted(QUERIES))
def test_tpch_operator_counts_match(tpch_twins, key):
    """Per-operator cardinalities are what the schedule simulator sees;
    they must be identical across modes on every TPC-H plan (the LIMIT
    batch-granularity caveat does not bite: the drivers' LIMITs sit
    over Sort, which consumes its child fully in both modes)."""
    row_db, batch_db = tpch_twins
    row_counts = _operator_counts(row_db, QUERIES[key])
    batch_counts = _operator_counts(batch_db, QUERIES[key])
    assert row_counts == batch_counts


# -- randomized ------------------------------------------------------------------


def _random_twins():
    _, single = build_worlds()
    tables = [
        (table.name, table.schema, table.rows)
        for table in single.catalog.tables()
    ]
    return _twin_databases(tables)


_ROW_DB, _BATCH_DB = _random_twins()


@given(sql=random_query())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_queries_row_vs_batch(sql):
    _assert_modes_agree(_ROW_DB, _BATCH_DB, sql)


# -- directed edge cases ---------------------------------------------------------


@pytest.fixture()
def edge_twins():
    t_schema = Schema(
        [Field("k", INTEGER), Field("v", DOUBLE), Field("s", varchar(8))]
    )
    u_schema = Schema([Field("k", INTEGER), Field("w", INTEGER)])
    t_rows = [
        (1, 1.5, "aa"),
        (2, None, "bb"),
        (None, 3.0, "cc"),
        (3, 4.5, None),
        (3, 4.5, None),  # duplicate row for DISTINCT
        (5, -2.0, "ee"),
    ]
    u_rows = [(1, 10), (1, 11), (3, 30), (None, 99), (7, 70)]
    return _twin_databases(
        [
            ("t", t_schema, t_rows),
            ("u", u_schema, u_rows),
            ("empty_t", t_schema, []),
        ]
    )


EDGE_QUERIES = [
    # NULL keys never match — inner and LEFT.
    "SELECT t.k, u.w FROM t, u WHERE t.k = u.k",
    "SELECT t.k, t.s, u.w FROM t LEFT JOIN u ON t.k = u.k",
    # LEFT join with residual-free duplicate matches.
    "SELECT t.s, u.w FROM t LEFT JOIN u ON t.k = u.k WHERE t.k IS NOT NULL",
    # DISTINCT rows and DISTINCT aggregates.
    "SELECT DISTINCT k, v FROM t",
    "SELECT COUNT(DISTINCT v) AS dv, SUM(DISTINCT v) AS sv FROM t",
    "SELECT s, COUNT(DISTINCT k) AS dk FROM t GROUP BY s",
    # Aggregates over NULLs and negatives.
    "SELECT COUNT(*) AS n, COUNT(v) AS nv, MIN(v) AS lo, MAX(v) AS hi, "
    "AVG(v) AS mean FROM t",
    # Empty inputs: scalar aggregate yields one row, grouped yields none.
    "SELECT COUNT(*) AS n, SUM(v) AS sv FROM empty_t",
    "SELECT s, COUNT(*) AS n FROM empty_t GROUP BY s",
    "SELECT empty_t.k FROM empty_t, u WHERE empty_t.k = u.k",
    "SELECT empty_t.k, u.w FROM empty_t LEFT JOIN u ON empty_t.k = u.k",
    # Expression kernels: three-valued logic, LIKE, IN, BETWEEN, CASE
    # (CASE exercises the row-loop fallback inside a batch plan).
    "SELECT k FROM t WHERE v > 2 OR s LIKE 'a%'",
    "SELECT k FROM t WHERE k IN (1, 3) AND v BETWEEN 0 AND 10",
    "SELECT k, CASE WHEN v > 2 THEN 'hi' ELSE 'lo' END AS band FROM t",
    "SELECT k, v + 1 AS v1, -v AS nv, v * 2 AS v2 FROM t",
    # Sorting with NULLs, LIMIT over Sort, UNION ALL.
    "SELECT k, v FROM t ORDER BY v, k",
    "SELECT k FROM t ORDER BY k LIMIT 2",
    "SELECT k FROM t UNION ALL SELECT k FROM u",
    "SELECT k FROM t WHERE v > 100",  # empty filter result
]


@pytest.mark.parametrize("sql", EDGE_QUERIES)
def test_edge_cases_row_vs_batch(edge_twins, sql):
    row_db, batch_db = edge_twins
    ordered = "ORDER BY" in sql
    _assert_modes_agree(row_db, batch_db, sql, ordered=ordered)


def test_division_by_zero_raises_in_both_modes(edge_twins):
    row_db, batch_db = edge_twins
    sql = "SELECT v / (k - k) AS boom FROM t WHERE k IS NOT NULL"
    with pytest.raises(ExecutionError):
        row_db.execute(sql)
    with pytest.raises(ExecutionError):
        batch_db.execute(sql)


def test_edge_operator_counts_match(edge_twins):
    row_db, batch_db = edge_twins
    for sql in EDGE_QUERIES:
        if "LIMIT" in sql:
            continue  # LIMIT children may legitimately differ by one batch
        assert _operator_counts(row_db, sql) == _operator_counts(
            batch_db, sql
        ), sql


def test_unknown_execution_mode_rejected():
    with pytest.raises(ExecutionError):
        Database("X", execution_mode="columnar")
