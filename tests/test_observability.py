"""The observability spine: tracer/metrics units, span-tree invariants
over real submissions, context-scoped counter isolation, and the
Chrome trace / EXPLAIN ANALYZE exports."""

import pytest

from repro.connect.connector import RetryPolicy
from repro.core.client import XDB
from repro.faults import FaultInjector, FaultPolicy
from repro.obs.context import (
    CONTROL_TAGS,
    QueryContext,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_context
from repro.obs.tracer import Tracer
from repro.workloads.tpch import query

from conftest import assert_same_rows

JOIN_QUERY = """
    SELECT u.name, SUM(e.weight) AS total
    FROM users u, events e
    WHERE u.id = e.user_id AND e.kind = 'login'
    GROUP BY u.name
    ORDER BY total DESC, u.name
"""


def set_retry_policy(deployment, policy):
    for connector in deployment.connectors.values():
        connector.retry_policy = policy


# -- unit: metrics registry ----------------------------------------------


def test_metrics_counters_and_labels():
    metrics = MetricsRegistry()
    metrics.inc("connector.retries", db="A")
    metrics.inc("connector.retries", 2, db="A")
    metrics.inc("connector.retries", db="B")
    assert metrics.value("connector.retries", db="A") == 3
    assert metrics.value("connector.retries", db="B") == 1
    assert metrics.value("connector.retries", db="missing") == 0
    assert set(metrics.label_values("connector.retries", "db")) == {"A", "B"}


def test_metrics_reject_negative_increment():
    metrics = MetricsRegistry()
    with pytest.raises(ValueError):
        metrics.inc("net.bytes", -1)


def test_metrics_histogram_and_gauge():
    metrics = MetricsRegistry()
    metrics.set_gauge("queue.depth", 4)
    assert metrics.gauge("queue.depth") == 4
    for value in (1.0, 3.0, 2.0):
        metrics.observe("latency", value)
    hist = metrics.histogram("latency")
    assert hist.count == 3
    assert hist.minimum == 1.0 and hist.maximum == 3.0
    assert hist.mean == pytest.approx(2.0)


# -- unit: tracer --------------------------------------------------------


def test_tracer_nesting_and_sim_clock():
    tracer = Tracer(root_name="t")
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            tracer.advance(1.5)
        tracer.advance(0.5)
    root = tracer.finish()
    assert outer.parent is root
    assert inner.parent is outer
    assert inner.sim_seconds == pytest.approx(1.5)
    assert outer.sim_seconds == pytest.approx(2.0)
    assert root.sim_seconds == pytest.approx(2.0)
    # Wall intervals nest too.
    assert outer.wall_start <= inner.wall_start <= inner.wall_end
    assert inner.wall_end <= outer.wall_end


def test_tracer_rejects_out_of_order_end():
    tracer = Tracer()
    a = tracer.start_span("a")
    tracer.start_span("b")
    with pytest.raises(RuntimeError):
        tracer.end_span(a)


def test_tracer_error_status_and_events():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom") as span:
            tracer.add_event("checkpoint", step=1)
            raise ValueError("x")
    assert span.status == "error"
    assert [e.name for e in span.events] == ["checkpoint"]
    assert tracer.current is tracer.root  # stack unwound


def test_context_activation_is_scoped():
    assert current_context() is None
    with QueryContext() as ctx:
        assert current_context() is ctx
        with QueryContext() as inner:
            assert current_context() is inner
        assert current_context() is ctx
    assert current_context() is None


# -- span-tree invariants over a real submission -------------------------


@pytest.fixture
def joined_report(two_db_deployment):
    xdb = XDB(two_db_deployment)
    return xdb.submit(JOIN_QUERY)


def test_phases_nest_under_root_without_overlap(joined_report):
    ctx = joined_report.context
    phases = [s for s in ctx.root.children if s.kind == "phase"]
    assert [s.name for s in phases] == ["prep", "lopt", "ann", "exec"]
    for span in phases:
        assert span.parent is ctx.root
        assert span.finished
    for prev, nxt in zip(phases, phases[1:]):
        assert prev.wall_end <= nxt.wall_start
        assert prev.sim_end <= nxt.sim_start


def test_phase_times_are_span_views(joined_report):
    ctx = joined_report.context
    for name in ("prep", "lopt", "ann"):
        span = ctx.root.find(name)
        assert joined_report.phases[name] == pytest.approx(
            ctx.phase_seconds(span)
        )
    exec_span = ctx.root.find("exec")
    assert joined_report.phases["exec"] == pytest.approx(
        joined_report.schedule.total_seconds
        + ctx.control_seconds(exec_span)
        + ctx.backoff_in(exec_span)
    )


def test_every_transfer_attributed_to_exactly_one_span(joined_report):
    ctx = joined_report.context
    attributed = [
        id(record)
        for span in ctx.root.iter_spans()
        for record in span.records
    ]
    assert sorted(attributed) == sorted(id(r) for r in ctx.transfers)
    # And the context saw exactly the records the network logged while
    # it was active (the whole submission, including cleanup drops).
    assert len(ctx.transfers) > 0


def test_every_ddl_statement_becomes_a_span_event(joined_report):
    ctx = joined_report.context
    exec_span = ctx.root.find("exec")
    ddl_events = exec_span.subtree_events("ddl")
    logged = [
        (event.attributes["db"], event.attributes["sql"])
        for event in ddl_events
    ]
    assert logged == joined_report.deployed.ddl_log
    assert len(logged) > 0


def test_engine_calls_become_call_spans(joined_report):
    ctx = joined_report.context
    call_spans = ctx.root.find_all(kind="call")
    assert call_spans, "connector calls must open spans"
    for span in call_spans:
        assert span.attributes["db"]
        assert span.attributes["op"]
    # Every DDL statement ran inside some ddl call span.
    ddl_calls = [s for s in call_spans if s.attributes["op"] == "ddl"]
    assert len(ddl_calls) >= len(joined_report.deployed.ddl_log)


def test_operator_trees_become_operator_spans(joined_report):
    ctx = joined_report.context
    operators = ctx.root.find_all(kind="operator")
    assert operators
    labels = {span.name for span in operators}
    assert any(label.startswith("SeqScan") for label in labels)
    for span in operators:
        assert span.attributes["rows_out"] >= 0


def test_transfer_summary_matches_report(joined_report):
    ctx = joined_report.context
    exec_span = ctx.root.find("exec")
    assert ctx.transfer_summary(exec_span) == joined_report.transfers


def test_schedule_spans_agree_with_schedule_result(tpch_tiny):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment)
    report = xdb.submit(query("Q5"))
    ctx = report.context
    sim_parent = ctx.root.find("schedule-sim")
    assert sim_parent is not None
    assert sim_parent.sim_seconds == pytest.approx(
        report.schedule.total_seconds
    )
    task_spans = {
        span.attributes["task_id"]: span
        for span in sim_parent.children
        if span.kind == "task" and "task_id" in span.attributes
    }
    assert set(task_spans) == set(report.schedule.tasks)
    for task_id, timing in report.schedule.tasks.items():
        span = task_spans[task_id]
        assert span.timebase == "schedule"
        assert span.sim_start == pytest.approx(timing.start)
        assert span.sim_end == pytest.approx(timing.finish)
        assert span.attributes["db"] == timing.db


# -- counter isolation (the leak the context fixes) ----------------------


def test_prepared_query_reports_are_identical_across_executions(
    two_db_deployment,
):
    xdb = XDB(two_db_deployment)
    with xdb.prepare(JOIN_QUERY) as prepared:
        # Discard the first run: it alone skips re-materialization.
        first = prepared.execute()
        second = prepared.execute()
        third = prepared.execute()
    assert_same_rows(second.result.rows, first.result.rows)
    assert second.phases == third.phases
    assert second.transfers == third.transfers
    assert (
        second.resilience.by_connector == third.resilience.by_connector
    )
    assert second.context is not third.context
    # Wall-clock seconds jitter run to run; everything simulated or
    # counted must reproduce exactly.
    second_summary = second.context.trace_summary()
    third_summary = third.context.trace_summary()
    for key in ("spans", "events", "transfers", "sim_seconds",
                "net_seconds", "backoff_seconds"):
        assert second_summary[key] == third_summary[key], key


def test_resilience_counters_do_not_leak_across_submissions(
    two_db_deployment,
):
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    set_retry_policy(deployment, RetryPolicy(max_attempts=8))
    injector = FaultInjector(
        FaultPolicy(seed=11, transient_error_rate=0.15)
    ).install(deployment)
    try:
        faulty = xdb.submit(JOIN_QUERY)
    finally:
        injector.uninstall()
    clean = xdb.submit(JOIN_QUERY)

    assert faulty.resilience.failures == injector.injected_transients
    assert faulty.resilience.failures > 0
    # The second submission's report starts from zero — the lifetime
    # connector counters still carry the faults, the context does not.
    assert clean.resilience.failures == 0
    assert clean.resilience.retries == 0
    assert clean.resilience.backoff_seconds == 0.0
    assert sum(
        connector.failures for connector in deployment.connectors.values()
    ) == injector.injected_transients
    # Retry span events surface only on the faulty run's trace.
    assert faulty.context.root.subtree_events("retry")
    assert not clean.context.root.subtree_events("retry")


def test_connector_counters_mirror_into_context_metrics(joined_report):
    ctx = joined_report.context
    total_control = sum(
        ctx.metrics.counters("connector.control_messages").values()
    )
    assert total_control > 0
    consultations = sum(
        ctx.metrics.counters("connector.consultations").values()
    )
    assert consultations == joined_report.consultations


# -- exports -------------------------------------------------------------


def test_chrome_trace_is_valid_and_complete(joined_report):
    payload = joined_report.to_chrome_trace()
    count = validate_chrome_trace(payload)
    events = payload["traceEvents"]
    assert count == len(events)
    names = [e["name"] for e in events]
    # Every phase span, every DDL statement, every transfer is present.
    for phase in ("prep", "lopt", "ann", "exec"):
        assert phase in names
    assert names.count("ddl") == len(joined_report.deployed.ddl_log)
    instant_transfers = [
        e for e in events if e["name"] == "transfer" and e["ph"] == "i"
    ]
    assert len(instant_transfers) == len(joined_report.context.transfers)
    # Schedule track (tid=2) carries the per-task intervals.
    assert any(
        e.get("tid") == 2 and e["ph"] == "X" and e["name"].startswith("task-")
        for e in events
    )
    for event in events:
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_validate_chrome_trace_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}
        )
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
                ]
            }
        )


def test_explain_analyze_renders_the_span_tree(two_db_deployment):
    xdb = XDB(two_db_deployment)
    text = xdb.explain_analyze(JOIN_QUERY)
    assert "phases:" in text
    for name in ("prep", "lopt", "ann", "exec"):
        assert name in text
    assert "schedule-sim" in text
    assert "SeqScan" in text
    assert "ddl@" in text  # connector call spans


def test_control_tags_cover_the_critical_path_traffic():
    assert set(CONTROL_TAGS) == {"delegation", "control", "consult", "probe"}
