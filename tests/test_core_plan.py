"""Delegation plan IR tests."""

import pytest

from repro.core.plan import DelegationPlan, Movement, Task
from repro.errors import OptimizerError
from repro.relational import algebra
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_expression
from repro.sql.types import INTEGER

T = Schema([Field("a", INTEGER), Field("k", INTEGER)])
U = Schema([Field("k", INTEGER), Field("w", INTEGER)])


def simple_plan():
    dplan = DelegationPlan()
    producer_expr = algebra.Scan("t", "t", T, source_db="A")
    producer = dplan.new_task("A", producer_expr, estimated_rows=10)
    placeholder = algebra.Scan(
        "?", "xin_1", producer_expr.schema, placeholder=True, requalify=False
    )
    consumer_expr = algebra.Join(
        placeholder,
        algebra.Scan("u", "u", U, source_db="B"),
        parse_expression("t.k = u.k"),
    )
    consumer = dplan.new_task("B", consumer_expr, estimated_rows=5)
    dplan.add_edge(producer, consumer, Movement.IMPLICIT, "xin_1")
    dplan.set_root(consumer)
    return dplan, producer, consumer


def test_navigation():
    dplan, producer, consumer = simple_plan()
    assert dplan.root is consumer
    assert dplan.children_of(consumer) == [producer]
    assert dplan.children_of(producer) == []
    assert len(dplan.in_edges(consumer)) == 1
    assert dplan.out_edge(producer).consumer_id == consumer.task_id
    assert dplan.out_edge(consumer) is None


def test_topological_order():
    dplan, producer, consumer = simple_plan()
    order = [task.task_id for task in dplan.topological()]
    assert order == [producer.task_id, consumer.task_id]


def test_movement_counts_and_annotations():
    dplan, _, _ = simple_plan()
    counts = dplan.movement_counts()
    assert counts[Movement.IMPLICIT] == 1
    assert counts[Movement.EXPLICIT] == 0
    assert dplan.annotations() == ["A", "B"]


def test_task_helpers():
    dplan, producer, consumer = simple_plan()
    assert producer.base_tables() == ["t"]
    assert not producer.placeholders()
    assert [s.binding for s in consumer.placeholders()] == ["xin_1"]
    assert consumer.base_tables() == ["u"]


def test_notation():
    dplan, producer, consumer = simple_plan()
    assert producer.notation() == "t"
    assert consumer.notation() == "⋈(?,u)"
    assert str(consumer) == "B:⋈(?,u)"


def test_notation_verbose_includes_sigma_pi():
    scan = algebra.Scan("t", "t", T, source_db="A")
    filtered = algebra.Filter(scan, parse_expression("t.a > 1"))
    task = Task(1, "A", filtered)
    assert task.notation(compact=False) == "σ(t)"


def test_describe_includes_rows_when_known():
    dplan, _, _ = simple_plan()
    dplan.edges[0].moved_rows = 123
    assert "[123 rows]" in dplan.describe()


def test_describe_single_task():
    dplan = DelegationPlan()
    task = dplan.new_task("A", algebra.Scan("t", "t", T, source_db="A"))
    dplan.set_root(task)
    assert "single task" in dplan.describe()


def test_root_required():
    dplan = DelegationPlan()
    with pytest.raises(OptimizerError):
        _ = dplan.root
