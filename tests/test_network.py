"""Simulated-network tests: topology, links, accounting."""

import pytest

from repro.errors import NetworkError
from repro.net.metrics import edge_rows, summarize
from repro.net.network import LAN, WAN, LinkSpec, Network


def test_link_transfer_time():
    link = LinkSpec(bandwidth=1_000_000.0, latency=0.01)
    assert link.transfer_time(500_000) == pytest.approx(0.51)


def test_loopback_is_nearly_free():
    network = Network()
    network.add_node("a")
    assert network.transfer_time("a", "a", 10_000) < 0.001


def test_site_links_resolve_by_site_pair():
    network = Network.on_premise(["db1", "db2"], cloud_nodes=["mw"])
    assert network.link_for("db1", "db2") == LAN
    assert network.link_for("db1", "mw") == WAN
    assert network.link_for("mw", "client") == LAN


def test_pair_override_beats_site_default():
    network = Network.on_premise(["db1", "db2"])
    slow = LinkSpec(1000.0, 1.0)
    network.set_link("db1", "db2", slow)
    assert network.link_for("db1", "db2") == slow
    assert network.link_for("db2", "db1") == LAN  # directed override


def test_geo_topology_everything_wan():
    network = Network.geo_distributed(["db1", "db2"])
    assert network.link_for("db1", "db2") == WAN
    assert network.is_cross_site("db1", "db2")


def test_onprem_middleware_site_option():
    onlan = Network.on_premise(
        ["db1"], middleware_nodes=["xdb"], middleware_site="onprem"
    )
    assert onlan.link_for("db1", "xdb") == LAN
    incloud = Network.on_premise(
        ["db1"], middleware_nodes=["xdb"], middleware_site="cloud"
    )
    assert incloud.link_for("db1", "xdb") == WAN


def test_unknown_node_rejected():
    network = Network()
    network.add_node("a")
    with pytest.raises(NetworkError):
        network.record_transfer("a", "ghost", 10)
    with pytest.raises(NetworkError):
        network.node_site("ghost")


def test_transfer_recording_and_totals():
    network = Network.on_premise(["db1", "db2"], cloud_nodes=["mw"])
    network.record_transfer("db1", "db2", 1000, rows=10, tag="data")
    network.record_transfer("db1", "mw", 2000, rows=20, tag="data")
    network.record_control_message("mw", "db1")
    assert network.total_bytes() == 1000 + 2000 + 512
    assert network.total_bytes("data") == 3000
    assert network.bytes_into("mw") == 2000
    assert network.bytes_into_site("cloud") == 2000
    assert network.cross_site_bytes() == 2000 + 512


def test_reset_log():
    network = Network.on_premise(["db1"])
    network.record_transfer("db1", "client", 10)
    network.reset_log()
    assert network.total_bytes() == 0


def test_summarize_and_edge_rows():
    network = Network.on_premise(["db1", "db2"])
    network.record_transfer("db1", "db2", 100, rows=5, tag="fdw:v1")
    network.record_transfer("db1", "db2", 300, rows=7, tag="fdw:v1")
    network.record_transfer("db2", "client", 50, rows=1, tag="result")
    summary = summarize(network.log)
    assert summary.total_bytes == 450
    assert summary.total_rows == 13
    assert summary.by_tag["fdw:v1"] == 400
    assert summary.bytes_for_tag("fdw") == 400
    assert summary.by_edge[("db1", "db2")] == 400
    rows = edge_rows(network.log)
    assert rows[("db1", "db2")] == 12


def test_summarize_cross_site_only():
    network = Network.on_premise(["db1", "db2"], cloud_nodes=["mw"])
    network.record_transfer("db1", "db2", 100, tag="lan")
    network.record_transfer("db1", "mw", 100, tag="wan")
    summary = summarize(network.log, network=network, cross_site_only=True)
    assert summary.total_bytes == 100
    with pytest.raises(ValueError):
        summarize(network.log, cross_site_only=True)


def test_transfer_time_seconds_recorded():
    network = Network.on_premise(["db1"], cloud_nodes=["mw"])
    record = network.record_transfer("db1", "mw", 12_500_000)
    assert record.seconds == pytest.approx(1.025, rel=0.01)
