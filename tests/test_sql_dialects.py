"""Vendor dialect tests: quoting + foreign-table DDL surfaces."""

import pytest

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.dialects import available_dialects, dialect_for
from repro.sql.parser import parse_statement
from repro.sql.render import render
from repro.sql.types import INTEGER, varchar

FT = ast.CreateForeignTable(
    name="remote_orders",
    columns=(
        ast.ColumnDef("o_orderkey", INTEGER),
        ast.ColumnDef("o_comment", varchar(40)),
    ),
    server="db2",
    remote_object="orders_view",
)


def test_available_dialects():
    assert available_dialects() == ["hive", "mariadb", "postgres"]


def test_unknown_dialect():
    with pytest.raises(SQLError):
        dialect_for("oracle")


def test_postgres_foreign_table_surface():
    text = render(FT, dialect_for("postgres"))
    assert "CREATE FOREIGN TABLE" in text
    assert "SERVER db2" in text
    assert "table_name 'orders_view'" in text


def test_mariadb_federated_surface():
    text = render(FT, dialect_for("mariadb"))
    assert "ENGINE=FEDERATED" in text
    assert "CONNECTION='db2/orders_view'" in text


def test_hive_external_table_surface():
    text = render(FT, dialect_for("hive"))
    assert "CREATE EXTERNAL TABLE" in text
    assert "STORED BY 'db2'" in text


@pytest.mark.parametrize("dialect", ["postgres", "mariadb", "hive"])
def test_every_surface_parses_back_to_same_semantics(dialect):
    text = render(FT, dialect_for(dialect))
    parsed = parse_statement(text)
    assert isinstance(parsed, ast.CreateForeignTable)
    assert parsed.server == "db2"
    assert parsed.remote_object == "orders_view"
    assert [c.name for c in parsed.columns] == ["o_orderkey", "o_comment"]


def test_identifier_quote_characters():
    weird = ast.ColumnRef("weird name")
    assert render(weird, dialect_for("postgres")) == '"weird name"'
    assert render(weird, dialect_for("mariadb")) == "`weird name`"
    assert render(weird, dialect_for("hive")) == "`weird name`"


def test_drop_foreign_table_per_dialect():
    drop = ast.DropObject("FOREIGN TABLE", "ft", if_exists=True)
    assert "DROP FOREIGN TABLE IF EXISTS" in render(
        drop, dialect_for("postgres")
    )
    assert "DROP TABLE IF EXISTS" in render(drop, dialect_for("mariadb"))
    assert "DROP EXTERNAL TABLE IF EXISTS" in render(
        drop, dialect_for("hive")
    )


def test_dialect_instances_are_shared():
    assert dialect_for("postgres") is dialect_for("postgres")
