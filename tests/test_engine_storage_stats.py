"""Storage and statistics tests."""

import datetime

import pytest

from repro.engine.catalog import BaseTable
from repro.engine.stats import DEFAULT_SAMPLE_SIZE, compute_stats
from repro.errors import CatalogError
from repro.relational.schema import Field, Schema
from repro.sql.types import DATE, DOUBLE, INTEGER, varchar

SCHEMA = Schema(
    [
        Field("k", INTEGER),
        Field("cat", varchar(4)),
        Field("val", DOUBLE),
        Field("d", DATE),
    ]
)


def make_rows(n):
    return [
        (
            i,
            ["a", "b", "c"][i % 3],
            float(i) if i % 10 else None,
            datetime.date(2020, 1, 1) + datetime.timedelta(days=i % 365),
        )
        for i in range(n)
    ]


def test_exact_stats_small_table():
    stats = compute_stats(SCHEMA, make_rows(100))
    assert stats.row_count == 100
    assert stats.column("k").ndv == 100
    assert stats.column("cat").ndv == 3
    assert stats.column("val").null_count == 10
    assert stats.column("k").min_value == 0
    assert stats.column("k").max_value == 99


def test_stats_lookup_case_insensitive():
    stats = compute_stats(SCHEMA, make_rows(10))
    assert stats.column("CAT") is stats.column("cat")
    assert stats.column("missing") is None


def test_sampled_stats_extrapolate_key_columns():
    rows = make_rows(DEFAULT_SAMPLE_SIZE * 3)
    stats = compute_stats(SCHEMA, rows)
    assert stats.row_count == len(rows)
    # key-like column extrapolates toward the row count
    assert stats.column("k").ndv > DEFAULT_SAMPLE_SIZE
    # categorical column stays small
    assert stats.column("cat").ndv == 3


def test_null_fraction():
    stats = compute_stats(SCHEMA, make_rows(100))
    assert stats.column("val").null_fraction(100) == pytest.approx(0.1)


def test_stats_on_empty_table():
    stats = compute_stats(SCHEMA, [])
    assert stats.row_count == 0
    assert stats.column("k").ndv == 0


def test_min_max_skipped_for_mixed_unorderable():
    schema = Schema([Field("x", varchar(4))])
    stats = compute_stats(schema, [("a",), ("b",)])
    assert stats.column("x").min_value == "a"


def test_base_table_insert_and_stats_invalidation():
    table = BaseTable("t", SCHEMA, make_rows(10))
    before = table.stats.row_count
    table.insert([(100, "a", 1.0, datetime.date(2020, 1, 1))])
    assert before == 10
    assert table.stats.row_count == 11


def test_base_table_insert_arity_check():
    table = BaseTable("t", SCHEMA, [])
    with pytest.raises(CatalogError):
        table.insert([(1, "a")])


def test_base_table_unqualifies_schema():
    qualified = SCHEMA.requalified("alias")
    table = BaseTable("t", qualified, [])
    assert all(f.relation is None for f in table.schema)


def test_min_max_skipped_for_mixed_date_datetime():
    """datetime subclasses date but the two are mutually non-comparable;
    a mixed column must skip min/max instead of raising TypeError."""
    schema = Schema([Field("x", DATE)])
    rows = [
        (datetime.date(2020, 1, 1),),
        (datetime.datetime(2020, 1, 2, 3, 4, 5),),
    ]
    stats = compute_stats(schema, rows)  # must not raise
    assert stats.column("x").min_value is None
    assert stats.column("x").max_value is None
    assert stats.column("x").ndv == 2


def test_min_max_kept_for_homogeneous_datetime():
    schema = Schema([Field("x", DATE)])
    rows = [
        (datetime.datetime(2020, 1, 2, 3, 4, 5),),
        (datetime.datetime(2020, 1, 1, 0, 0, 0),),
    ]
    stats = compute_stats(schema, rows)
    assert stats.column("x").min_value == datetime.datetime(2020, 1, 1)
