"""SQL/MED tests: foreign tables, wrapper pushdown, network accounting."""

import pytest

from repro.engine.database import Database
from repro.engine.fdw import PROTOCOL_FACTORS, RemoteServer
from repro.errors import ConnectorError
from repro.net.network import Network
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER, varchar

from conftest import assert_same_rows


def make_pair(local_profile="postgres", protocol="binary"):
    network = Network()
    network.add_node("L", site="onprem")
    network.add_node("R", site="onprem")
    local = Database("L", profile=local_profile, node="L")
    remote = Database("R", profile="postgres", node="R")
    remote.create_table(
        "src",
        Schema(
            [
                Field("id", INTEGER),
                Field("grp", varchar(2)),
                Field("val", INTEGER),
            ]
        ),
        [(i, ["x", "y"][i % 2], i * 10) for i in range(40)],
    )
    local.register_server(
        "R",
        RemoteServer(
            "R", remote, network, local_node="L", remote_node="R",
            protocol=protocol,
        ),
    )
    local.execute(
        "CREATE FOREIGN TABLE f (id INTEGER, grp VARCHAR(2), val INTEGER) "
        "SERVER R OPTIONS (table_name 'src')"
    )
    return local, remote, network


def test_foreign_scan_returns_remote_rows():
    local, remote, _ = make_pair()
    result = local.execute("SELECT COUNT(*) AS n FROM f")
    assert result.rows == [(40,)]


def test_foreign_scan_matches_remote_query():
    local, remote, _ = make_pair()
    mine = local.execute("SELECT grp, SUM(val) AS s FROM f GROUP BY grp")
    theirs = remote.execute("SELECT grp, SUM(val) AS s FROM src GROUP BY grp")
    assert_same_rows(mine.rows, theirs.rows)


def test_transfers_are_recorded_with_rows_and_bytes():
    local, _, network = make_pair()
    local.execute("SELECT id FROM f")
    records = [r for r in network.log if r.tag.startswith("fdw")]
    assert len(records) == 1
    assert records[0].src == "R" and records[0].dst == "L"
    assert records[0].rows == 40
    assert records[0].payload_bytes > 0


def test_jdbc_protocol_inflates_bytes():
    local_b, _, net_b = make_pair(protocol="binary")
    local_b.execute("SELECT id FROM f")
    local_j, _, net_j = make_pair(protocol="jdbc")
    local_j.execute("SELECT id FROM f")
    bytes_b = sum(r.payload_bytes for r in net_b.log)
    bytes_j = sum(r.payload_bytes for r in net_j.log)
    assert bytes_j == pytest.approx(
        bytes_b * PROTOCOL_FACTORS["jdbc"], rel=0.01
    )


def test_filter_pushdown_for_capable_wrapper():
    # PostgreSQL wrappers push filters: only matching rows travel.
    local, _, network = make_pair(local_profile="postgres")
    local.execute("SELECT id FROM f WHERE grp = 'x'")
    fdw = [r for r in network.log if r.tag.startswith("fdw")][0]
    assert fdw.rows == 20


def test_no_filter_pushdown_for_limited_wrapper():
    # MariaDB's FEDERATED wrapper does not push filters: all rows travel.
    local, _, network = make_pair(local_profile="mariadb")
    result = local.execute("SELECT id FROM f WHERE grp = 'x'")
    assert len(result) == 20  # semantics unchanged
    fdw = [r for r in network.log if r.tag.startswith("fdw")][0]
    assert fdw.rows == 40  # but the whole table moved


def test_projection_pushdown_narrows_transfer():
    local, _, network = make_pair()
    local.execute("SELECT id FROM f")
    narrow = [r for r in network.log if r.tag.startswith("fdw")][0]
    local.execute("SELECT id, grp, val FROM f")
    wide = [r for r in network.log if r.tag.startswith("fdw")][1]
    assert narrow.payload_bytes < wide.payload_bytes


def test_foreign_table_requires_known_server():
    db = Database("solo")
    with pytest.raises(Exception):
        db.execute(
            "CREATE FOREIGN TABLE f (a INT) SERVER ghost "
            "OPTIONS (table_name 'x')"
        )


def test_remote_row_estimate_and_stats():
    local, remote, _ = make_pair()
    server = local.server("R")
    assert server.remote_row_estimate("src") == pytest.approx(40, rel=0.2)
    stats = server.remote_table_stats("src")
    assert stats is not None and stats.row_count == 40


def test_unknown_protocol_rejected():
    network = Network()
    network.add_node("a")
    network.add_node("b")
    with pytest.raises(ConnectorError):
        RemoteServer(
            "x", Database("b"), network, "a", "b", protocol="carrier-pigeon"
        )


def test_recursive_foreign_chains():
    """A -> B -> C chained foreign tables (the delegation pattern)."""
    network = Network()
    for node in ("A", "B", "C"):
        network.add_node(node)
    a, b, c = (Database(n, node=n) for n in "ABC")
    c.create_table(
        "base", Schema([Field("x", INTEGER)]), [(i,) for i in range(10)]
    )
    b.register_server("C", RemoteServer("C", c, network, "B", "C"))
    a.register_server("B", RemoteServer("B", b, network, "A", "B"))
    c.execute("CREATE VIEW cv AS SELECT x FROM base WHERE x > 2")
    b.execute(
        "CREATE FOREIGN TABLE cf (x INTEGER) SERVER C "
        "OPTIONS (table_name 'cv')"
    )
    b.execute("CREATE VIEW bv AS SELECT x FROM cf WHERE x < 8")
    a.execute(
        "CREATE FOREIGN TABLE bf (x INTEGER) SERVER B "
        "OPTIONS (table_name 'bv')"
    )
    result = a.execute("SELECT COUNT(*) AS n FROM bf")
    assert result.rows == [(5,)]
    # Both hops appear on the ledger.
    assert any(r.src == "C" and r.dst == "B" for r in network.log)
    assert any(r.src == "B" and r.dst == "A" for r in network.log)
