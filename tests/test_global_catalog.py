"""Global catalog (GAV union of local schemas) tests."""

import pytest

from repro.core.catalog import GlobalCatalog
from repro.errors import CatalogError
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER


def catalog_of(deployment):
    return GlobalCatalog(deployment.connectors)


def test_locate_unique_table(two_db_deployment):
    catalog = catalog_of(two_db_deployment)
    assert catalog.locate("users") == "A"
    assert catalog.locate("events") == "B"


def test_locate_unknown_table(two_db_deployment):
    with pytest.raises(CatalogError):
        catalog_of(two_db_deployment).locate("ghost")


def test_duplicate_table_requires_qualification(two_db_deployment):
    two_db_deployment.load_table(
        "B", "users", Schema([Field("id", INTEGER)]), [(1,)]
    )
    catalog = catalog_of(two_db_deployment)
    with pytest.raises(CatalogError, match="multiple"):
        catalog.locate("users")
    resolved = catalog.resolve_table(("A", "users"))
    assert resolved.source_db == "A"


def test_resolve_sets_source_db(two_db_deployment):
    catalog = catalog_of(two_db_deployment)
    resolved = catalog.resolve_table(("events",))
    assert resolved.source_db == "B"
    assert resolved.schema.names == ["user_id", "kind", "weight"]


def test_resolve_unknown_qualifier(two_db_deployment):
    with pytest.raises(CatalogError):
        catalog_of(two_db_deployment).resolve_table(("GHOST", "users"))


def test_tables_enumeration(two_db_deployment):
    catalog = catalog_of(two_db_deployment)
    pairs = set(catalog.tables())
    assert ("A", "users") in pairs
    assert ("B", "events") in pairs


def test_stats_available_after_refresh(two_db_deployment):
    catalog = catalog_of(two_db_deployment)
    catalog.refresh()
    stats = catalog.stats_of("A", "users")
    assert stats is not None and stats.row_count == 20


def test_refresh_counts_control_messages(two_db_deployment):
    connector = two_db_deployment.connector("A")
    before = connector.control_messages
    catalog_of(two_db_deployment).refresh()
    # one list_tables + one stats call per table
    assert connector.control_messages == before + 2


def test_scan_stats_for_placeholder():
    from repro.relational.algebra import Scan

    catalog = GlobalCatalog({})
    scan = Scan(
        "ph",
        "x",
        Schema([Field("a", INTEGER)]),
        placeholder=True,
        requalify=False,
    )
    scan.estimated_rows = 42.0
    assert catalog.scan_stats(scan).row_count == 42.0
