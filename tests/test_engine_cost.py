"""Cardinality estimation and cost model tests."""

import pytest

from repro.engine.cost import CardinalityEstimator, CostModel
from repro.engine.database import Database
from repro.engine.profiles import profile_for
from repro.relational import algebra
from repro.relational.builder import build_plan
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.types import DATE, DOUBLE, INTEGER, varchar

import datetime


@pytest.fixture
def db():
    database = Database("D")
    database.create_table(
        "facts",
        Schema(
            [
                Field("id", INTEGER),
                Field("cat", varchar(4)),
                Field("amount", DOUBLE),
                Field("d", DATE),
            ]
        ),
        [
            (
                i,
                ["a", "b", "c", "d"][i % 4],
                float(i),
                datetime.date(2020, 1, 1) + datetime.timedelta(days=i % 100),
            )
            for i in range(1000)
        ],
    )
    database.create_table(
        "dims",
        Schema([Field("id", INTEGER), Field("label", varchar(6))]),
        [(i, f"l{i}") for i in range(50)],
    )
    return database


def estimate(db, sql):
    plan = build_plan(parse_statement(sql), db.catalog)
    plan = db.planner.optimize(plan)
    estimator = db.planner.make_estimator()
    return estimator.estimate_rows(plan), plan


def test_scan_estimate_is_row_count(db):
    rows, _ = estimate(db, "SELECT id FROM facts")
    assert rows == 1000


def test_equality_selectivity_uses_ndv(db):
    rows, _ = estimate(db, "SELECT id FROM facts WHERE cat = 'a'")
    assert rows == pytest.approx(250, rel=0.05)


def test_range_selectivity_uses_min_max(db):
    rows, _ = estimate(db, "SELECT id FROM facts WHERE id < 100")
    assert rows == pytest.approx(100, rel=0.2)


def test_date_range_selectivity(db):
    rows, _ = estimate(
        db, "SELECT id FROM facts WHERE d < DATE '2020-01-26'"
    )
    assert rows == pytest.approx(250, rel=0.2)


def test_between_selectivity(db):
    rows, _ = estimate(
        db, "SELECT id FROM facts WHERE id BETWEEN 100 AND 199"
    )
    assert rows == pytest.approx(100, rel=0.25)


def test_in_list_selectivity(db):
    rows, _ = estimate(db, "SELECT id FROM facts WHERE cat IN ('a', 'b')")
    assert rows == pytest.approx(500, rel=0.1)


def test_conjunction_multiplies(db):
    rows, _ = estimate(
        db, "SELECT id FROM facts WHERE cat = 'a' AND id < 100"
    )
    assert rows == pytest.approx(25, rel=0.4)


def test_join_selectivity_uses_key_ndv(db):
    rows, _ = estimate(
        db,
        "SELECT f.id AS fi FROM facts f, dims s WHERE f.id = s.id",
    )
    # 1000 * 50 / max(1000, 50) = 50
    assert rows == pytest.approx(50, rel=0.3)


def test_aggregate_estimate_bounded_by_group_ndv(db):
    rows, _ = estimate(
        db, "SELECT cat, COUNT(*) AS n FROM facts GROUP BY cat"
    )
    assert rows == pytest.approx(4, abs=2)


def test_limit_caps_estimate(db):
    rows, _ = estimate(db, "SELECT id FROM facts LIMIT 7")
    assert rows == 7


def test_estimates_annotate_every_node(db):
    _, plan = estimate(
        db, "SELECT f.id AS fi FROM facts f, dims s WHERE f.id = s.id"
    )

    def check(node):
        assert node.estimated_rows is not None
        for child in node.children():
            check(child)

    check(plan)


def test_cost_monotone_in_input_size(db):
    profile = profile_for("postgres")
    model = CostModel(profile)
    estimator = db.planner.make_estimator()
    small = build_plan(
        parse_statement("SELECT id FROM dims"), db.catalog
    )
    large = build_plan(
        parse_statement("SELECT id FROM facts"), db.catalog
    )
    assert model.plan_cost(large, estimator) > model.plan_cost(
        small, estimator
    )


def test_cost_includes_startup(db):
    profile = profile_for("hive")
    model = CostModel(profile)
    estimator = db.planner.make_estimator()
    plan = build_plan(parse_statement("SELECT id FROM dims"), db.catalog)
    assert model.plan_cost(plan, estimator) >= profile.startup_cost


def test_placeholder_scan_uses_preset_estimate():
    scan = algebra.Scan(
        "ph",
        "x",
        Schema([Field("a", INTEGER)]),
        placeholder=True,
        requalify=False,
    )
    scan.estimated_rows = 1234.0

    def provider(node):
        from repro.engine.cost import ScanStats

        assert node.placeholder
        return ScanStats(row_count=node.estimated_rows, columns={})

    estimator = CardinalityEstimator(provider)
    assert estimator.estimate_rows(scan) == 1234.0


def test_calibration_converts_units_to_seconds():
    profile = profile_for("postgres")
    assert profile.cost_to_seconds(profile.calibration) == pytest.approx(1.0)


def test_distinct_estimate_uses_column_ndv(db):
    """DISTINCT over a 4-value category is ~4 rows, not 90% of input."""
    rows, _ = estimate(db, "SELECT DISTINCT cat FROM facts")
    assert rows == pytest.approx(4, abs=1)


def test_distinct_estimate_capped_by_input_rows(db):
    rows, _ = estimate(db, "SELECT DISTINCT id, cat FROM facts")
    assert rows <= 1000


def test_distinct_without_stats_keeps_conservative_fallback():
    scan = algebra.Scan(
        "ph",
        "x",
        Schema([Field("a", INTEGER)]),
        placeholder=True,
        requalify=False,
    )
    scan.estimated_rows = 500.0
    distinct = algebra.Distinct(scan)

    def provider(node):
        from repro.engine.cost import ScanStats

        return ScanStats(row_count=node.estimated_rows, columns={})

    estimator = CardinalityEstimator(provider)
    rows = estimator.estimate_rows(distinct)
    assert rows == pytest.approx(450.0)


def test_union_estimate_adds_inputs_and_keeps_column_stats(db):
    plan = build_plan(
        parse_statement(
            "SELECT cat FROM facts UNION ALL SELECT label FROM dims"
        ),
        db.catalog,
    )
    plan = db.planner.optimize(plan)
    estimator = db.planner.make_estimator()
    est = estimator._estimate(plan)
    assert est.rows == 1050
    # Column statistics survive the union (the seed discarded them):
    # the merged NDV reflects both sides.
    assert est.columns, "union estimate lost all column statistics"
    (stats,) = [
        s for (_, name), s in est.columns.items() if name == "cat"
    ]
    assert 4 <= stats.ndv <= 1050
