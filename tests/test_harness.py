"""Benchmark harness tests."""

import pytest

from repro.bench.harness import (
    RunRecord,
    build_systems,
    run_garlic,
    run_xdb,
    verify_equivalence,
)
from repro.bench.reporting import format_table
from repro.bench.scenarios import (
    HETEROGENEOUS_PROFILES,
    MICRO_SF,
    build_tpch_deployment,
    sf_label,
)
from repro.engine.result import Result
from repro.errors import ReproError
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER
from repro.workloads.tpch import query


def test_sf_label_known_and_unknown():
    assert sf_label(MICRO_SF[10]) == "sf10"
    assert "micro" in sf_label(0.12345)


def test_build_deployment_places_tables_per_td():
    deployment, data = build_tpch_deployment("TD2", 0.001)
    assert "lineitem" in deployment.database("db1").catalog.names()
    assert "supplier" in deployment.database("db1").catalog.names()
    assert "customer" in deployment.database("db3").catalog.names()


def test_heterogeneous_profile_overlay():
    deployment, _ = build_tpch_deployment(
        "TD1", 0.001, profiles=HETEROGENEOUS_PROFILES
    )
    assert deployment.database("db2").profile.name == "mariadb"
    assert deployment.database("db3").profile.name == "hive"
    assert deployment.database("db1").profile.name == "postgres"


def test_run_records_have_metrics(tpch_tiny):
    deployment, _ = tpch_tiny
    record = run_xdb(deployment, query("Q3"), "Q3")
    assert record.total_seconds > 0
    assert record.bytes_total > 0
    assert 0 < record.rows_returned <= 10  # Q3 has LIMIT 10
    assert record.extra["tasks"] >= 1
    assert record.megabytes_total == record.bytes_total / 1e6


def test_run_garlic_record(tpch_tiny):
    deployment, _ = tpch_tiny
    record = run_garlic(deployment, query("Q3"), "Q3")
    assert record.system == "Garlic"
    assert record.transfer_seconds > 0


def test_system_set_runs_and_checks(tpch_tiny):
    deployment, _ = tpch_tiny
    systems = build_systems(deployment)
    records = systems.run_all(query("Q10"), "Q10")
    assert set(records) == {"XDB", "Garlic", "Presto", "Sclera"}


def test_verify_equivalence_detects_mismatch():
    schema = Schema([Field("a", INTEGER)])
    good = RunRecord(
        system="one", query="q", total_seconds=1, transfer_seconds=0,
        processing_seconds=1, bytes_total=0, bytes_to_cloud=0,
        bytes_cross_site=0, rows_returned=1,
        result=Result(schema, [(1,)]),
    )
    bad = RunRecord(
        system="two", query="q", total_seconds=1, transfer_seconds=0,
        processing_seconds=1, bytes_total=0, bytes_to_cloud=0,
        bytes_cross_site=0, rows_returned=1,
        result=Result(schema, [(2,)]),
    )
    with pytest.raises(ReproError):
        verify_equivalence([good, bad])
    verify_equivalence([good, good])


def test_format_table_alignment():
    text = format_table(
        ["name", "value"], [["Q3", 1.2345], ["Q10", 100.0]]
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "Q10" in lines[3]
