"""Motivating-scenario tests (§II-A)."""

import pytest

from repro.core.client import XDB
from repro.workloads.pandemic import (
    CHO_QUERY,
    PANDEMIC_SCHEMAS,
    build_pandemic_deployment,
)

from conftest import assert_same_rows, ground_truth_database


def test_table_i_schemas():
    assert set(PANDEMIC_SCHEMAS) == {"CDB", "VDB", "HDB"}
    assert PANDEMIC_SCHEMAS["VDB"]["Vaccination"].names == [
        "c_id",
        "v_id",
        "date",
    ]


def test_deployment_hosts_tables_per_table_i():
    deployment = build_pandemic_deployment(
        citizens=50, vaccinations=60, measurements=70
    )
    assert deployment.database("CDB").catalog.names() == ["Citizen"]
    assert deployment.database("VDB").catalog.names() == [
        "Vaccination",
        "Vaccines",
    ]
    assert deployment.database("HDB").catalog.names() == ["Measurements"]


def test_cho_query_answers(tpch_tiny=None):
    deployment = build_pandemic_deployment(
        citizens=250, vaccinations=400, measurements=500, seed=77
    )
    report = XDB(deployment).submit(CHO_QUERY)
    assert report.result.column_names == ["type", "avg_u_ml", "age_group"]
    groups = {row[2] for row in report.result.rows}
    assert groups <= {"20-30", "30-40", "40-50", "50-60", "60+"}
    truth = ground_truth_database(deployment).execute(
        CHO_QUERY.replace("CDB.", "").replace("VDB.", "").replace("HDB.", "")
    )
    assert_same_rows(report.result.rows, truth.rows)


def test_determinism_by_seed():
    one = build_pandemic_deployment(citizens=50, seed=9)
    two = build_pandemic_deployment(citizens=50, seed=9)
    rows_one = one.database("CDB").catalog.get("Citizen").rows
    rows_two = two.database("CDB").catalog.get("Citizen").rows
    assert rows_one == rows_two


def test_vendor_profiles_applied():
    deployment = build_pandemic_deployment(
        citizens=30, profiles={"VDB": "mariadb"}
    )
    assert deployment.database("VDB").profile.name == "mariadb"
    assert deployment.database("CDB").profile.name == "postgres"


def test_geo_topology_option():
    deployment = build_pandemic_deployment(citizens=30, topology="geo")
    assert deployment.network.is_cross_site("CDB", "VDB")
