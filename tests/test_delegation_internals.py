"""Delegation engine and MW decomposition internals / error paths."""

import pytest

from repro.baselines.mediator import MEDIATOR, MediatorSystem
from repro.core.delegate import DelegationEngine
from repro.core.plan import DelegationPlan, Movement
from repro.core.timing import _consuming_join_sides
from repro.errors import DelegationError
from repro.relational import algebra
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_expression
from repro.sql.types import INTEGER
from repro.workloads.tpch import query

T = Schema([Field("a", INTEGER), Field("k", INTEGER)])


def test_delegate_requires_known_connector():
    dplan = DelegationPlan()
    task = dplan.new_task(
        "GHOST_DB", algebra.Scan("t", "t", T, source_db="GHOST_DB")
    )
    dplan.set_root(task)
    engine = DelegationEngine({})
    with pytest.raises(DelegationError, match="GHOST_DB"):
        engine.delegate(dplan)


def test_resolve_placeholder_missing_raises(two_db_deployment):
    dplan = DelegationPlan()
    producer = dplan.new_task(
        "A",
        algebra.Scan(
            "users",
            "u",
            two_db_deployment.database("A").catalog.get("users").schema,
            source_db="A",
        ),
    )
    consumer_expr = algebra.Scan(
        "events",
        "e",
        two_db_deployment.database("B").catalog.get("events").schema,
        source_db="B",
    )
    consumer = dplan.new_task("B", consumer_expr)
    dplan.add_edge(producer, consumer, Movement.IMPLICIT, "xin_missing")
    dplan.set_root(consumer)
    engine = DelegationEngine(two_db_deployment.connectors)
    with pytest.raises(DelegationError, match="placeholder"):
        engine.delegate(dplan)


def test_query_ids_monotonic(two_db_deployment):
    from repro.core.client import XDB

    xdb = XDB(two_db_deployment)
    sql = (
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id"
    )
    first = xdb.submit(sql)
    second = xdb.submit(sql)
    first_views = [n for _, _, n in first.deployed.created_objects]
    second_views = [
        name for _, _, name in second.deployed.created_objects
    ]
    del first_views  # cleaned up already; names recorded in ddl_log
    assert any("xv_1_" in sql_text for _, sql_text in first.deployed.ddl_log)
    assert any(
        "xv_2_" in sql_text for _, sql_text in second.deployed.ddl_log
    )
    del second_views


def test_consuming_join_sides_direct_and_fallback():
    placeholder = algebra.Scan(
        "ph",
        "xin_1",
        Schema([Field("k", INTEGER, "p")]),
        placeholder=True,
        requalify=False,
    )
    other = algebra.Scan("t", "t", T, source_db="A")
    join = algebra.Join(
        placeholder, other, parse_expression("p.k = t.k")
    )

    class FakeTask:
        expr = join

    leaf, sibling = _consuming_join_sides(FakeTask, "xin_1")
    assert leaf is placeholder
    assert sibling is other

    class LoneTask:
        expr = placeholder

    leaf, sibling = _consuming_join_sides(LoneTask, "xin_1")
    assert leaf is placeholder and sibling is None

    class NoMatch:
        expr = other

    leaf, sibling = _consuming_join_sides(NoMatch, "xin_1")
    assert leaf is None and sibling is None


# -- MW decomposition internals ------------------------------------------------------


def test_mw_annotation_marks_cross_db_as_mediator(tpch_tiny):
    deployment, _ = tpch_tiny
    system = MediatorSystem(deployment, mediator_name="mw_test_mediator")
    from repro.sql.parser import parse_statement

    plan = system.optimizer.optimize(parse_statement(query("Q3")))
    annotation = system._annotate(plan)
    root_db = annotation.db_of(plan)
    assert root_db == MEDIATOR


def test_mw_no_colocated_pushdown_variant(tpch_tiny):
    deployment, _ = tpch_tiny

    class PerTable(MediatorSystem):
        name = "per-table"
        pushdown_colocated_joins = False

    system = PerTable(deployment, mediator_name="pt_mediator")
    report = system.run(query("Q3"))
    # customer+orders are co-located on db2 under TD1, but a per-table
    # system still fetches them separately: 3 subqueries.
    assert report.subquery_count == 3


def test_mw_single_source_query_short_circuits(tpch_tiny):
    deployment, _ = tpch_tiny
    system = MediatorSystem(deployment, mediator_name="sq_mediator")
    report = system.run(query("Q1"))  # lineitem only
    assert report.subquery_count == 1
    assert len(report.result) > 0
