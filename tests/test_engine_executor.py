"""Physical operator tests (via the engine's SQL interface and direct)."""

import pytest

from repro.engine import physical
from repro.engine.database import Database
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows


@pytest.fixture
def db():
    database = Database("X")
    database.create_table(
        "t",
        Schema(
            [Field("k", INTEGER), Field("g", varchar(2)), Field("v", DOUBLE)]
        ),
        [
            (1, "a", 10.0),
            (2, "b", 20.0),
            (3, "a", None),
            (4, None, 40.0),
            (5, "b", 50.0),
        ],
    )
    database.create_table(
        "u",
        Schema([Field("k", INTEGER), Field("w", INTEGER)]),
        [(1, 100), (2, 200), (2, 201), (None, 999), (7, 700)],
    )
    return database


# -- joins ----------------------------------------------------------------------


def test_inner_hash_join_basic(db):
    result = db.execute(
        "SELECT t.k, u.w FROM t, u WHERE t.k = u.k ORDER BY t.k, u.w"
    )
    assert result.rows == [(1, 100), (2, 200), (2, 201)]


def test_null_keys_never_match(db):
    result = db.execute("SELECT COUNT(*) AS n FROM t, u WHERE t.k = u.k")
    assert result.rows == [(3,)]


def test_left_join_pads_with_nulls(db):
    result = db.execute(
        "SELECT t.k, u.w FROM t LEFT JOIN u ON t.k = u.k ORDER BY t.k, u.w"
    )
    assert (3, None) in result.rows
    assert (4, None) in result.rows
    assert len(result.rows) == 6  # 3 matches + 3 unmatched left rows


def test_cross_join_cardinality(db):
    result = db.execute("SELECT COUNT(*) AS n FROM t CROSS JOIN u")
    assert result.rows == [(25,)]


def test_non_equi_join_uses_nested_loop(db):
    result = db.execute(
        "SELECT COUNT(*) AS n FROM t, u WHERE t.k < u.k"
    )
    # pairs with t.k < u.k (u.k in {1,2,2,7}): count manually: t.k=1 ->
    # u.k in {2,2,7} = 3; 2 -> {7}=1; 3 -> 1; 4 -> 1; 5 -> 1  => 7
    assert result.rows == [(7,)]


def test_multi_key_hash_join(db):
    db.create_table(
        "p",
        Schema([Field("k", INTEGER), Field("w", INTEGER)]),
        [(2, 200), (2, 999)],
    )
    result = db.execute(
        "SELECT COUNT(*) AS n FROM u, p WHERE u.k = p.k AND u.w = p.w"
    )
    assert result.rows == [(1,)]


# -- aggregation -----------------------------------------------------------------


def test_aggregates_ignore_nulls(db):
    result = db.execute(
        "SELECT COUNT(*) AS all_rows, COUNT(v) AS non_null, SUM(v) AS s, "
        "AVG(v) AS m, MIN(v) AS lo, MAX(v) AS hi FROM t"
    )
    assert result.rows == [(5, 4, 120.0, 30.0, 10.0, 50.0)]


def test_group_by_with_null_group(db):
    result = db.execute(
        "SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY n DESC, g"
    )
    # NULL forms its own group.
    assert (None, 1) in result.rows
    assert ("a", 2) in result.rows


def test_global_aggregate_over_empty_input(db):
    result = db.execute(
        "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k > 100"
    )
    assert result.rows == [(0, None)]


def test_group_aggregate_over_empty_input(db):
    result = db.execute(
        "SELECT g, COUNT(*) AS n FROM t WHERE k > 100 GROUP BY g"
    )
    assert result.rows == []


def test_count_distinct(db):
    result = db.execute("SELECT COUNT(DISTINCT g) AS n FROM t")
    assert result.rows == [(2,)]


def test_avg_of_empty_group_is_null(db):
    result = db.execute("SELECT AVG(v) AS m FROM t WHERE v IS NULL")
    assert result.rows == [(None,)]


# -- sort / limit / distinct ----------------------------------------------------------


def test_sort_nulls_last_ascending(db):
    result = db.execute("SELECT g FROM t ORDER BY g")
    assert result.rows[-1] == (None,)


def test_sort_desc_nulls_first(db):
    result = db.execute("SELECT g FROM t ORDER BY g DESC")
    assert result.rows[0] == (None,)


def test_multi_key_sort_stability(db):
    result = db.execute("SELECT g, k FROM t ORDER BY g, k DESC")
    values = [row for row in result.rows if row[0] == "a"]
    assert values == [("a", 3), ("a", 1)]


def test_limit(db):
    result = db.execute("SELECT k FROM t ORDER BY k LIMIT 2")
    assert result.rows == [(1,), (2,)]


def test_limit_zero(db):
    assert db.execute("SELECT k FROM t LIMIT 0").rows == []


def test_distinct(db):
    result = db.execute("SELECT DISTINCT g FROM t")
    assert len(result.rows) == 3  # 'a', 'b', NULL


# -- operator bookkeeping -----------------------------------------------------------


def test_rows_out_counting():
    scan = physical.ValuesScan(
        Schema([Field("x", INTEGER)]), [(1,), (2,), (3,)]
    )
    limit = physical.LimitOp(scan, 2)
    rows = list(limit.rows())
    assert len(rows) == 2
    assert limit.rows_out == 2
    assert scan.rows_out == 2  # limit stops pulling early


def test_total_rows_processed():
    scan = physical.ValuesScan(
        Schema([Field("x", INTEGER)]), [(1,), (2,), (3,)]
    )
    filt = physical.FilterOp(scan, lambda row: row[0] > 1)
    list(filt.rows())
    assert filt.total_rows_processed() == 3 + 2


def test_pretty_renders_tree():
    scan = physical.ValuesScan(Schema([Field("x", INTEGER)]), [])
    limit = physical.LimitOp(scan, 1)
    text = limit.pretty()
    assert "Limit[1]" in text and "ValuesScan" in text
