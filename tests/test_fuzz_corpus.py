"""The fuzzer's regression corpus and a small seeded campaign.

Every file in ``tests/corpus/`` is a minimized spec for a bug that has
been fixed; replaying it must pass forever.  The seeded campaign is a
fast CI-sized slice of the full ``python -m repro.fuzz`` run.
"""

import os

from repro.fuzz.corpus import load_corpus, replay_corpus, save_case
from repro.fuzz.generators import generate_case, spec_to_statement
from repro.fuzz.oracle import run_case
from repro.fuzz.runner import run_fuzz
from repro.fuzz.shrink import shrink_case

import random

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def test_corpus_is_nonempty_and_wellformed():
    entries = load_corpus(CORPUS_DIR)
    assert len(entries) >= 8
    for filename, entry in entries:
        assert entry["name"], filename
        assert entry["description"], filename
        assert entry["spec"]["kind"], filename


def test_corpus_replay_passes():
    assert replay_corpus(CORPUS_DIR) == []


def test_seeded_fuzz_run_survives():
    """A CI-sized slice of the campaign: zero surviving failures."""
    report = run_fuzz(seed=7, cases=60, corpus_dir=CORPUS_DIR)
    assert report.ok, (report.failures, report.regressions)
    # The generator mix covers every oracle family.
    assert {"foreign_table", "query", "pushdown"} <= set(report.kinds)


def test_generator_is_deterministic():
    a = [generate_case(random.Random(7 * 1_000_003 + i)) for i in range(20)]
    b = [generate_case(random.Random(7 * 1_000_003 + i)) for i in range(20)]
    assert a == b


def test_generated_specs_are_statement_convertible():
    for i in range(50):
        spec = generate_case(random.Random(i))
        if spec["kind"] in ("pushdown", "partition"):
            continue
        spec_to_statement(spec)  # must not raise


def test_shrinker_minimizes_while_preserving_failure():
    spec = {
        "kind": "foreign_table",
        "name": "some long irrelevant'name",
        "columns": [
            ["keep'me", ["VARCHAR", 25]],
            ["extra column", ["DOUBLE"]],
            ["another", ["DATE"]],
        ],
        "server": "srv",
        "remote_object": "obj",
    }

    # Synthetic failure predicate: "fails" while any identifier has a
    # quote.  The shrinker must keep a quote but shed everything else.
    def still_fails(candidate):
        texts = [candidate["name"]] + [
            name for name, _ in candidate["columns"]
        ]
        return any("'" in text for text in texts)

    shrunk = shrink_case(spec, still_fails)
    assert still_fails(shrunk)
    assert len(shrunk["columns"]) == 1
    import json

    assert len(json.dumps(shrunk)) < len(json.dumps(spec))


def test_save_case_roundtrips(tmp_path):
    spec = {"kind": "drop", "name": "t", "objkind": "TABLE",
            "if_exists": True}
    save_case(str(tmp_path), "example", "why", spec)
    entries = load_corpus(str(tmp_path))
    assert entries[0][1]["spec"] == spec
    assert run_case(spec) == []
