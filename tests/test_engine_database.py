"""Database-level tests: SQL dispatch, DDL, INSERT, EXPLAIN, errors."""

import pytest

from repro.engine.database import Database
from repro.errors import CatalogError, ExecutionError
from repro.relational.schema import Field, Schema
from repro.sql.types import DATE, INTEGER, varchar


@pytest.fixture
def db():
    database = Database("D")
    database.create_table(
        "people",
        Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(16)),
                Field("age", INTEGER),
            ]
        ),
        [(i, f"p{i}", 20 + i) for i in range(10)],
    )
    return database


def test_select_returns_result_with_schema(db):
    result = db.execute("SELECT id, name FROM people WHERE age > 25")
    assert result.column_names == ["id", "name"]
    assert len(result) == 4


def test_create_table_and_insert(db):
    db.execute("CREATE TABLE log (id INT, d DATE)")
    db.execute(
        "INSERT INTO log VALUES (1, DATE '2020-01-01'), (2, NULL)"
    )
    result = db.execute("SELECT COUNT(*) AS n, COUNT(d) AS d FROM log")
    assert result.rows == [(2, 1)]


def test_insert_with_column_list_fills_nulls(db):
    db.execute("CREATE TABLE log (id INT, d DATE)")
    db.execute("INSERT INTO log (id) VALUES (7)")
    assert db.execute("SELECT id, d FROM log").rows == [(7, None)]


def test_insert_arity_mismatch(db):
    db.execute("CREATE TABLE log (id INT, d DATE)")
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO log (id) VALUES (1, 2)")


def test_insert_into_view_rejected(db):
    db.execute("CREATE VIEW v AS SELECT id FROM people")
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO v VALUES (1)")


def test_create_view_validates_body(db):
    with pytest.raises(Exception):
        db.execute("CREATE VIEW broken AS SELECT nope FROM people")


def test_view_expansion_and_nesting(db):
    db.execute("CREATE VIEW adults AS SELECT id, age FROM people WHERE age > 24")
    db.execute("CREATE VIEW seniors AS SELECT id FROM adults WHERE age > 27")
    result = db.execute("SELECT COUNT(*) AS n FROM seniors")
    assert result.rows == [(2,)]


def test_create_or_replace_view(db):
    db.execute("CREATE VIEW v AS SELECT id FROM people")
    db.execute("CREATE OR REPLACE VIEW v AS SELECT name FROM people")
    assert db.execute("SELECT * FROM v").column_names == ["name"]


def test_create_table_as(db):
    db.execute("CREATE TABLE olds AS SELECT * FROM people WHERE age >= 28")
    assert db.execute("SELECT COUNT(*) AS n FROM olds").rows == [(2,)]


def test_drop_behaviour(db):
    db.execute("CREATE TABLE tmp (a INT)")
    db.execute("DROP TABLE tmp")
    with pytest.raises(CatalogError):
        db.execute("DROP TABLE tmp")
    db.execute("DROP TABLE IF EXISTS tmp")  # no error


def test_explain_returns_plan_text_and_info(db):
    result = db.execute("EXPLAIN SELECT * FROM people WHERE age > 25")
    text = "\n".join(row[0] for row in result.rows)
    assert "Scan[people]" in text
    info = result.explain_info
    assert info.estimated_rows > 0
    assert info.total_cost > 0


def test_explain_does_not_execute(db):
    before = db.trace.rows_processed
    db.execute("EXPLAIN SELECT * FROM people")
    assert db.trace.rows_processed == before


def test_unknown_table_error_names_database(db):
    with pytest.raises(CatalogError, match="'D'"):
        db.execute("SELECT * FROM ghost")


def test_server_registry(db):
    with pytest.raises(CatalogError):
        db.server("nowhere")
    db.register_server("r1", object())
    assert db.server_names() == ["r1"]


def test_trace_accumulates(db):
    db.trace.reset()
    db.execute("SELECT id FROM people")
    db.execute("SELECT id FROM people")
    assert db.trace.statements == 2
    assert db.trace.rows_returned == 20
    assert len(db.trace.statement_log) == 2


def test_table_stats_for_views_is_none(db):
    db.execute("CREATE VIEW v AS SELECT id FROM people")
    assert db.table_stats("v") is None
    assert db.table_stats("people").row_count == 10


def test_result_to_table_rendering(db):
    text = db.execute("SELECT id, name FROM people LIMIT 2").to_table()
    assert "id" in text and "name" in text and "p0" in text
