"""QoS tests: deadlines, admission control, cancellation, degradation.

Covers the overload-robustness layer end to end: the deadline algebra
and its grace budget, expiry at every phase boundary with transactional
rollback (zero leaked objects — or, when the grace budget is also
exhausted, leaks *reported* in the structured error), the workload
gate's shed/evict/priority semantics under real concurrency, stale
reads against a snapshot oracle, and the half-open breaker's
single-probe admission.
"""

import threading

import pytest

from repro.core.client import XDB
from repro.errors import (
    CircuitOpenError,
    ConnectorError,
    DeadlineExceeded,
    OverloadError,
)
from repro.federation.deployment import Deployment
from repro.health import BreakerConfig, BreakerState, HealthRegistry
from repro.obs.context import QueryContext
from repro.obs.runtime import current_context
from repro.qos import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Deadline,
    GateConfig,
    QoSPolicy,
    WorkloadGate,
)
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER, varchar

from conftest import assert_same_rows

JOIN_QUERY = """
    SELECT u.name, COUNT(*) AS n
    FROM users u, events e
    WHERE u.id = e.user_id
    GROUP BY u.name
    ORDER BY u.name
"""


def build_small() -> Deployment:
    """users @ A, events @ B — the minimal cross-database join."""
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "users",
        Schema([Field("id", INTEGER), Field("name", varchar(16))]),
        [(i, f"user{i}") for i in range(1, 11)],
    )
    dep.load_table(
        "B",
        "events",
        Schema([Field("user_id", INTEGER), Field("kind", varchar(8))]),
        [(1 + i % 10, ["login", "query"][i % 2]) for i in range(40)],
    )
    return dep


def residue(dep: Deployment):
    """Short-lived delegation objects left on any engine."""
    return sorted(
        f"{name}:{obj}"
        for name, database in dep.databases.items()
        for obj in database.catalog.names()
        if obj.startswith(("xf_", "xm_", "xv_"))
    )


# -- deadline algebra ------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_deadline_draws_down_armed_clock_and_consumed_seconds():
    clock = FakeClock()
    deadline = Deadline(10.0).arm(clock)
    assert deadline.remaining_seconds == 10.0
    clock.now = 4.0
    assert deadline.elapsed_seconds == 4.0
    deadline.consume(3.0)
    assert deadline.elapsed_seconds == 7.0
    assert deadline.remaining_seconds == pytest.approx(3.0)
    assert not deadline.expired
    clock.now = 7.5
    assert deadline.expired
    with pytest.raises(DeadlineExceeded) as err:
        deadline.check("execute", detail="query@A")
    assert err.value.phase == "execute"
    assert err.value.detail == "query@A"
    assert err.value.budget_seconds == 10.0
    assert err.value.elapsed_seconds == pytest.approx(10.5)


def test_deadline_rejects_negative_budget_and_ignores_negative_consume():
    with pytest.raises(ValueError):
        Deadline(-1.0)
    deadline = Deadline(5.0)
    deadline.consume(-2.0)
    assert deadline.elapsed_seconds == 0.0


def test_call_cap_is_min_of_remaining_per_call_and_policy_cap():
    clock = FakeClock()
    deadline = Deadline(10.0, per_call_cap_seconds=4.0).arm(clock)
    assert deadline.call_cap(30.0) == 4.0  # per-call cap binds
    assert deadline.call_cap(2.0) == 2.0  # policy cap binds
    clock.now = 7.0
    assert deadline.call_cap(30.0) == pytest.approx(3.0)  # remaining binds
    clock.now = 12.0
    assert deadline.call_cap(30.0) == 0.0  # never negative
    assert Deadline(10.0).call_cap(None) == 10.0


def test_grace_window_opens_bounded_cleanup_budget():
    clock = FakeClock()
    deadline = Deadline(2.0, grace_seconds=5.0).arm(clock)
    clock.now = 3.0  # a second past the deadline
    assert deadline.expired
    with deadline.grace():
        assert deadline.in_grace
        assert deadline.remaining_seconds == pytest.approx(5.0)
        clock.now = 6.0
        assert deadline.remaining_seconds == pytest.approx(2.0)
        with deadline.grace():  # nested: same anchor, no fresh budget
            assert deadline.remaining_seconds == pytest.approx(2.0)
        clock.now = 9.0
        assert deadline.expired
        err = deadline.exceeded("rollback")
        assert "grace budget" in str(err)
    assert not deadline.in_grace
    assert deadline.expired  # the original deadline is still gone


# -- the workload gate (units) ---------------------------------------------


def test_gate_admits_under_capacity_and_releases():
    gate = WorkloadGate(GateConfig(max_concurrent=2))
    a = gate.acquire(["A"])
    b = gate.acquire(["A"])
    assert gate.saturated("A")
    a.release()
    a.release()  # idempotent
    assert not gate.saturated("A")
    b.release()
    assert gate.admitted == 2
    assert gate.snapshot()["A"] == {"active": 0, "queued": 0}


def test_gate_sheds_nonblocking_and_zero_queue():
    gate = WorkloadGate(GateConfig(max_concurrent=1, max_queue=0))
    lease = gate.acquire(["A"])
    with pytest.raises(OverloadError) as err:
        gate.acquire(["A"], block=False)
    assert err.value.db == "A"
    assert err.value.retry_after_seconds > 0.0
    with pytest.raises(OverloadError):
        gate.acquire(["A"])  # waiting room of size 0: shed immediately
    assert gate.sheds == 2
    lease.release()


def test_gate_multi_engine_acquisition_is_all_or_nothing():
    gate = WorkloadGate(GateConfig(max_concurrent=1, max_queue=0))
    held = gate.acquire(["B"])
    with pytest.raises(OverloadError):
        gate.acquire(["A", "B"], block=False)
    # The A token taken before B shed must have been returned.
    assert not gate.saturated("A")
    probe = gate.acquire(["A"], block=False)
    probe.release()
    held.release()


def test_gate_shed_then_retry_after_succeeds():
    gate = WorkloadGate(GateConfig(max_concurrent=1, max_queue=0))
    lease = gate.acquire(["A"])
    with pytest.raises(OverloadError) as err:
        gate.acquire(["A"])
    assert err.value.retry_after_seconds > 0.0
    lease.release()  # the backoff hint pays off: capacity freed
    retry = gate.acquire(["A"])
    assert retry.engines == ["A"]
    retry.release()


def test_gate_expired_deadline_in_queue_raises_admission_phase():
    gate = WorkloadGate(GateConfig(max_concurrent=1, max_queue=4))
    clock = FakeClock()
    deadline = Deadline(1.0).arm(clock)
    clock.now = 2.0  # already expired before queueing
    lease = gate.acquire(["A"])
    with pytest.raises(DeadlineExceeded) as err:
        gate.acquire(["A"], deadline=deadline)
    assert err.value.phase == "admission"
    assert "queue@A" in err.value.detail
    lease.release()


def test_gate_queue_penalty_charges_simulated_seconds():
    gate = WorkloadGate(
        GateConfig(max_concurrent=1, max_queue=4, queue_slot_sim_seconds=0.5)
    )
    holder = gate.acquire(["A"])
    results = []

    def first_waiter():
        lease = gate.acquire(["A"])
        results.append(lease.sim_penalty_seconds)
        lease.release()

    def second_waiter():
        lease = gate.acquire(["A"])
        results.append(lease.sim_penalty_seconds)
        lease.release()

    t1 = threading.Thread(target=first_waiter)
    t1.start()
    while gate.depth("A") < 1:
        pass
    t2 = threading.Thread(target=second_waiter)
    t2.start()
    while gate.depth("A") < 2:
        pass
    holder.release()
    t1.join()
    t2.join()
    # Penalty is 0.5 per queue position ahead at enqueue time: the
    # first waiter saw an empty queue, the second saw one ahead.
    assert sorted(results) == [0.0, 0.5]


def test_gate_higher_priority_arrival_evicts_lowest_waiter():
    gate = WorkloadGate(GateConfig(max_concurrent=1, max_queue=1))
    holder = gate.acquire(["A"])
    outcome = {}

    def low_waiter():
        try:
            lease = gate.acquire(["A"], priority=PRIORITY_LOW)
            lease.release()
            outcome["low"] = "admitted"
        except OverloadError:
            outcome["low"] = "shed"

    low = threading.Thread(target=low_waiter)
    low.start()
    while gate.depth("A") < 1:
        pass

    def high_waiter():
        lease = gate.acquire(["A"], priority=PRIORITY_HIGH)
        outcome["high"] = "admitted"
        lease.release()

    high = threading.Thread(target=high_waiter)
    high.start()
    low.join(timeout=10.0)
    assert outcome["low"] == "shed"  # evicted by the high arrival
    assert gate.evictions == 1
    holder.release()  # token hands directly to the high waiter
    high.join(timeout=10.0)
    assert outcome["high"] == "admitted"


def test_gate_equal_priority_arrival_is_shed_not_the_older_waiter():
    gate = WorkloadGate(GateConfig(max_concurrent=1, max_queue=1))
    holder = gate.acquire(["A"])
    admitted = []

    def waiter():
        lease = gate.acquire(["A"], priority=PRIORITY_NORMAL)
        admitted.append(True)
        lease.release()

    thread = threading.Thread(target=waiter)
    thread.start()
    while gate.depth("A") < 1:
        pass
    with pytest.raises(OverloadError):
        gate.acquire(["A"], priority=PRIORITY_NORMAL)
    holder.release()
    thread.join(timeout=10.0)
    assert admitted == [True]


# -- end-to-end: deadlines through the client ------------------------------


def phase_marks(dep: Deployment, xdb: XDB):
    """Simulated-clock marks of the clean run's phase boundaries."""
    report = xdb.submit(JOIN_QUERY)
    spans = {
        span.name: span for span in report.context.root.iter_spans()
    }
    return report, spans


def test_submit_with_qos_reports_receipt_and_meets_deadline():
    dep = build_small()
    xdb = XDB(dep)
    report = xdb.submit(
        JOIN_QUERY,
        qos=QoSPolicy(deadline_seconds=60.0, per_call_cap_seconds=10.0),
    )
    assert report.qos is not None
    assert report.qos.deadline_seconds == 60.0
    assert 0.0 < report.qos.deadline_remaining_seconds < 60.0
    assert report.qos.admitted_engines == ["A", "B"]
    assert not report.qos.stale_read
    assert "deadline" in report.qos.describe()
    assert residue(dep) == []


def test_deadline_zero_expires_in_prep_phase():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    with pytest.raises(DeadlineExceeded) as err:
        xdb.submit(JOIN_QUERY, qos=QoSPolicy(deadline_seconds=0.0))
    assert err.value.phase == "prep"
    assert residue(dep) == []


def test_deadline_expiry_mid_delegation_rolls_back_everything():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    _, spans = phase_marks(dep, xdb)
    delegate = spans["delegate"]
    assert delegate.sim_seconds > 0.0  # DDL control messages cost sim time
    budget = delegate.sim_start + delegate.sim_seconds / 2.0
    with pytest.raises(DeadlineExceeded) as err:
        xdb.submit(JOIN_QUERY, qos=QoSPolicy(deadline_seconds=budget))
    exc = err.value
    assert exc.phase == "delegate"
    assert exc.rolled_back  # the partial cascade was dropped...
    assert exc.leaked == []  # ...completely: nothing left behind
    assert residue(dep) == []  # and the engines agree


def test_deadline_expiry_after_execution_cancels_and_rolls_back():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    _, spans = phase_marks(dep, xdb)
    execute = spans["execute"]
    assert execute.sim_seconds > 0.0  # the result transfer costs sim time
    budget = execute.sim_start + execute.sim_seconds / 2.0
    with pytest.raises(DeadlineExceeded) as err:
        xdb.submit(JOIN_QUERY, qos=QoSPolicy(deadline_seconds=budget))
    exc = err.value
    assert exc.phase == "execute"
    assert exc.rolled_back
    assert exc.leaked == []
    assert residue(dep) == []


def test_expiry_phases_cover_ann_delegate_execute():
    """Sweep budgets across the clean run's timeline: every expiry is a
    structured DeadlineExceeded in a real phase, and no budget —
    however unluckily placed — leaks a single object."""
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    _, spans = phase_marks(dep, xdb)
    execute = spans["execute"]
    total = execute.sim_start + execute.sim_seconds
    seen = set()
    for fraction in (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95):
        with pytest.raises(DeadlineExceeded) as err:
            xdb.submit(
                JOIN_QUERY,
                qos=QoSPolicy(deadline_seconds=total * fraction),
            )
        assert err.value.leaked == []
        assert residue(dep) == []
        seen.add(err.value.phase)
    assert seen <= {"prep", "lopt", "ann", "admission", "delegate", "execute"}
    assert {"ann", "delegate"} <= seen or {"ann", "execute"} <= seen


def test_exhausted_grace_budget_reports_leaks_not_silence():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    _, spans = phase_marks(dep, xdb)
    delegate = spans["delegate"]
    budget = delegate.sim_start + delegate.sim_seconds / 2.0
    with pytest.raises(DeadlineExceeded) as err:
        xdb.submit(
            JOIN_QUERY,
            qos=QoSPolicy(deadline_seconds=budget, grace_seconds=0.0),
        )
    exc = err.value
    # With no grace budget the rollback drops all fail fast: every
    # object the cascade created must be *reported* leaked...
    assert exc.rolled_back == []
    assert exc.leaked
    # ...and the report must match what is actually left on the engines.
    left = residue(dep)
    assert len(left) == len(exc.leaked)
    for db, _kind, name in exc.leaked:
        assert f"{db}:{name}" in left
    # A later explicit cleanup (fresh budget) clears the leak.
    for db, kind, name in exc.leaked:
        from repro.sql import ast

        dep.connector(db).execute_ddl(
            ast.DropObject(kind=kind, name=name, if_exists=True)
        )
    assert residue(dep) == []


def test_submit_sheds_with_retry_after_when_gate_is_full():
    dep = build_small()
    dep.configure_qos(GateConfig(max_concurrent=1, max_queue=0))
    blocker = dep.workload_gate.acquire(["A"])
    xdb = XDB(dep)
    xdb.warm_metadata()
    with pytest.raises(OverloadError) as err:
        xdb.submit(JOIN_QUERY, qos=QoSPolicy())
    assert err.value.retry_after_seconds > 0.0
    assert residue(dep) == []
    blocker.release()
    # The shed submission retried after the hint succeeds unchanged.
    report = xdb.submit(JOIN_QUERY, qos=QoSPolicy())
    assert len(report.result.rows) == 10
    assert residue(dep) == []


def test_submit_without_qos_bypasses_nothing_but_has_no_deadline():
    dep = build_small()
    dep.configure_qos(GateConfig(max_concurrent=1, max_queue=0))
    blocker = dep.workload_gate.acquire(["A"])
    xdb = XDB(dep)
    xdb.warm_metadata()
    # Admission applies to every submission, QoS policy or not.
    with pytest.raises(OverloadError):
        xdb.submit(JOIN_QUERY)
    blocker.release()
    report = xdb.submit(JOIN_QUERY)
    assert report.qos is None


# -- graceful degradation: stale reads -------------------------------------


def test_stale_read_serves_snapshot_when_engines_saturated():
    dep = build_small()
    dep.configure_qos(GateConfig(max_concurrent=1, max_queue=0))
    xdb = XDB(dep, movement_policy="explicit")  # force materialization
    prepared = xdb.prepare(JOIN_QUERY)
    assert prepared.deployed.materializations
    oracle = prepared.execute().result.sorted_rows()

    # A new user with new events arrives.  Only the root engine's
    # table is read live; the other side is served from the snapshot,
    # so a fresh read sees the newcomer and a stale read cannot.
    dep.database("A").execute("INSERT INTO users VALUES (11, 'user11')")
    dep.database("B").execute("INSERT INTO events VALUES (11, 'query')")
    dep.database("B").execute("INSERT INTO events VALUES (11, 'login')")

    # Saturate an engine the full plan needs but the stale path does
    # not: the root keeps one free token for the degraded execution.
    root = prepared.deployed.root_db
    other = next(db for db in ("A", "B") if db != root)
    blocker = dep.workload_gate.acquire([other])

    # Without a staleness bound the execution is shed outright.
    with pytest.raises(OverloadError):
        prepared.execute(qos=QoSPolicy())

    # With one, it degrades: answered from the existing snapshots.
    report = prepared.execute(qos=QoSPolicy(max_staleness_seconds=1e6))
    assert report.qos.stale_read
    assert report.qos.staleness_seconds is not None
    assert report.qos.admitted_engines == [root]
    assert_same_rows(report.result.sorted_rows(), oracle)

    # Capacity restored: the next execution refreshes and sees the
    # newcomer that the stale read correctly omitted.
    blocker.release()
    fresh = prepared.execute(qos=QoSPolicy(max_staleness_seconds=1e6))
    assert not fresh.qos.stale_read
    fresh_counts = dict(fresh.result.rows)
    stale_counts = dict(report.result.rows)
    assert "user11" not in stale_counts
    assert fresh_counts["user11"] == 2
    prepared.close()
    assert residue(dep) == []


def test_stale_read_respects_staleness_bound():
    dep = build_small()
    dep.configure_qos(GateConfig(max_concurrent=1, max_queue=0))
    xdb = XDB(dep, movement_policy="explicit")
    prepared = xdb.prepare(JOIN_QUERY)
    prepared.execute()
    root = prepared.deployed.root_db
    other = next(db for db in ("A", "B") if db != root)
    # Age the snapshots on the federation's simulated clock.
    dep.health.clock.advance(100.0)
    blocker = dep.workload_gate.acquire([other])
    # The snapshots are 100 simulated seconds old: a 10-second bound
    # refuses the degraded answer and the shed propagates.
    with pytest.raises(OverloadError):
        prepared.execute(qos=QoSPolicy(max_staleness_seconds=10.0))
    # A loose bound accepts it and reports the age served.
    report = prepared.execute(qos=QoSPolicy(max_staleness_seconds=200.0))
    assert report.qos.stale_read
    assert report.qos.staleness_seconds >= 100.0
    blocker.release()
    prepared.close()


def test_stale_read_on_refresh_circuit_open(monkeypatch):
    dep = build_small()
    xdb = XDB(dep, movement_policy="explicit")
    prepared = xdb.prepare(JOIN_QUERY)
    oracle = prepared.execute().result.sorted_rows()
    dep.database("A").execute("INSERT INTO users VALUES (12, 'user12')")
    dep.database("B").execute("INSERT INTO events VALUES (12, 'query')")

    def broken_refresh():
        raise CircuitOpenError("circuit breaker is open", db="B")

    monkeypatch.setattr(
        prepared.deployed, "refresh_materializations", broken_refresh
    )
    # Without the staleness opt-in the breaker error propagates.
    with pytest.raises(CircuitOpenError):
        prepared.execute(qos=QoSPolicy())
    # With it, the existing snapshot answers.
    report = prepared.execute(qos=QoSPolicy(max_staleness_seconds=1e6))
    assert report.qos.stale_read
    assert_same_rows(report.result.sorted_rows(), oracle)
    monkeypatch.undo()
    prepared.close()


# -- the half-open probe slot ----------------------------------------------


def trip_and_cool(registry: HealthRegistry, db: str) -> None:
    registry.report_outage(db)
    registry.clock.advance(registry.config.cooldown_seconds + 1.0)


def test_half_open_admits_exactly_one_probe():
    registry = HealthRegistry(BreakerConfig(cooldown_seconds=5.0))
    trip_and_cool(registry, "A")
    assert registry.gate("A") == "probe"
    # The probe is in flight: everyone else fails fast.
    assert registry.gate("A") == "blocked"
    assert registry.gate("A") == "blocked"
    # Its outcome settles the breaker either way.
    registry.record_failure("A", "probe failed")
    assert registry.state("A") is BreakerState.OPEN
    registry.clock.advance(10.0)
    assert registry.gate("A") == "probe"
    registry.record_success("A")
    assert registry.state("A") is BreakerState.CLOSED
    assert registry.gate("A") == "closed"


def test_aborted_probe_releases_the_slot():
    registry = HealthRegistry(BreakerConfig(cooldown_seconds=5.0))
    trip_and_cool(registry, "A")
    assert registry.gate("A") == "probe"
    assert registry.gate("A") == "blocked"
    # The probe call died before reaching the engine (no outcome):
    # the slot is handed back and the next caller may probe.
    registry.finish_probe("A")
    assert registry.gate("A") == "probe"


def test_concurrent_gate_checks_admit_one_probe():
    registry = HealthRegistry(BreakerConfig(cooldown_seconds=5.0))
    trip_and_cool(registry, "A")
    barrier = threading.Barrier(8)
    verdicts = []

    def check():
        barrier.wait()
        verdicts.append(registry.gate("A"))

    threads = [threading.Thread(target=check) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert verdicts.count("probe") == 1
    assert verdicts.count("blocked") == 7


def test_guarded_call_probe_abort_releases_slot_via_connector():
    dep = build_small()
    connector = dep.connector("A")
    dep.health.report_outage("A")
    dep.health.clock.advance(dep.health.config.cooldown_seconds + 1.0)

    class Boom(Exception):
        pass

    def exploding_call():
        raise Boom("not an engine outcome")

    # The probe call dies on a non-engine error: no outcome recorded,
    # but the probe slot must not stay stuck.
    with pytest.raises(Boom):
        connector._guarded("probe-test", exploding_call)
    assert dep.health.state("A") is BreakerState.HALF_OPEN
    assert dep.health.gate("A") == "probe"


def test_guarded_probe_success_closes_breaker():
    dep = build_small()
    dep.health.report_outage("A")
    dep.health.clock.advance(dep.health.config.cooldown_seconds + 1.0)
    tables = dep.connector("A").list_tables()
    assert "users" in tables
    assert dep.health.state("A") is BreakerState.CLOSED


# -- per-query backoff jitter ----------------------------------------------


def test_backoff_jitter_streams_are_per_query_not_per_process():
    a1 = QueryContext(label="q-alpha").backoff_rng("A")
    a2 = QueryContext(label="q-alpha").backoff_rng("A")
    b = QueryContext(label="q-beta").backoff_rng("A")
    draw_a1 = [a1.random() for _ in range(4)]
    draw_a2 = [a2.random() for _ in range(4)]
    draw_b = [b.random() for _ in range(4)]
    # Same labelled workload → identical backoff across runs…
    assert draw_a1 == draw_a2
    # …but concurrent distinct queries do not share a stream.
    assert draw_a1 != draw_b


def test_connector_uses_context_jitter_stream():
    from repro.connect.connector import RetryPolicy

    policy = RetryPolicy()
    expected_rng = QueryContext(label="jitter-test").backoff_rng("A")
    expected = policy.backoff_for(1, rng=expected_rng)
    dep = build_small()
    connector = dep.connector("A")
    calls = {"n": 0}

    def flaky():
        from repro.errors import TransientConnectorError

        calls["n"] += 1
        if calls["n"] == 1:
            raise TransientConnectorError("injected")
        return "ok"

    ctx = QueryContext(label="jitter-test")
    with ctx:
        assert connector._guarded("fetch", flaky) == "ok"
    assert connector.backoff_seconds == pytest.approx(expected)


# -- context plumbing ------------------------------------------------------


def test_context_stack_is_thread_local():
    seen = {}
    barrier = threading.Barrier(2)

    def run(name):
        ctx = QueryContext(label=name)
        with ctx:
            barrier.wait()
            seen[name] = current_context() is ctx
            barrier.wait()

    threads = [
        threading.Thread(target=run, args=(f"thread-{i}",))
        for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert seen == {"thread-0": True, "thread-1": True}


def test_connector_error_hierarchy_for_qos_errors():
    from repro.errors import ReproError

    assert issubclass(DeadlineExceeded, ReproError)
    assert issubclass(OverloadError, ReproError)
    assert not issubclass(DeadlineExceeded, ConnectorError)
    err = OverloadError("x", db="A", retry_after_seconds=0.5, priority=2)
    assert (err.db, err.retry_after_seconds, err.priority) == ("A", 0.5, 2)
    dead = DeadlineExceeded(
        "x", phase="delegate", rolled_back=[("A", "VIEW", "xv_1_0")]
    )
    assert dead.phase == "delegate"
    assert dead.leaked == []
