"""Local planner lowering tests: physical operator selection."""

import pytest

from repro.engine import physical
from repro.engine.database import Database
from repro.engine.fdw import ForeignScan
from repro.errors import ExecutionError
from repro.relational import algebra
from repro.relational.builder import build_plan
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.types import INTEGER, varchar


@pytest.fixture
def db():
    database = Database("D")
    database.create_table(
        "t",
        Schema([Field("k", INTEGER), Field("v", INTEGER)]),
        [(i, i * 2) for i in range(50)],
    )
    database.create_table(
        "u",
        Schema([Field("k", INTEGER), Field("w", varchar(4))]),
        [(i, f"w{i}") for i in range(0, 50, 5)],
    )
    return database


def lower(db, sql):
    plan = build_plan(parse_statement(sql), db.catalog)
    plan = db.planner.optimize(plan)
    return db.planner.to_physical(plan)


def find_ops(plan, kind):
    found = []

    def walk(node):
        if isinstance(node, kind):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return found


def test_equi_join_lowered_to_hash_join(db):
    plan = lower(db, "SELECT t.v FROM t, u WHERE t.k = u.k")
    assert find_ops(plan, physical.HashJoin)
    assert not find_ops(plan, physical.NestedLoopJoin)


def test_non_equi_join_lowered_to_nested_loop(db):
    plan = lower(db, "SELECT t.v FROM t, u WHERE t.k < u.k")
    assert find_ops(plan, physical.NestedLoopJoin)
    assert not find_ops(plan, physical.HashJoin)


def test_cross_join_lowered_to_nested_loop(db):
    plan = lower(db, "SELECT t.v FROM t CROSS JOIN u")
    (join,) = find_ops(plan, physical.NestedLoopJoin)
    assert join.kind == "CROSS"


def test_left_join_lowered_to_hash_left(db):
    plan = lower(db, "SELECT t.v FROM t LEFT JOIN u ON t.k = u.k")
    (join,) = find_ops(plan, physical.HashJoin)
    assert join.kind == "LEFT"


def test_aggregate_and_sort_lowering(db):
    plan = lower(
        db,
        "SELECT w, COUNT(*) AS n FROM u GROUP BY w ORDER BY n DESC LIMIT 2",
    )
    assert find_ops(plan, physical.HashAggregate)
    assert find_ops(plan, physical.SortOp)
    assert find_ops(plan, physical.LimitOp)


def test_distinct_lowering(db):
    plan = lower(db, "SELECT DISTINCT w FROM u")
    assert find_ops(plan, physical.DistinctOp)


def test_placeholder_scan_rejected_by_executor(db):
    placeholder = algebra.Scan(
        "ph",
        "x",
        Schema([Field("a", INTEGER)]),
        placeholder=True,
        requalify=False,
    )
    with pytest.raises(ExecutionError, match="placeholder"):
        db.planner.to_physical(placeholder)


def test_alias_lowered_to_rebind(db):
    plan = build_plan(
        parse_statement("SELECT q.v FROM (SELECT v FROM t) AS q"),
        db.catalog,
    )
    physical_plan = db.planner.to_physical(plan)
    rows = list(physical_plan.rows())
    assert len(rows) == 50


def test_foreign_scan_used_for_foreign_tables():
    from repro.engine.fdw import RemoteServer
    from repro.net.network import Network

    network = Network()
    network.add_node("L")
    network.add_node("R")
    local = Database("L", node="L")
    remote = Database("R", node="R")
    remote.create_table(
        "src", Schema([Field("a", INTEGER)]), [(1,), (2,)]
    )
    local.register_server(
        "R", RemoteServer("R", remote, network, "L", "R")
    )
    local.execute(
        "CREATE FOREIGN TABLE f (a INTEGER) SERVER R "
        "OPTIONS (table_name 'src')"
    )
    plan = build_plan(parse_statement("SELECT a FROM f"), local.catalog)
    plan = local.planner.optimize(plan)
    physical_plan = local.planner.to_physical(plan)
    scans = find_ops(physical_plan, ForeignScan)
    assert scans and scans[0].tag == "fdw:src"
