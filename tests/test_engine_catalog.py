"""Engine catalog tests."""

import pytest

from repro.engine.catalog import BaseTable, Catalog, ForeignTable, View
from repro.errors import CatalogError
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.types import INTEGER

SCHEMA = Schema([Field("a", INTEGER)])


def make_catalog():
    catalog = Catalog("DB")
    catalog.add(BaseTable("t", SCHEMA, [(1,), (2,)]))
    catalog.add(View("v", parse_statement("SELECT a FROM t")))
    catalog.add(ForeignTable("f", SCHEMA, server="R", remote_object="obj"))
    return catalog


def test_lookup_case_insensitive():
    catalog = make_catalog()
    assert catalog.get("T") is catalog.get("t")


def test_duplicate_rejected_unless_replace():
    catalog = make_catalog()
    with pytest.raises(CatalogError):
        catalog.add(BaseTable("t", SCHEMA))
    catalog.add(BaseTable("t", SCHEMA), replace=True)


def test_drop_kind_check():
    catalog = make_catalog()
    with pytest.raises(CatalogError):
        catalog.drop("v", "TABLE")
    catalog.drop("v", "VIEW")
    assert catalog.get("v") is None


def test_drop_table_kind_accepts_foreign_table():
    # MariaDB drops federated tables with plain DROP TABLE.
    catalog = make_catalog()
    catalog.drop("f", "TABLE")
    assert catalog.get("f") is None


def test_drop_missing_raises():
    with pytest.raises(CatalogError):
        make_catalog().drop("nope")


def test_require_raises_for_unknown():
    with pytest.raises(CatalogError):
        make_catalog().require("ghost")


def test_names_and_tables():
    catalog = make_catalog()
    assert catalog.names() == ["f", "t", "v"]
    assert [t.name for t in catalog.tables()] == ["t"]


def test_resolver_returns_schema_for_table():
    resolved = make_catalog().resolve_table(("t",))
    assert resolved.schema is not None
    assert resolved.source_db == "DB"


def test_resolver_returns_view_query():
    resolved = make_catalog().resolve_table(("v",))
    assert resolved.view_query is not None


def test_resolver_qualified_own_database():
    resolved = make_catalog().resolve_table(("DB", "t"))
    assert resolved.table == "t"


def test_resolver_rejects_foreign_database_qualifier():
    with pytest.raises(CatalogError):
        make_catalog().resolve_table(("OTHER", "t"))


def test_resolver_resolves_foreign_table_like_a_relation():
    resolved = make_catalog().resolve_table(("f",))
    assert resolved.schema is not None
