"""Topology-constrained placement (§IV-B2's future-work extension)."""

import pytest

from repro.core.client import XDB
from repro.errors import NetworkError, OptimizerError
from repro.relational.schema import Field, Schema
from repro.federation.deployment import Deployment
from repro.sql.types import INTEGER, varchar

from conftest import assert_same_rows, ground_truth_database


def three_db_deployment():
    dep = Deployment({"A": "postgres", "B": "postgres", "C": "postgres"})
    dep.load_table(
        "A",
        "t_a",
        Schema([Field("k", INTEGER), Field("va", INTEGER)]),
        [(i, i * 2) for i in range(30)],
    )
    dep.load_table(
        "B",
        "t_b",
        Schema([Field("k", INTEGER), Field("vb", INTEGER)]),
        [(i, i * 3) for i in range(0, 30, 2)],
    )
    dep.load_table(
        "C",
        "t_c",
        Schema([Field("k", INTEGER), Field("vc", varchar(4))]),
        [(i, f"c{i % 4}") for i in range(0, 30, 3)],
    )
    return dep


QUERY = (
    "SELECT a.k, b.vb, c.vc FROM t_a a, t_b b, t_c c "
    "WHERE a.k = b.k AND a.k = c.k"
)


def test_forbidden_link_blocks_transfers():
    dep = three_db_deployment()
    dep.network.forbid_link("A", "B")
    assert not dep.network.is_reachable("A", "B")
    assert dep.network.is_reachable("A", "C")
    with pytest.raises(NetworkError):
        dep.network.record_transfer("A", "B", 100)


def test_forbid_link_validates_nodes():
    dep = three_db_deployment()
    with pytest.raises(NetworkError):
        dep.network.forbid_link("A", "ghost")


def test_annotator_avoids_unreachable_candidates():
    dep = three_db_deployment()
    truth = ground_truth_database(dep).execute(QUERY)
    # Forbid the A<->B pair: any A⨝B join must be placed where both
    # inputs can still reach — i.e. on C (or routed through C's data).
    dep.network.forbid_link("A", "B")
    xdb = XDB(dep, prune_candidates=False)
    report = xdb.submit(QUERY)
    assert_same_rows(report.result.rows, truth.rows)
    # No data transfer ever used the forbidden pair.
    for record in dep.network.log:
        assert (record.src, record.dst) not in {("A", "B"), ("B", "A")}


def test_unsatisfiable_topology_raises():
    dep = three_db_deployment()
    dep.network.forbid_link("A", "B")
    dep.network.forbid_link("A", "C")
    dep.network.forbid_link("B", "C")
    xdb = XDB(dep)
    with pytest.raises(OptimizerError, match="reachable"):
        xdb.submit(QUERY)


def test_asymmetric_restriction():
    dep = three_db_deployment()
    # A can push to B, but B cannot push to A: the A⨝B join must land
    # on B (under pruning, B is the only reachable candidate).
    dep.network.forbid_link("B", "A", symmetric=False)
    truth = ground_truth_database(dep).execute(QUERY)
    xdb = XDB(dep)
    report = xdb.submit(QUERY)
    assert_same_rows(report.result.rows, truth.rows)
    for record in dep.network.log:
        assert (record.src, record.dst) != ("B", "A")
