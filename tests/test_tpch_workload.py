"""TPC-H generator / queries / distributions tests."""

import datetime

import pytest

from repro.errors import WorkloadError
from repro.workloads.tpch import (
    QUERIES,
    QUERY_JOIN_COUNTS,
    TABLE_DISTRIBUTIONS,
    TABLE_NAMES,
    TPCH_SCHEMAS,
    databases_for,
    generate,
    query,
)
from repro.workloads.tpch.distributions import distribution
from repro.workloads.tpch.generator import (
    NATIONS,
    REGIONS,
    generate_cached,
)


@pytest.fixture(scope="module")
def data():
    return generate(0.001, seed=7)


def test_all_tables_generated(data):
    assert set(data.tables) == set(TABLE_NAMES)


def test_row_counts_scale_linearly():
    small = generate(0.001, seed=7)
    large = generate(0.002, seed=7)
    assert large.row_counts()["customer"] == pytest.approx(
        2 * small.row_counts()["customer"], rel=0.01
    )
    assert large.row_counts()["orders"] == pytest.approx(
        2 * small.row_counts()["orders"], rel=0.01
    )


def test_fixed_tables(data):
    assert len(data.rows_of("region")) == len(REGIONS)
    assert len(data.rows_of("nation")) == len(NATIONS)


def test_rows_match_schema_arity(data):
    for name in TABLE_NAMES:
        schema = data.schema_of(name)
        for row in data.rows_of(name)[:50]:
            assert len(row) == len(schema)


def test_referential_integrity(data):
    customers = {row[0] for row in data.rows_of("customer")}
    for order in data.rows_of("orders"):
        assert order[1] in customers
    orders = {row[0] for row in data.rows_of("orders")}
    parts = {row[0] for row in data.rows_of("part")}
    suppliers = {row[0] for row in data.rows_of("supplier")}
    for line in data.rows_of("lineitem")[:500]:
        assert line[0] in orders
        assert line[1] in parts
        assert line[2] in suppliers
    nation_count = len(NATIONS)
    for customer in data.rows_of("customer"):
        assert 0 <= customer[3] < nation_count


def test_dates_within_spec_window(data):
    for order in data.rows_of("orders"):
        assert datetime.date(1992, 1, 1) <= order[4] <= datetime.date(
            1998, 8, 2
        )


def test_query_constants_hit_generated_values(data):
    segments = {row[6] for row in data.rows_of("customer")}
    assert "BUILDING" in segments
    region_names = {row[1] for row in data.rows_of("region")}
    assert {"ASIA", "AMERICA"} <= region_names
    nation_names = {row[1] for row in data.rows_of("nation")}
    assert {"FRANCE", "GERMANY", "BRAZIL"} <= nation_names
    types = {row[4] for row in data.rows_of("part")}
    assert any(t == "ECONOMY ANODIZED STEEL" for t in types)
    assert any("green" in row[1] for row in data.rows_of("part"))


def test_determinism():
    one = generate(0.001, seed=99)
    two = generate(0.001, seed=99)
    assert one.rows_of("lineitem") == two.rows_of("lineitem")


def test_different_seeds_differ():
    one = generate(0.001, seed=1)
    two = generate(0.001, seed=2)
    assert one.rows_of("lineitem") != two.rows_of("lineitem")


def test_generate_cached_memoizes():
    assert generate_cached(0.001, seed=5) is generate_cached(0.001, seed=5)


def test_invalid_scale_factor():
    with pytest.raises(WorkloadError):
        generate(0)


def test_schemas_cover_spec_columns():
    assert len(TPCH_SCHEMAS["lineitem"]) == 16
    assert len(TPCH_SCHEMAS["orders"]) == 9
    assert len(TPCH_SCHEMAS["customer"]) == 8


# -- queries -------------------------------------------------------------------


def test_all_six_queries_present():
    assert set(QUERIES) == {"Q3", "Q5", "Q7", "Q8", "Q9", "Q10"}


def test_join_counts_documented():
    assert QUERY_JOIN_COUNTS["Q8"] == 8
    assert QUERY_JOIN_COUNTS["Q3"] == 3


def test_query_lookup_case_insensitive():
    assert query("q3") == QUERIES["Q3"]


def test_query_lookup_unknown():
    with pytest.raises(WorkloadError):
        query("Q99")


def test_queries_parse():
    from repro.sql.parser import parse_statement

    for sql in QUERIES.values():
        parse_statement(sql)


def test_queries_run_on_single_engine(tpch_tiny_ground_truth):
    for name, sql in QUERIES.items():
        result = tpch_tiny_ground_truth.execute(sql)
        assert result.column_names, name


# -- distributions ---------------------------------------------------------------


def test_distribution_table_iii_shape():
    td1 = distribution("TD1")
    assert td1["lineitem"] == "db1"
    assert td1["customer"] == td1["orders"] == "db2"
    assert databases_for("TD1") == ["db1", "db2", "db3", "db4"]
    assert databases_for("TD3") == [f"db{i}" for i in range(1, 8)]


def test_every_distribution_covers_all_tables():
    for name, placement in TABLE_DISTRIBUTIONS.items():
        assert set(placement) == set(TABLE_NAMES), name


def test_unknown_distribution():
    with pytest.raises(WorkloadError):
        distribution("TD9")
