"""XDB equivalence across all table distributions + edge-case queries."""

import pytest

from repro.bench.scenarios import build_tpch_deployment
from repro.core.client import XDB
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER, varchar
from repro.workloads.tpch import QUERIES, query

from conftest import assert_same_rows, ground_truth_database


@pytest.fixture(scope="module", params=["TD2", "TD3"])
def tpch_other_td(request):
    deployment, _ = build_tpch_deployment(request.param, 0.001)
    xdb = XDB(deployment)
    xdb.warm_metadata()
    truth = ground_truth_database(deployment)
    return xdb, truth


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_all_queries_all_distributions(tpch_other_td, name):
    xdb, truth = tpch_other_td
    report = xdb.submit(query(name))
    expected = truth.execute(query(name))
    assert_same_rows(report.result.rows, expected.rows)


# -- cross-database LEFT JOIN ---------------------------------------------------


def test_cross_database_left_join():
    dep = Deployment({"A": "postgres", "B": "mariadb"})
    dep.load_table(
        "A",
        "people",
        Schema([Field("id", INTEGER), Field("name", varchar(8))]),
        [(1, "ada"), (2, "alan"), (3, "edsger")],
    )
    dep.load_table(
        "B",
        "awards",
        Schema([Field("person_id", INTEGER), Field("prize", varchar(8))]),
        [(1, "turing"), (1, "lovelace"), (3, "dijkstra")],
    )
    sql = (
        "SELECT p.name, a.prize FROM people p "
        "LEFT JOIN awards a ON p.id = a.person_id"
    )
    report = XDB(dep).submit(sql)
    truth = ground_truth_database(dep).execute(sql)
    assert_same_rows(report.result.rows, truth.rows)
    assert ("alan", None) in report.result.rows


def test_cross_database_distinct_and_limit():
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "l",
        Schema([Field("k", INTEGER), Field("g", INTEGER)]),
        [(i, i % 3) for i in range(40)],
    )
    dep.load_table(
        "B",
        "r",
        Schema([Field("k", INTEGER)]),
        [(i,) for i in range(0, 40, 2)],
    )
    sql = (
        "SELECT DISTINCT l.g FROM l, r WHERE l.k = r.k "
        "ORDER BY l.g LIMIT 2"
    )
    report = XDB(dep).submit(sql)
    assert report.result.rows == [(0,), (1,)]


def test_cross_database_derived_table():
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "sales",
        Schema([Field("region", varchar(4)), Field("amt", INTEGER)]),
        [("eu", 10), ("eu", 20), ("us", 5)],
    )
    dep.load_table(
        "B",
        "targets",
        Schema([Field("region", varchar(4)), Field("target", INTEGER)]),
        [("eu", 25), ("us", 10)],
    )
    sql = (
        "SELECT t.region, s.total, t.target FROM "
        "(SELECT region, SUM(amt) AS total FROM sales GROUP BY region) AS s, "
        "targets t WHERE s.region = t.region"
    )
    report = XDB(dep).submit(sql)
    truth = ground_truth_database(dep).execute(sql)
    assert_same_rows(report.result.rows, truth.rows)


def test_single_table_remote_query_via_xdb():
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "only",
        Schema([Field("x", INTEGER)]),
        [(i,) for i in range(5)],
    )
    report = XDB(dep).submit("SELECT SUM(x) AS s FROM only")
    assert report.result.rows == [(10,)]
    assert report.plan.task_count() == 1
    assert not report.plan.edges
