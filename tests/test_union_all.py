"""UNION ALL: parser, engine execution, and cross-database delegation."""

import pytest

from repro.core.client import XDB
from repro.engine.database import Database
from repro.errors import TypeCheckError
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.render import render
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows, ground_truth_database


# -- parsing / rendering ---------------------------------------------------------


def test_parse_union_all():
    stmt = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
    assert isinstance(stmt, ast.UnionAll)
    assert len(stmt.branches()) == 2


def test_parse_union_left_nesting():
    stmt = parse_statement(
        "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL "
        "SELECT c FROM v"
    )
    assert isinstance(stmt, ast.UnionAll)
    assert isinstance(stmt.left, ast.UnionAll)
    assert len(stmt.branches()) == 3


def test_trailing_order_limit_hoisted_to_union():
    stmt = parse_statement(
        "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a DESC LIMIT 5"
    )
    assert isinstance(stmt, ast.UnionAll)
    assert stmt.limit == 5
    assert stmt.order_by[0].ascending is False
    assert stmt.right.order_by == () and stmt.right.limit is None


def test_union_roundtrip():
    for sql in (
        "SELECT a FROM t UNION ALL SELECT b FROM u",
        "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a LIMIT 2",
        "SELECT x.a FROM (SELECT a FROM t UNION ALL SELECT b FROM u) AS x",
        "CREATE VIEW v AS SELECT a FROM t UNION ALL SELECT b FROM u",
    ):
        stmt = parse_statement(sql)
        assert parse_statement(render(stmt)) == stmt, sql


def test_union_requires_all():
    # Plain UNION (distinct) is not in the supported subset.
    with pytest.raises(Exception):
        parse_statement("SELECT a FROM t UNION SELECT b FROM u")


# -- engine execution -------------------------------------------------------------


@pytest.fixture
def db():
    database = Database("D")
    database.create_table(
        "t_small",
        Schema([Field("x", INTEGER), Field("s", varchar(4))]),
        [(1, "a"), (2, "b")],
    )
    database.create_table(
        "u_small",
        Schema([Field("y", INTEGER), Field("t", varchar(4))]),
        [(3, "c"), (1, "a")],
    )
    return database


def test_union_concatenates(db):
    result = db.execute(
        "SELECT x FROM t_small UNION ALL SELECT y FROM u_small"
    )
    assert sorted(result.rows) == [(1,), (1,), (2,), (3,)]


def test_union_keeps_duplicates(db):
    result = db.execute(
        "SELECT s FROM t_small UNION ALL SELECT t FROM u_small"
    )
    assert sorted(r[0] for r in result.rows) == ["a", "a", "b", "c"]


def test_union_column_names_from_left(db):
    result = db.execute(
        "SELECT x AS left_name FROM t_small UNION ALL "
        "SELECT y FROM u_small"
    )
    assert result.column_names == ["left_name"]


def test_union_global_order_and_limit(db):
    result = db.execute(
        "SELECT x FROM t_small UNION ALL SELECT y FROM u_small "
        "ORDER BY x DESC LIMIT 2"
    )
    assert result.rows == [(3,), (2,)]


def test_union_type_widening(db):
    db.create_table(
        "f", Schema([Field("d", DOUBLE)]), [(1.5,)]
    )
    result = db.execute("SELECT x FROM t_small UNION ALL SELECT d FROM f")
    assert sorted(result.rows) == [(1,), (1.5,), (2,)]


def test_union_arity_mismatch_rejected(db):
    with pytest.raises(TypeCheckError):
        db.execute(
            "SELECT x, s FROM t_small UNION ALL SELECT y FROM u_small"
        )


def test_union_in_view_and_subquery(db):
    db.execute(
        "CREATE VIEW both_v AS SELECT x FROM t_small "
        "UNION ALL SELECT y FROM u_small"
    )
    assert db.execute("SELECT COUNT(*) AS n FROM both_v").rows == [(4,)]
    result = db.execute(
        "SELECT q.x, COUNT(*) AS n FROM "
        "(SELECT x FROM t_small UNION ALL SELECT y FROM u_small) AS q "
        "GROUP BY q.x"
    )
    assert sorted(result.rows) == [(1, 2), (2, 1), (3, 1)]


def test_union_explain(db):
    result = db.execute(
        "EXPLAIN SELECT x FROM t_small UNION ALL SELECT y FROM u_small"
    )
    text = "\n".join(row[0] for row in result.rows)
    assert "UnionAll" in text


# -- cross-database delegation --------------------------------------------------------


def union_deployment():
    dep = Deployment({"P": "postgres", "Q": "mariadb"})
    dep.load_table(
        "P",
        "sales_2024",
        Schema([Field("k", INTEGER), Field("v", INTEGER)]),
        [(i, i * 2) for i in range(12)],
    )
    dep.load_table(
        "Q",
        "sales_2025",
        Schema([Field("k", INTEGER), Field("v", INTEGER)]),
        [(i, i * 3) for i in range(9)],
    )
    return dep


def test_cross_database_union_matches_ground_truth():
    dep = union_deployment()
    sql = "SELECT k, v FROM sales_2024 UNION ALL SELECT k, v FROM sales_2025"
    report = XDB(dep).submit(sql)
    truth = ground_truth_database(dep).execute(sql)
    assert_same_rows(report.result.rows, truth.rows)
    # The union is itself a cross-database operator: two tasks.
    assert report.plan.task_count() == 2
    assert "∪" in report.plan.describe()


def test_cross_database_union_under_aggregation():
    dep = union_deployment()
    sql = (
        "SELECT u.k, SUM(u.v) AS total FROM "
        "(SELECT k, v FROM sales_2024 UNION ALL "
        "SELECT k, v FROM sales_2025) AS u GROUP BY u.k"
    )
    report = XDB(dep).submit(sql)
    truth = ground_truth_database(dep).execute(sql)
    assert_same_rows(report.result.rows, truth.rows)


def test_union_on_mediator_baseline():
    from repro.baselines.garlic import GarlicSystem

    dep = union_deployment()
    sql = "SELECT k, v FROM sales_2024 UNION ALL SELECT k, v FROM sales_2025"
    report = GarlicSystem(dep).run(sql)
    truth = ground_truth_database(dep).execute(sql)
    assert_same_rows(report.result.rows, truth.rows)
