"""End-to-end XDB tests over the TPC-H federation."""

import pytest

from repro.core.client import XDB
from repro.errors import OptimizerError
from repro.workloads.tpch import QUERIES, query

from conftest import assert_same_rows


@pytest.fixture(scope="module")
def xdb_td1(tpch_tiny):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment)
    xdb.warm_metadata()
    return xdb


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_every_query_matches_ground_truth(
    xdb_td1, tpch_tiny, tpch_tiny_ground_truth, name
):
    report = xdb_td1.submit(query(name))
    truth = tpch_tiny_ground_truth.execute(query(name))
    assert_same_rows(report.result.rows, truth.rows)


def test_phase_breakdown_reported(xdb_td1):
    report = xdb_td1.submit(query("Q3"))
    assert set(report.phases) == {"prep", "lopt", "ann", "exec"}
    assert all(v >= 0 for v in report.phases.values())
    assert report.total_seconds == pytest.approx(sum(report.phases.values()))


def test_consultations_scale_with_cross_database_joins(xdb_td1):
    q3 = xdb_td1.submit(query("Q3"))
    q8 = xdb_td1.submit(query("Q8"))
    assert q8.consultations >= q3.consultations
    assert q3.consultations % 4 == 0  # four options per cross-db join


def test_describe_mentions_tasks_and_phases(xdb_td1):
    report = xdb_td1.submit(query("Q5"))
    text = report.describe()
    assert "delegation plan" in text
    assert "phases:" in text


def test_explain_does_not_create_objects(tpch_tiny):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment)
    before = {
        name: set(deployment.database(name).catalog.names())
        for name in deployment.database_names()
    }
    text = xdb.explain(query("Q5"))
    after = {
        name: set(deployment.database(name).catalog.names())
        for name in deployment.database_names()
    }
    assert before == after
    assert "-->" in text or "single task" in text


def test_plan_query_returns_delegation_plan(xdb_td1):
    dplan = xdb_td1.plan_query(query("Q10"))
    assert dplan.task_count() >= 2
    assert dplan.root is not None


def test_non_select_rejected(xdb_td1):
    with pytest.raises(OptimizerError):
        xdb_td1.submit("CREATE TABLE nope (a INT)")


def test_repeated_submissions_are_stable(xdb_td1, tpch_tiny_ground_truth):
    first = xdb_td1.submit(query("Q3")).result
    second = xdb_td1.submit(query("Q3")).result
    assert first.rows == second.rows


def test_xdb_moves_less_to_middleware_than_between_dbms(xdb_td1, tpch_tiny):
    """In-situ: the middleware only sees control traffic."""
    deployment, _ = tpch_tiny
    mark = len(deployment.network.log)
    xdb_td1.submit(query("Q5"))
    window = deployment.network.log[mark:]
    to_middleware = sum(
        r.payload_bytes for r in window if r.dst == deployment.middleware_node
    )
    between_dbms = sum(
        r.payload_bytes
        for r in window
        if r.tag.startswith("fdw")
    )
    assert to_middleware < max(between_dbms, 10_000)
    # Control messages only: every middleware-bound record is tiny.
    for record in window:
        if record.dst == deployment.middleware_node:
            assert record.payload_bytes <= 1024
