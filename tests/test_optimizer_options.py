"""Tests for the optimizer's ablation knobs: movement policy, Rule-4
candidate pruning, bushy plans, and the no-pipelining schedule."""

import pytest

from repro.core.client import XDB
from repro.core.plan import Movement
from repro.core.timing import simulate_schedule
from repro.errors import OptimizerError
from repro.relational import algebra
from repro.relational.optimizer import push_filters, reorder_joins
from repro.workloads.tpch import query

from conftest import assert_same_rows


# -- movement policies ----------------------------------------------------------


def test_movement_policy_validated(tpch_tiny):
    deployment, _ = tpch_tiny
    with pytest.raises(OptimizerError):
        XDB(deployment, movement_policy="sometimes")


@pytest.mark.parametrize("policy", ["implicit", "explicit"])
def test_forced_movement_policies_still_correct(
    tpch_tiny, tpch_tiny_ground_truth, policy
):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment, movement_policy=policy)
    report = xdb.submit(query("Q5"))
    truth = tpch_tiny_ground_truth.execute(query("Q5"))
    assert_same_rows(report.result.rows, truth.rows)
    expected = (
        Movement.IMPLICIT if policy == "implicit" else Movement.EXPLICIT
    )
    assert report.plan.edges
    for edge in report.plan.edges:
        assert edge.movement is expected


def test_explicit_policy_materializes_tables(tpch_tiny):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment, movement_policy="explicit")
    report = xdb.submit(query("Q3"), cleanup=False)
    try:
        tables = [
            entry
            for entry in report.deployed.created_objects
            if entry[1] == "TABLE"
        ]
        assert len(tables) == len(report.plan.edges)
    finally:
        report.deployed.cleanup()


# -- Rule-4 candidate pruning --------------------------------------------------------


def test_unpruned_search_consults_more(tpch_tiny, tpch_tiny_ground_truth):
    deployment, _ = tpch_tiny
    pruned = XDB(deployment).submit(query("Q5"))
    full = XDB(deployment, prune_candidates=False).submit(query("Q5"))
    assert full.consultations > pruned.consultations
    truth = tpch_tiny_ground_truth.execute(query("Q5"))
    assert_same_rows(full.result.rows, truth.rows)


def test_unpruned_may_place_on_third_dbms(tpch_tiny):
    """Without pruning, Fig. 5c-style plans are reachable (legal, just
    never cheaper in the paper's argument)."""
    deployment, _ = tpch_tiny
    xdb = XDB(deployment, prune_candidates=False)
    report = xdb.submit(query("Q8"))
    # Whatever it chose, results flow and a root exists.
    assert report.plan.root is not None


# -- bushy plans ------------------------------------------------------------------------


def test_bushy_shape_validated(tpch_tiny):
    deployment, _ = tpch_tiny
    with pytest.raises(OptimizerError):
        XDB(deployment, plan_shape="spherical").submit(query("Q3"))


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q8", "Q9"])
def test_bushy_plans_match_ground_truth(
    tpch_tiny, tpch_tiny_ground_truth, name
):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment, plan_shape="bushy")
    report = xdb.submit(query(name))
    truth = tpch_tiny_ground_truth.execute(query(name))
    assert_same_rows(report.result.rows, truth.rows)


def test_bushy_reorder_can_produce_bushy_tree(two_db_deployment):
    """A star-ish join where bushy DP may pair independent branches."""
    from repro.engine.cost import CardinalityEstimator
    from repro.engine.database import Database
    from repro.relational.builder import build_plan
    from repro.relational.schema import Field, Schema
    from repro.sql.parser import parse_statement
    from repro.sql.types import INTEGER

    db = Database("D")
    for name in ("a", "b", "c", "d"):
        db.create_table(
            name,
            Schema([Field("k", INTEGER), Field(f"x_{name}", INTEGER)]),
            [(i, i) for i in range(20)],
        )
    sql = (
        "SELECT a.k AS ak FROM a, b, c, d "
        "WHERE a.k = b.k AND b.k = c.k AND c.k = d.k"
    )
    plan = push_filters(build_plan(parse_statement(sql), db.catalog))
    estimator = CardinalityEstimator(db.planner.scan_stats)
    bushy = reorder_joins(
        plan, estimator.estimate_rows, estimator.estimate_ndv, shape="bushy"
    )
    left_deep = reorder_joins(
        plan,
        estimator.estimate_rows,
        estimator.estimate_ndv,
        shape="left-deep",
    )
    # Both shapes produce correct results.
    baseline = db.execute(sql)
    for candidate in (bushy, left_deep):
        physical = db.planner.to_physical(candidate)
        assert_same_rows(list(physical.rows()), baseline.rows)


def test_left_deep_trees_are_left_deep(tpch_tiny):
    """The default shape honors the paper's left-deep restriction:
    no join ever has another join as its right child."""
    deployment, _ = tpch_tiny
    xdb = XDB(deployment)
    xdb.warm_metadata()
    from repro.sql.parser import parse_statement

    plan = xdb.optimizer.optimize(parse_statement(query("Q8")))

    def walk(node):
        if isinstance(node, algebra.Join):
            right = node.right
            while isinstance(right, (algebra.Filter, algebra.Project)):
                right = right.children()[0]
            assert not isinstance(right, algebra.Join)
        for child in node.children():
            walk(child)

    walk(plan)


# -- pipelining ablation --------------------------------------------------------------------


def test_unpipelined_schedule_never_faster(tpch_tiny):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment)
    report = xdb.submit(query("Q5"), cleanup=False)
    try:
        frozen = simulate_schedule(
            report.deployed,
            xdb.connectors,
            deployment.network,
            deployment.client_node,
            result_bytes=report.result.byte_size(),
            pipelined=False,
        )
        assert (
            frozen.execution_seconds
            >= report.schedule.execution_seconds - 1e-9
        )
    finally:
        report.deployed.cleanup()
