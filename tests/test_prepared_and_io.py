"""Prepared-query API and CSV import/export tests."""

import pytest

from repro.core.client import XDB
from repro.engine.database import Database
from repro.engine.io import (
    export_dataset,
    import_dataset,
    load_table_csv,
    save_table_csv,
)
from repro.errors import ExecutionError, OptimizerError
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import DATE, DOUBLE, INTEGER, varchar

import datetime

from conftest import assert_same_rows


# -- prepared queries ----------------------------------------------------------


def build_sales_deployment():
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "items",
        Schema([Field("id", INTEGER), Field("grp", varchar(4))]),
        [(1, "x"), (2, "y"), (3, "x")],
    )
    dep.load_table(
        "B",
        "sales",
        Schema([Field("item_id", INTEGER), Field("amt", INTEGER)]),
        [(1, 10), (2, 20), (3, 30), (1, 5)],
    )
    return dep


SALES_SQL = (
    "SELECT i.grp, SUM(s.amt) AS total FROM items i, sales s "
    "WHERE i.id = s.item_id GROUP BY i.grp"
)


def test_prepared_query_executes_repeatedly():
    dep = build_sales_deployment()
    xdb = XDB(dep)
    with xdb.prepare(SALES_SQL) as prepared:
        first = prepared.execute()
        second = prepared.execute()
        assert_same_rows(first.result.rows, second.result.rows)
        assert prepared.executions == 2
        # Re-executions skip the optimizer phases entirely.
        assert second.phases["prep"] == 0.0
        assert second.phases["ann"] == 0.0
        assert second.phases["exec"] > 0.0


def test_prepared_query_sees_fresh_data():
    """The headline freshness property: views read current base data."""
    dep = build_sales_deployment()
    xdb = XDB(dep)
    with xdb.prepare(SALES_SQL) as prepared:
        before = {row[0]: row[1] for row in prepared.execute().result.rows}
        assert before == {"x": 45, "y": 20}
        # New sale arrives at DBMS B after preparation.
        dep.database("B").execute("INSERT INTO sales VALUES (2, 100)")
        after = {row[0]: row[1] for row in prepared.execute().result.rows}
        assert after == {"x": 45, "y": 120}


def test_prepared_query_refreshes_materializations():
    dep = build_sales_deployment()
    xdb = XDB(dep, movement_policy="explicit")  # force materialization
    with xdb.prepare(SALES_SQL) as prepared:
        assert prepared.deployed.materializations
        first = prepared.execute()
        dep.database("B").execute("INSERT INTO sales VALUES (3, 1000)")
        second = prepared.execute()
        totals_first = dict(first.result.rows)
        totals_second = dict(second.result.rows)
        assert totals_second["x"] == totals_first["x"] + 1000


def test_prepared_query_close_drops_objects_and_blocks_reuse():
    dep = build_sales_deployment()
    xdb = XDB(dep)
    prepared = xdb.prepare(SALES_SQL)
    names_before = {
        db: set(dep.database(db).catalog.names()) for db in ("A", "B")
    }
    assert any("xv_" in n for names in names_before.values() for n in names)
    prepared.close()
    for db in ("A", "B"):
        assert not any(
            name.startswith(("xv_", "xf_", "xm_"))
            for name in dep.database(db).catalog.names()
        )
    with pytest.raises(OptimizerError):
        prepared.execute()
    prepared.close()  # idempotent


# -- CSV I/O --------------------------------------------------------------------


def sample_db():
    db = Database("D")
    db.create_table(
        "t",
        Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(8)),
                Field("score", DOUBLE),
                Field("born", DATE),
            ]
        ),
        [
            (1, "ada", 9.5, datetime.date(1815, 12, 10)),
            (2, "", None, None),
            (3, None, 0.0, datetime.date(2000, 1, 1)),
        ],
    )
    return db


def test_csv_roundtrip_preserves_values(tmp_path):
    db = sample_db()
    path = tmp_path / "t.csv"
    written = save_table_csv(db, "t", path)
    assert written == 3

    target = Database("T2")
    loaded = load_table_csv(target, "t", path)
    assert loaded == 3
    original = db.catalog.get("t").rows
    restored = target.catalog.get("t").rows
    assert restored == original  # exact: nulls, empty string, dates


def test_csv_header_encodes_types(tmp_path):
    db = sample_db()
    path = tmp_path / "t.csv"
    save_table_csv(db, "t", path)
    header = path.read_text().splitlines()[0]
    assert "id:INTEGER" in header
    assert "born:DATE" in header


def test_csv_load_with_explicit_schema(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("a:INTEGER,b:VARCHAR(4)\n1,one\n2,two\n")
    schema = Schema([Field("a", INTEGER), Field("b", varchar(4))])
    db = Database("D")
    load_table_csv(db, "x", path, schema=schema)
    assert db.execute("SELECT COUNT(*) AS n FROM x").rows == [(2,)]


def test_csv_schema_arity_mismatch(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("a:INTEGER,b:VARCHAR(4)\n1,one\n")
    with pytest.raises(ExecutionError):
        load_table_csv(
            Database("D"), "x", path, schema=Schema([Field("a", INTEGER)])
        )


def test_csv_bad_value_reports_type(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("a:INTEGER\nnot_a_number\n")
    with pytest.raises(ExecutionError, match="INTEGER"):
        load_table_csv(Database("D"), "x", path)


def test_csv_ragged_row_reports_line(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("a:INTEGER,b:INTEGER\n1,2\n3\n")
    with pytest.raises(ExecutionError, match=":3"):
        load_table_csv(Database("D"), "x", path)


def test_csv_untyped_header_needs_schema(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ExecutionError, match="schema"):
        load_table_csv(Database("D"), "x", path)


def test_export_view_rejected(tmp_path):
    db = sample_db()
    db.execute("CREATE VIEW v AS SELECT id FROM t")
    with pytest.raises(ExecutionError):
        save_table_csv(db, "v", tmp_path / "v.csv")


def test_dataset_roundtrip(tmp_path):
    db = sample_db()
    db.create_table(
        "u", Schema([Field("k", INTEGER)]), [(i,) for i in range(5)]
    )
    files = export_dataset(db, tmp_path / "data")
    assert len(files) == 2

    fresh = Database("F")
    names = import_dataset(fresh, tmp_path / "data")
    assert names == ["t", "u"]
    assert fresh.execute("SELECT COUNT(*) AS n FROM u").rows == [(5,)]


def test_empty_csv_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ExecutionError, match="empty"):
        load_table_csv(Database("D"), "x", path)
