"""Deployment wiring and DBMS-connector tests."""

import pytest

from repro.connect.connector import DBMSConnector
from repro.errors import CatalogError, NetworkError
from repro.federation.deployment import Deployment, protocol_between
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.types import INTEGER, varchar


def make_deployment():
    dep = Deployment(
        {"pg1": "postgres", "pg2": "postgres", "mdb": "mariadb"}
    )
    dep.load_table(
        "pg1",
        "t1",
        Schema([Field("a", INTEGER), Field("s", varchar(4))]),
        [(i, "ab") for i in range(100)],
    )
    return dep


# -- deployment -----------------------------------------------------------------


def test_full_server_mesh():
    dep = make_deployment()
    for name, db in dep.databases.items():
        others = sorted(n for n in dep.databases if n != name)
        assert db.server_names() == others


def test_protocol_selection():
    assert protocol_between("postgres", "postgres") == "binary"
    assert protocol_between("postgres", "mariadb") == "jdbc"
    dep = make_deployment()
    assert dep.database("pg1").server("pg2").protocol == "binary"
    assert dep.database("pg1").server("mdb").protocol == "jdbc"


def test_unknown_database_lookup():
    dep = make_deployment()
    with pytest.raises(CatalogError):
        dep.database("ghost")
    with pytest.raises(CatalogError):
        dep.connector("ghost")


def test_unknown_topology_rejected():
    with pytest.raises(NetworkError):
        Deployment({"a": "postgres"}, topology="mesh")


def test_middleware_site_default_onprem():
    dep = make_deployment()
    assert dep.middleware_site == "onprem"
    cloud = Deployment({"a": "postgres"}, middleware_site="cloud")
    assert cloud.middleware_site == "cloud"


def test_auxiliary_database_not_a_member():
    dep = make_deployment()
    mediator = dep.add_auxiliary_database("med", "postgres")
    assert "med" not in dep.databases
    assert sorted(mediator.server_names()) == ["mdb", "pg1", "pg2"]


def test_reset_metrics_clears_everything():
    dep = make_deployment()
    connector = dep.connector("pg1")
    connector.list_tables()
    assert dep.network.log
    dep.reset_metrics()
    assert not dep.network.log
    assert connector.control_messages == 0


# -- connector -------------------------------------------------------------------


def test_list_tables_and_stats():
    dep = make_deployment()
    connector = dep.connector("pg1")
    tables = connector.list_tables()
    assert "t1" in tables
    assert tables["t1"].names == ["a", "s"]
    assert connector.table_rows("t1") == 100


def test_metadata_counts_control_messages():
    dep = make_deployment()
    connector = dep.connector("pg1")
    before = connector.control_messages
    connector.list_tables()
    connector.table_stats("t1")
    assert connector.control_messages == before + 2
    # Each control call records a request and a response on the wire.
    control = [r for r in dep.network.log if r.tag == "metadata"]
    assert len(control) == 4


def test_explain_counts_consultation():
    dep = make_deployment()
    connector = dep.connector("pg1")
    info = connector.explain(parse_statement("SELECT a FROM t1"))
    assert connector.consultations == 1
    assert info.estimated_rows == pytest.approx(100, rel=0.1)
    assert info.cost_seconds > 0


def test_estimate_join_cost_shapes():
    dep = make_deployment()
    connector = dep.connector("pg1")
    # Tiny moved relation vs huge local: materialized should win.
    streaming = connector.estimate_join_cost(
        local_rows=1_000_000, moved_rows=500, output_rows=1000,
        materialized=False,
    )
    materialized = connector.estimate_join_cost(
        local_rows=1_000_000, moved_rows=500, output_rows=1000,
        materialized=True,
    )
    assert materialized < streaming
    # Small local relation: pipelining should win.
    streaming_small = connector.estimate_join_cost(
        local_rows=200, moved_rows=500, output_rows=100, materialized=False
    )
    materialized_small = connector.estimate_join_cost(
        local_rows=200, moved_rows=500, output_rows=100, materialized=True
    )
    assert streaming_small < materialized_small
    assert connector.consultations == 4


def test_execute_ddl_renders_in_target_dialect():
    dep = make_deployment()
    mdb = dep.connector("mdb")
    statement = ast.CreateForeignTable(
        name="ft",
        columns=(ast.ColumnDef("a", INTEGER),),
        server="pg1",
        remote_object="t1",
    )
    mdb.execute_ddl(statement)
    sql = dep.database("mdb").trace.statement_log[-1]
    assert "ENGINE=FEDERATED" in sql
    obj = dep.database("mdb").catalog.get("ft")
    assert obj is not None and obj.kind == "FOREIGN TABLE"


def test_fetch_records_transfer_to_middleware():
    dep = make_deployment()
    connector = dep.connector("pg1")
    result = connector.fetch(parse_statement("SELECT a FROM t1"))
    assert len(result) == 100
    record = [r for r in dep.network.log if r.tag == "mediator-fetch"][-1]
    assert record.dst == dep.middleware_node
    assert record.rows == 100


def test_push_rows_ships_and_creates_table():
    dep = make_deployment()
    connector = dep.connector("pg2")
    schema = Schema([Field("x", INTEGER)])
    connector.push_rows("shipped", schema, [(1,), (2,)])
    assert dep.database("pg2").execute(
        "SELECT COUNT(*) AS n FROM shipped"
    ).rows == [(2,)]
    record = [r for r in dep.network.log if r.tag == "mediator-ship"][-1]
    assert record.src == dep.middleware_node


def test_run_query_sends_result_to_client():
    dep = make_deployment()
    connector = dep.connector("pg1")
    connector.run_query(
        parse_statement("SELECT a FROM t1 LIMIT 5"), dep.client_node
    )
    record = [r for r in dep.network.log if r.tag == "result"][-1]
    assert record.dst == dep.client_node
    assert record.rows == 5
