"""Shared fixtures: tiny deployments, ground-truth helpers."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.profiles import clear_calibrated
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar


@pytest.fixture(autouse=True)
def _isolate_calibrated_profiles():
    """Drop any calibrated-profile overlay a test installed.

    ``bench.harness.build_systems(calibrated=True)`` installs the
    overlay; it is process-global, so without this teardown a harness
    test would silently change the cost constants every later test
    sees.
    """
    yield
    clear_calibrated()


def normalized_rows(rows, places: int = 2):
    """Order-insensitive, float-rounded row normalization."""
    out = []
    for row in rows:
        out.append(
            tuple(
                round(value, places) if isinstance(value, float) else value
                for value in row
            )
        )
    return sorted(map(repr, out))


def assert_same_rows(left, right, places: int = 2):
    assert normalized_rows(left, places) == normalized_rows(right, places)


def ground_truth_database(deployment: Deployment, name: str = "GT") -> Database:
    """One engine holding every table of the federation."""
    database = Database(name)
    for member in deployment.databases.values():
        for table in member.catalog.tables():
            database.create_table(table.name, table.schema, table.rows)
    return database


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def two_db_deployment() -> Deployment:
    """Two PostgreSQL databases with small, deterministic tables."""
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "users",
        Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(16)),
                Field("score", DOUBLE),
            ]
        ),
        [(i, f"user{i}", float(i * 10 % 70)) for i in range(1, 21)],
    )
    dep.load_table(
        "B",
        "events",
        Schema(
            [
                Field("user_id", INTEGER),
                Field("kind", varchar(8)),
                Field("weight", INTEGER),
            ]
        ),
        [
            (1 + i % 25, ["login", "query", "logout"][i % 3], i % 7)
            for i in range(60)
        ],
    )
    return dep


@pytest.fixture
def pandemic_deployment():
    from repro.workloads.pandemic import build_pandemic_deployment

    return build_pandemic_deployment(
        citizens=300, vaccinations=500, measurements=800, seed=11
    )


@pytest.fixture(scope="session")
def tpch_tiny():
    """TD1 deployment at micro sf 0.001, shared across the session.

    Tests must not mutate loaded tables; transient DDL objects are fine
    as long as they are dropped (XDB and the baselines clean up).
    """
    from repro.bench.scenarios import build_tpch_deployment

    deployment, data = build_tpch_deployment("TD1", 0.001)
    return deployment, data


@pytest.fixture(scope="session")
def tpch_tiny_ground_truth(tpch_tiny):
    deployment, _ = tpch_tiny
    return ground_truth_database(deployment)
