"""Decompiler tests: plan → SQL → plan → same results."""

import pytest

from repro.engine.database import Database
from repro.relational import algebra
from repro.relational.builder import build_plan
from repro.relational.decompile import plan_to_select
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.render import render
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows


@pytest.fixture
def db():
    database = Database("D")
    database.create_table(
        "t",
        Schema(
            [
                Field("a", INTEGER),
                Field("b", DOUBLE),
                Field("s", varchar(8)),
            ]
        ),
        [(i, i * 1.5, ["x", "y", "z"][i % 3]) for i in range(30)],
    )
    database.create_table(
        "u",
        Schema([Field("a", INTEGER), Field("w", INTEGER)]),
        [(i, i % 5) for i in range(0, 30, 2)],
    )
    return database


ROUNDTRIP_QUERIES = [
    "SELECT a, b FROM t",
    "SELECT a AS x FROM t WHERE a > 10",
    "SELECT t.a, u.w FROM t, u WHERE t.a = u.a",
    "SELECT t.a AS ta FROM t JOIN u ON t.a = u.a WHERE u.w > 1",
    "SELECT s, COUNT(*) AS n, SUM(b) AS total FROM t GROUP BY s",
    "SELECT s, COUNT(*) AS n FROM t GROUP BY s HAVING COUNT(*) > 5",
    "SELECT s FROM t GROUP BY s ORDER BY s DESC",
    "SELECT a FROM t ORDER BY a DESC LIMIT 4",
    "SELECT DISTINCT s FROM t",
    "SELECT q.s FROM (SELECT s FROM t WHERE a > 3) AS q",
    "SELECT s, AVG(a + 1) AS m FROM t WHERE b > 1 GROUP BY s "
    "ORDER BY m DESC LIMIT 2",
    "SELECT CASE WHEN a > 15 THEN 'hi' ELSE 'lo' END AS lvl, "
    "COUNT(*) AS n FROM t GROUP BY lvl",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_decompile_roundtrip_preserves_semantics(db, sql):
    original = db.execute(sql)
    plan = build_plan(parse_statement(sql), db.catalog)
    rebuilt_sql = render(plan_to_select(plan))
    rebuilt = db.execute(rebuilt_sql)
    assert_same_rows(original.rows, rebuilt.rows)


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_decompiled_output_names_match_plan_schema(db, sql):
    plan = build_plan(parse_statement(sql), db.catalog)
    select = plan_to_select(plan)
    aliases = [item.alias for item in select.items]
    assert aliases == plan.schema.names


def test_bare_join_gets_explicit_column_list(db):
    plan = build_plan(
        parse_statement("SELECT t.a AS x FROM t JOIN u ON t.a = u.a"),
        db.catalog,
    )
    # Decompile just the join subtree (as a task expression would).
    join = plan.child
    select = plan_to_select(join)
    assert all(item.alias for item in select.items)
    assert not any(isinstance(i.expr, ast.Star) for i in select.items)


def test_placeholder_scan_decompiles_to_table_ref(db):
    schema = Schema([Field("a", INTEGER, "t"), Field("w", INTEGER, "u")])
    placeholder = algebra.Scan(
        table="incoming_ft",
        binding="xin_1",
        schema=schema,
        placeholder=True,
        requalify=False,
    )
    select = plan_to_select(placeholder)
    text = render(select)
    assert "incoming_ft" in text
    assert "xin_1" in text


def test_sort_key_over_computed_column(db):
    sql = "SELECT s, SUM(a) AS total FROM t GROUP BY s ORDER BY total DESC"
    plan = build_plan(parse_statement(sql), db.catalog)
    select = plan_to_select(plan)
    assert select.order_by
    rebuilt = db.execute(render(select))
    original = db.execute(sql)
    assert rebuilt.rows == original.rows  # order-sensitive comparison
