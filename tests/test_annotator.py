"""Plan annotation tests: Rules 1–4, pruning invariant, consultations."""

import pytest

from repro.core.annotate import PlanAnnotator
from repro.core.catalog import GlobalCatalog
from repro.core.logical import LogicalOptimizer
from repro.core.plan import Movement
from repro.errors import OptimizerError
from repro.relational import algebra
from repro.sql.parser import parse_statement


def annotate(deployment, sql):
    catalog = GlobalCatalog(deployment.connectors)
    optimizer = LogicalOptimizer(catalog)
    plan = optimizer.optimize(parse_statement(sql))
    annotator = PlanAnnotator(deployment.connectors, deployment.network)
    return plan, annotator.annotate(plan)


def walk(plan):
    yield plan
    for child in plan.children():
        yield from walk(child)


def test_rule1_scans_get_home_database(two_db_deployment):
    plan, annotation = annotate(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    for scan in plan.leaves():
        expected = "A" if scan.table == "users" else "B"
        assert annotation.db_of(scan) == expected


def test_rule2_unary_inherits(two_db_deployment):
    plan, annotation = annotate(
        two_db_deployment, "SELECT name FROM users WHERE id > 3"
    )
    for node in walk(plan):
        assert annotation.db_of(node) == "A"
    # All edges implicit.
    for move in annotation.edge_move.values():
        assert move is Movement.IMPLICIT


def test_rule3_same_annotation_binary(two_db_deployment):
    two_db_deployment.load_table(
        "A",
        "users2",
        two_db_deployment.database("A").catalog.get("users").schema,
        [(99, "x", 0.0)],
    )
    plan, annotation = annotate(
        two_db_deployment,
        "SELECT u.name FROM users u, users2 v WHERE u.id = v.id",
    )
    joins = [n for n in walk(plan) if isinstance(n, algebra.Join)]
    assert joins and all(annotation.db_of(j) == "A" for j in joins)


def test_rule4_places_on_an_input_database(two_db_deployment):
    plan, annotation = annotate(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    joins = [n for n in walk(plan) if isinstance(n, algebra.Join)]
    (join,) = joins
    decision = annotation.decisions[id(join)]
    # Pruning invariant (Fig. 5c): never a third DBMS.
    assert decision.chosen_db in ("A", "B")
    assert annotation.db_of(join) == decision.chosen_db
    # Four alternatives were costed (2 candidates × 2 movements).
    assert len(decision.costs) == 4


def test_rule4_consultations_are_four_per_cross_join(two_db_deployment):
    _, annotation = annotate(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    assert annotation.consultations == 4


def test_rule4_stationary_edge_is_implicit(two_db_deployment):
    plan, annotation = annotate(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    (join,) = [n for n in walk(plan) if isinstance(n, algebra.Join)]
    chosen = annotation.db_of(join)
    stationary = (
        join.left if annotation.db_of(join.left) == chosen else join.right
    )
    assert annotation.db_of(stationary) == chosen
    assert annotation.move_of(stationary, join) is Movement.IMPLICIT


def test_pruning_invariant_across_tpch(tpch_tiny):
    deployment, _ = tpch_tiny
    from repro.workloads.tpch import QUERIES

    catalog = GlobalCatalog(deployment.connectors)
    optimizer = LogicalOptimizer(catalog)
    annotator = PlanAnnotator(deployment.connectors, deployment.network)
    for name, sql in QUERIES.items():
        plan = optimizer.optimize(parse_statement(sql))
        annotation = annotator.annotate(plan)
        for node in walk(plan):
            if isinstance(node, algebra.Join):
                inputs = {
                    annotation.db_of(node.left),
                    annotation.db_of(node.right),
                }
                assert annotation.db_of(node) in inputs, name


def test_unannotated_scan_raises():
    from repro.relational.schema import Field, Schema
    from repro.sql.types import INTEGER

    scan = algebra.Scan("t", "t", Schema([Field("a", INTEGER)]))
    annotator = PlanAnnotator({}, None)
    with pytest.raises(OptimizerError):
        annotator.annotate(scan)


def test_missing_cardinalities_raise(two_db_deployment):
    from repro.core.catalog import GlobalCatalog
    from repro.relational.builder import build_plan

    catalog = GlobalCatalog(two_db_deployment.connectors)
    plan = build_plan(
        parse_statement(
            "SELECT u.name FROM users u, events e WHERE u.id = e.user_id"
        ),
        catalog,
    )  # NOT optimized: no estimates
    annotator = PlanAnnotator(
        two_db_deployment.connectors, two_db_deployment.network
    )
    with pytest.raises(OptimizerError, match="cardinality"):
        annotator.annotate(plan)
