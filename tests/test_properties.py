"""Property-based cross-system equivalence and planner invariants.

The central invariant of the whole reproduction: for any query in the
supported subset, a federated XDB execution returns exactly what a
single engine holding all the data returns — regardless of placement,
vendor mix, or plan shape.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.client import XDB
from repro.engine.database import Database
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows

COLUMNS_T = ["k", "g", "v"]
COLUMNS_U = ["k", "w"]


def make_worlds(rows_t, rows_u):
    """The same two tables: federated across A/B, and on one engine."""
    schema_t = Schema(
        [Field("k", INTEGER), Field("g", INTEGER), Field("v", DOUBLE)]
    )
    schema_u = Schema([Field("k", INTEGER), Field("w", INTEGER)])
    deployment = Deployment({"A": "postgres", "B": "mariadb"})
    deployment.load_table("A", "t", schema_t, rows_t)
    deployment.load_table("B", "u", schema_u, rows_u)
    single = Database("ALL")
    single.create_table("t", schema_t, rows_t)
    single.create_table("u", schema_u, rows_u)
    return deployment, single


row_t = st.tuples(
    st.integers(0, 15),
    st.integers(0, 3),
    st.one_of(st.none(), st.floats(0, 100, allow_nan=False)),
)
row_u = st.tuples(
    st.one_of(st.none(), st.integers(0, 15)),
    st.integers(0, 5),
)

predicates = st.sampled_from(
    [
        "t.v > 10",
        "t.g = 2",
        "t.v IS NOT NULL",
        "t.g IN (1, 3)",
        "t.v BETWEEN 5 AND 50",
        "u.w <> 2",
    ]
)


@given(
    rows_t=st.lists(row_t, min_size=0, max_size=25),
    rows_u=st.lists(row_u, min_size=0, max_size=25),
    predicate=predicates,
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_federated_join_equals_single_engine(rows_t, rows_u, predicate):
    deployment, single = make_worlds(rows_t, rows_u)
    sql = (
        "SELECT t.g, COUNT(*) AS n, SUM(u.w) AS s "
        f"FROM t, u WHERE t.k = u.k AND {predicate} GROUP BY t.g"
    )
    federated = XDB(deployment).submit(sql).result
    truth = single.execute(sql)
    assert_same_rows(federated.rows, truth.rows)


@given(
    rows_t=st.lists(row_t, min_size=1, max_size=30),
    predicate=predicates.filter(lambda p: p.startswith("t.")),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_local_optimizer_rewrites_preserve_semantics(rows_t, predicate):
    """pushdown+reorder+prune must never change results."""
    from repro.relational.builder import build_plan
    from repro.sql.parser import parse_statement

    _, single = make_worlds(rows_t, [])
    sql = f"SELECT t.g, t.v FROM t WHERE {predicate}"
    baseline_plan = build_plan(parse_statement(sql), single.catalog)
    raw = single.planner.to_physical(baseline_plan)
    optimized = single.planner.to_physical(
        single.planner.optimize(
            build_plan(parse_statement(sql), single.catalog)
        )
    )
    assert_same_rows(list(raw.rows()), list(optimized.rows()))


@given(st.data())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_aggregates_match_python_semantics(data):
    """SUM/COUNT/AVG/MIN/MAX against a straightforward Python oracle."""
    rows = data.draw(st.lists(row_t, min_size=0, max_size=40))
    _, single = make_worlds(rows, [])
    result = single.execute(
        "SELECT COUNT(*) AS c, COUNT(v) AS cv, SUM(v) AS s, AVG(v) AS a, "
        "MIN(v) AS lo, MAX(v) AS hi FROM t"
    )
    values = [row[2] for row in rows if row[2] is not None]
    expected = (
        len(rows),
        len(values),
        sum(values) if values else None,
        sum(values) / len(values) if values else None,
        min(values) if values else None,
        max(values) if values else None,
    )
    assert_same_rows(result.rows, [expected])
