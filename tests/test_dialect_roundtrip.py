"""Render → parse → render idempotence across all three dialects.

Property-based: hypothesis drives nasty identifiers and values through
the statement surface of every vendor dialect, asserting the parse
reproduces the AST and the second render reproduces the text — the
same invariants the fuzzer (:mod:`repro.fuzz`) enforces at scale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLError
from repro.fuzz.oracle import (
    check_roundtrip,
    expected_unrepresentable,
)
from repro.sql import ast
from repro.sql.dialects import available_dialects, dialect_for
from repro.sql.parser import parse_statement
from repro.sql.types import INTEGER, varchar

DIALECTS = available_dialects()

# Identifier strategy biased toward the characters that break dialect
# surfaces: every quote style, the CONNECTION '/' separator, spaces,
# keywords, unicode.
identifiers = st.one_of(
    st.sampled_from(
        [
            "plain",
            "with space",
            "quote'name",
            'double"quote',
            "back`tick",
            "slash/name",
            "a/b/c",
            "order",
            "select",
            "1digit",
            "ünïcode",
        ]
    ),
    st.text(
        alphabet="ab'\"`/ _%;.-3ü", min_size=1, max_size=10
    ),
)

strings = st.one_of(
    st.sampled_from(["", "it's", "''", "a''b", "trailing'", "sla/sh"]),
    st.text(min_size=0, max_size=12),
)


def columns_for(names):
    return tuple(
        ast.ColumnDef(name, INTEGER if i % 2 else varchar(8))
        for i, name in enumerate(names)
    )


@st.composite
def foreign_tables(draw):
    names = draw(
        st.lists(identifiers, min_size=1, max_size=3, unique_by=str.lower)
    )
    return ast.CreateForeignTable(
        name=draw(identifiers),
        columns=columns_for(names),
        server=draw(identifiers),
        remote_object=draw(identifiers),
    )


@st.composite
def inserts(draw):
    width = draw(st.integers(min_value=1, max_value=3))
    values = draw(
        st.lists(
            st.tuples(
                *[
                    st.one_of(
                        strings,
                        st.integers(min_value=0, max_value=10_000),
                        st.none(),
                        st.booleans(),
                    )
                    for _ in range(width)
                ]
            ),
            min_size=1,
            max_size=3,
        )
    )
    return ast.Insert(
        table=draw(identifiers),
        columns=(),
        rows=tuple(
            tuple(ast.Literal(value) for value in row) for row in values
        ),
    )


@settings(max_examples=150, deadline=None)
@given(stmt=foreign_tables())
def test_foreign_table_roundtrip_all_dialects(stmt):
    assert check_roundtrip(stmt) == []


@settings(max_examples=100, deadline=None)
@given(stmt=inserts())
def test_insert_roundtrip_all_dialects(stmt):
    assert check_roundtrip(stmt) == []


@settings(max_examples=100, deadline=None)
@given(
    name=identifiers,
    kind=st.sampled_from(["TABLE", "VIEW", "FOREIGN TABLE"]),
    if_exists=st.booleans(),
)
def test_drop_roundtrip_all_dialects(name, kind, if_exists):
    stmt = ast.DropObject(kind=kind, name=name, if_exists=if_exists)
    assert check_roundtrip(stmt) == []


def test_mariadb_refuses_unrepresentable_connection():
    """'/' in a remote object cannot ride the CONNECTION string."""
    stmt = ast.CreateForeignTable(
        name="ft",
        columns=columns_for(["a"]),
        server="srv",
        remote_object="a/b",
    )
    assert expected_unrepresentable(stmt, "mariadb")
    with pytest.raises(SQLError):
        dialect_for("mariadb").render(stmt)
    # The other dialects must round-trip the same statement cleanly.
    for name in ("postgres", "hive"):
        text = dialect_for(name).render(stmt)
        parsed = parse_statement(text)
        assert parsed.remote_object == "a/b"
        assert parsed.server == "srv"


def test_mariadb_connection_splits_on_last_slash():
    """Server names may contain '/'; the parser splits from the right."""
    stmt = ast.CreateForeignTable(
        name="ft",
        columns=columns_for(["a"]),
        server="site/srv",
        remote_object="orders",
    )
    text = dialect_for("mariadb").render(stmt)
    assert "CONNECTION='site/srv/orders'" in text
    parsed = parse_statement(text)
    assert parsed.server == "site/srv"
    assert parsed.remote_object == "orders"


def test_quoted_server_literal_roundtrips():
    """The seed bug: quotes in server names broke CONNECTION/STORED BY."""
    stmt = ast.CreateForeignTable(
        name="ft",
        columns=columns_for(["a"]),
        server="o'brien",
        remote_object="ord'ers",
    )
    for name in DIALECTS:
        if expected_unrepresentable(stmt, name):
            continue
        text = dialect_for(name).render(stmt)
        parsed = parse_statement(text)
        assert parsed.server == "o'brien"
        assert parsed.remote_object == "ord'ers"
