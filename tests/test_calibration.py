"""The calibration harness: measurement, fit, and Q-error improvement.

The CI-gating property: after fitting, the median Q-error of the cost
model against measured per-operator timings must not be worse than the
seed constants' — in practice it improves by a large factor, since the
seed constants were never derived from this executor.
"""

import pytest

from repro.calibrate.fit import (
    evaluate_constants,
    fit_constants,
    predicted_units,
    q_error,
)
from repro.calibrate.harness import Observation, run_workload
from repro.calibrate.workload import build_workload
from repro.engine.cost import CostModel
from repro.engine.profiles import (
    CALIBRATABLE_CONSTANTS,
    clear_calibrated,
    profile_base,
    profile_for,
    set_calibrated,
)


def test_q_error_definition():
    assert q_error(10.0, 10.0) == 1.0
    assert q_error(20.0, 10.0) == 2.0
    assert q_error(5.0, 10.0) == 2.0
    assert q_error(0.0, 10.0) > 1.0  # floored, never divides by zero


def test_fit_recovers_planted_constants():
    """Synthetic observations from known constants: the fit finds them."""
    profile = profile_base("postgres")
    truth = {
        "seq_scan_cost_per_row": 3.0,
        "cpu_tuple_cost": 0.5,
        "hash_build_cost_per_row": 1.5,
        "sort_cost_factor": 0.25,
        "foreign_fetch_cost_per_row": 40.0,
    }
    observations = []
    cases = [
        ("SeqScan", {"seq_scan_cost_per_row": 1000.0}),
        ("Filter", {"cpu_tuple_cost": 800.0}),
        ("Project", {"cpu_tuple_cost": 500.0}),
        ("Sort", {"sort_cost_factor": 4000.0}),
        ("ForeignScan", {"foreign_fetch_cost_per_row": 100.0}),
        (
            "HashJoin",
            {"hash_build_cost_per_row": 300.0, "cpu_tuple_cost": 900.0},
        ),
        (
            "HashAggregate",
            {"hash_build_cost_per_row": 700.0, "cpu_tuple_cost": 700.0},
        ),
    ]
    for op, features in cases:
        units = predicted_units(features, truth)
        observations.append(
            Observation(
                op=op,
                query="synthetic",
                features=features,
                seconds=units / profile.calibration,
            )
        )
    fitted = fit_constants(observations, profile)
    for name, expected in truth.items():
        assert fitted[name] == pytest.approx(expected, rel=1e-6), name


def test_fit_keeps_seed_value_without_observations():
    profile = profile_base("mariadb")
    observations = [
        Observation(
            op="SeqScan",
            query="only-scans",
            features={"seq_scan_cost_per_row": 1000.0},
            seconds=1000.0 * 2.0 / profile.calibration,
        )
    ]
    fitted = fit_constants(observations, profile)
    assert set(fitted) == set(CALIBRATABLE_CONSTANTS)
    assert fitted["sort_cost_factor"] == profile.sort_cost_factor


def test_workload_covers_every_constant():
    observations = run_workload("postgres", rows=2000, repeat=1)
    driven = {
        name for obs in observations for name in obs.features
    }
    assert driven == set(CALIBRATABLE_CONSTANTS)


def test_calibration_smoke_improves_median_q_error():
    """The acceptance gate, CI-sized: post-fit median Q <= pre-fit."""
    profile = profile_base("postgres")
    observations = run_workload("postgres", rows=4000, repeat=2)
    assert len(observations) >= 30
    before = evaluate_constants(
        observations, profile.constants(), profile.calibration
    )
    fitted = fit_constants(observations, profile)
    after = evaluate_constants(
        observations, fitted, profile.calibration
    )
    assert after["median_q_error"] <= before["median_q_error"]


def test_calibrated_overlay_reaches_cost_model():
    """set_calibrated propagates through profile_for into CostModel."""
    try:
        base = profile_base("hive")
        calibrated = base.with_constants(cpu_tuple_cost=123.0)
        set_calibrated([calibrated])
        served = profile_for("hive")
        assert served.cpu_tuple_cost == 123.0
        assert CostModel(profile_for("hive")).profile.cpu_tuple_cost == 123.0
    finally:
        clear_calibrated()
    assert profile_for("hive").cpu_tuple_cost == base.cpu_tuple_cost


def test_with_constants_rejects_uncalibratable_fields():
    # ``calibration`` defines the units-to-seconds currency the fit
    # solves in; it must never be refit (startup_cost/startup_latency
    # are intercept-fitted and therefore allowed).
    from repro.errors import CatalogError

    with pytest.raises(CatalogError):
        profile_base("postgres").with_constants(calibration=1.0)


def test_instrumented_spans_carry_exec_seconds():
    """The harness's data source: operator spans export measured time."""
    from repro.obs.context import QueryContext

    workload = build_workload("postgres", rows=500)
    workload.local.instrument_execution = True
    with QueryContext(label="probe") as ctx:
        workload.local.execute("SELECT id, val FROM fact")

    def operator_spans(span):
        found = []
        if span.kind == "operator":
            found.append(span)
        for child in span.children:
            found.extend(operator_spans(child))
        return found

    spans = [
        s
        for s in operator_spans(ctx.root)
        if s.attributes.get("db") == workload.local.name
    ]
    assert spans, "no operator spans mirrored into the context"
    assert any(
        s.attributes.get("exec_seconds", 0.0) > 0.0 for s in spans
    )
    assert all("exec_seconds" in s.attributes for s in spans)
