"""Self-healing federation tests: circuit breakers, replicated tables,
and the client's automatic plan-repair loop.

The chaos CI job re-runs this file under several fault seeds
(``XDB_FAULT_SEED``); tests that draw randomness read the seed so a
schedule that breaks under one seed is reproducible locally.
"""

import os

import pytest

from repro.connect.connector import RetryPolicy
from repro.core.client import XDB
from repro.errors import (
    CircuitOpenError,
    EngineUnavailableError,
)
from repro.faults import EngineOutage, FaultInjector, FaultPolicy
from repro.federation.deployment import Deployment
from repro.health import BreakerConfig, BreakerState, HealthRegistry
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows

CHAOS_SEED = int(os.environ.get("XDB_FAULT_SEED", "11"))

JOIN_QUERY = """
    SELECT u.name, SUM(e.weight) AS total
    FROM users u, events e
    WHERE u.id = e.user_id AND e.kind = 'login'
    GROUP BY u.name
    ORDER BY total DESC, u.name
"""

EVENTS_QUERY = """
    SELECT e.kind, SUM(e.weight) AS total
    FROM events e
    GROUP BY e.kind
    ORDER BY e.kind
"""


def build_small(replicate: bool = False) -> Deployment:
    """users @ A, events @ B — optionally replicating events onto A."""
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "users",
        Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(16)),
                Field("score", DOUBLE),
            ]
        ),
        [(i, f"user{i}", float(i * 10 % 70)) for i in range(1, 21)],
    )
    dep.load_table(
        "B",
        "events",
        Schema(
            [
                Field("user_id", INTEGER),
                Field("kind", varchar(8)),
                Field("weight", INTEGER),
            ]
        ),
        [
            (1 + i % 25, ["login", "query", "logout"][i % 3], i % 7)
            for i in range(60)
        ],
    )
    if replicate:
        dep.replicate_table("events", "A", from_db="B")
    return dep


def exec_strike_point(build, victim, sql, skip_exec_calls=0):
    """``after_calls`` making an exec-phase call on ``victim`` fail.

    Measured on a fresh identical build so the real run replays the
    same guarded-call schedule.  ``skip_exec_calls`` lets that many
    exec-phase calls through first (a mid-cascade strike) — needed
    when the query makes no annotation-phase calls on the victim, so
    an outage window opening at the ann/exec boundary would already be
    visible to the annotator's up-front availability probe.  Also
    returns the fault-free rows.
    """
    dep = build()
    xdb = XDB(dep)
    xdb.warm_metadata()
    counting = FaultInjector(FaultPolicy()).install(dep)
    try:
        report = xdb.submit(sql, cleanup=False)
    finally:
        counting.uninstall()
    total = counting.calls_by_db.get(victim, 0)
    exec_calls = sum(
        1 for db, _ in report.deployed.ddl_log if db == victim
    )
    if report.plan.root.annotation == victim:
        exec_calls += 1  # the root also serves the final XDB query
    assert exec_calls > skip_exec_calls, (
        f"query places only {exec_calls} exec call(s) on {victim!r}"
    )
    return total - exec_calls + skip_exec_calls, report.result.rows


# -- circuit-breaker state machine ---------------------------------------


def test_breaker_trips_after_failure_threshold():
    registry = HealthRegistry(
        BreakerConfig(failure_threshold=3, cooldown_seconds=5.0)
    )
    registry.record_failure("A")
    registry.record_failure("A")
    assert registry.state("A") is BreakerState.CLOSED
    assert registry.allow("A")
    registry.record_failure("A")
    assert registry.is_open("A")
    assert not registry.allow("A")
    assert registry.breaker("A").trips == 1
    transitions = [(e.old_state, e.new_state) for e in registry.events]
    assert transitions == [(BreakerState.CLOSED, BreakerState.OPEN)]


def test_success_resets_the_failure_streak():
    registry = HealthRegistry(BreakerConfig(failure_threshold=3))
    registry.record_failure("A")
    registry.record_failure("A")
    registry.record_success("A")
    registry.record_failure("A")
    registry.record_failure("A")
    assert registry.state("A") is BreakerState.CLOSED
    registry.record_failure("A")
    assert registry.is_open("A")


def test_cooldown_half_open_probe_and_readmission():
    registry = HealthRegistry(
        BreakerConfig(failure_threshold=1, cooldown_seconds=5.0)
    )
    registry.record_failure("A")
    assert registry.is_open("A")
    assert registry.gate("A") == "blocked"
    registry.clock.advance(5.0)
    assert registry.gate("A") == "probe"
    assert registry.state("A") is BreakerState.HALF_OPEN
    registry.record_success("A")
    assert registry.state("A") is BreakerState.CLOSED
    states = [e.new_state for e in registry.events]
    assert states == [
        BreakerState.OPEN,
        BreakerState.HALF_OPEN,
        BreakerState.CLOSED,
    ]


def test_failed_probe_reopens_for_another_cooldown():
    registry = HealthRegistry(
        BreakerConfig(failure_threshold=1, cooldown_seconds=5.0)
    )
    registry.record_failure("A")
    registry.clock.advance(5.0)
    assert registry.gate("A") == "probe"
    registry.record_failure("A", "probe failed")
    assert registry.is_open("A")
    # A fresh cool-down starts from the re-open, not the original trip.
    assert registry.gate("A") == "blocked"
    registry.clock.advance(5.0)
    assert registry.gate("A") == "probe"


def test_report_outage_force_trips():
    registry = HealthRegistry(BreakerConfig(failure_threshold=3))
    registry.report_outage("A", "client saw it die")
    assert registry.is_open("A")
    assert registry.breaker("A").trips == 1


# -- connector gating ----------------------------------------------------


def test_open_breaker_fails_fast_without_consuming_anything():
    dep = build_small()
    dep.configure_health(BreakerConfig(cooldown_seconds=1e9))
    injector = FaultInjector(FaultPolicy()).install(dep)
    try:
        connector = dep.connector("B")
        dep.health.report_outage("B")
        calls_before = injector.calls_by_db.get("B", 0)
        retries_before = connector.retries
        failures_before = connector.failures
        with pytest.raises(CircuitOpenError) as err:
            connector.table_stats("events")
        assert err.value.db == "B"
        # Neither the fault schedule nor the retry budget moved.
        assert injector.calls_by_db.get("B", 0) == calls_before
        assert connector.retries == retries_before
        assert connector.failures == failures_before
        assert connector.breaker_fastfails == 1
    finally:
        injector.uninstall()


def test_open_breaker_excludes_engine_from_placement():
    dep = build_small()
    dep.configure_health(BreakerConfig(cooldown_seconds=1e9))
    dep.health.report_outage("B")
    assert not dep.connector("B").is_available()
    assert dep.connector("A").is_available()


# -- satellite: deterministic backoff jitter -----------------------------


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy()

    def collect():
        dep = Deployment({"A": "postgres"})
        rng = dep.connector("A")._backoff_rng
        return [policy.backoff_for(a, rng=rng) for a in range(1, 6)]

    first, second = collect(), collect()
    assert first == second  # identically-seeded runs agree exactly
    pure = [policy.backoff_for(a) for a in range(1, 6)]
    assert first != pure  # jitter actually perturbs the exponential
    for jittered, base in zip(first, pure):
        assert 0.5 * base <= jittered <= 1.5 * base


def test_retry_backoff_identical_across_seeded_runs():
    def run():
        dep = build_small()
        xdb = XDB(dep)
        xdb.warm_metadata()
        for connector in dep.connectors.values():
            connector.retry_policy = RetryPolicy(max_attempts=10)
        injector = FaultInjector(
            FaultPolicy(seed=CHAOS_SEED, transient_error_rate=0.25)
        ).install(dep)
        try:
            report = xdb.submit(JOIN_QUERY)
        finally:
            injector.uninstall()
        return (
            report.result.rows,
            {
                name: connector.backoff_seconds
                for name, connector in dep.connectors.items()
            },
        )

    rows_a, backoff_a = run()
    rows_b, backoff_b = run()
    assert backoff_a == backoff_b
    assert_same_rows(rows_a, rows_b)


# -- satellite: transfer-accounting ordering -----------------------------


def test_push_rows_records_transfer_only_after_create():
    dep = build_small()
    connector = dep.connector("A")
    mark = len(dep.network.log)

    def boom(*args, **kwargs):
        raise EngineUnavailableError("injected: engine died mid-ship")

    connector.database.create_table = boom
    with pytest.raises(EngineUnavailableError):
        connector.push_rows(
            "tmp_ship", Schema([Field("x", INTEGER)]), [(1,), (2,)]
        )
    shipped = [
        r for r in dep.network.log[mark:] if r.tag == "mediator-ship"
    ]
    assert shipped == []  # no bytes credited for rows that never landed


def test_run_query_records_transfer_only_after_execute():
    dep = build_small()
    connector = dep.connector("B")
    mark = len(dep.network.log)

    def boom(*args, **kwargs):
        raise EngineUnavailableError("injected: engine died mid-query")

    connector.database.execute_select = boom
    with pytest.raises(EngineUnavailableError):
        connector.run_query(
            __import__("repro.sql.parser", fromlist=["parse_statement"])
            .parse_statement("SELECT kind FROM events"),
            dep.client_node,
        )
    results = [r for r in dep.network.log[mark:] if r.tag == "result"]
    assert results == []


# -- satellite: table_rows goes through the guarded path -----------------


def test_table_rows_is_guarded_and_counts_control_messages():
    dep = build_small()
    connector = dep.connector("B")
    before = connector.control_messages
    assert connector.table_rows("events") == 60.0
    assert connector.control_messages == before + 1
    with FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="B"),))
    ).install(dep):
        with pytest.raises(EngineUnavailableError):
            connector.table_rows("events")


# -- replicated tables in the catalog ------------------------------------


def test_replicated_table_is_visible_with_all_holders():
    dep = build_small(replicate=True)
    xdb = XDB(dep)
    xdb.warm_metadata()
    assert sorted(xdb.catalog.holders("events")) == ["A", "B"]
    assert xdb.catalog.is_replicated("events")
    assert not xdb.catalog.is_replicated("users")
    resolved = xdb.catalog.resolve_table(("events",))
    assert sorted(resolved.replica_dbs) == ["A", "B"]
    # Qualified names pin the holder: the user chose a replica.
    pinned = xdb.catalog.resolve_table(("B", "events"))
    assert pinned.source_db == "B"
    assert pinned.replica_dbs == ()


def test_scan_reroutes_to_surviving_replica_without_repair():
    dep = build_small(replicate=True)
    xdb = XDB(dep)
    xdb.warm_metadata()
    truth = xdb.submit(JOIN_QUERY).result.rows
    with FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="B"),))
    ).install(dep):
        report = xdb.submit(JOIN_QUERY)
    assert_same_rows(report.result.rows, truth)
    assert set(report.plan.annotations()) == {"A"}
    # Known-down up front: routed around, no repair loop needed.
    assert report.recovery is not None
    assert not report.recovery.repaired


def test_all_replica_holders_down_fails_fast_with_diagnostic():
    dep = build_small(replicate=True)
    xdb = XDB(dep)
    xdb.warm_metadata()
    with FaultInjector(
        FaultPolicy(
            outages=(EngineOutage(db="A"), EngineOutage(db="B"))
        )
    ).install(dep):
        with pytest.raises(EngineUnavailableError) as err:
            xdb.submit(EVENTS_QUERY)
    message = str(err.value)
    assert "'events'" in message
    assert "'A'" in message and "'B'" in message
    assert "unreachable" in message


# -- automatic plan repair -----------------------------------------------


def test_exec_outage_repairs_onto_replica():
    strike, truth = exec_strike_point(
        lambda: build_small(replicate=True), "A", EVENTS_QUERY,
        skip_exec_calls=1,
    )
    dep = build_small(replicate=True)
    dep.configure_health(BreakerConfig(cooldown_seconds=1e9))
    xdb = XDB(dep)
    xdb.warm_metadata()
    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="A", after_calls=strike),))
    ).install(dep)
    try:
        report = xdb.submit(EVENTS_QUERY)
    finally:
        injector.uninstall()
    assert_same_rows(report.result.rows, truth)
    recovery = report.recovery
    assert recovery is not None and recovery.repaired
    assert recovery.repair_attempts == 1
    assert recovery.repaired_dbs == ["A"]
    assert recovery.repair_seconds >= 0.0
    # Placement diff shows the move off the dead holder.
    diff = recovery.placement_diff()
    assert diff and all(
        old == "A" and new == "B" for old, new in diff.values()
    )
    assert any(
        e.new_state is BreakerState.OPEN and e.db == "A"
        for e in recovery.breaker_transitions
    )
    assert dep.health.is_open("A")
    assert "recovery:" in report.describe()


def test_zero_repair_budget_propagates_the_outage():
    strike, _ = exec_strike_point(
        lambda: build_small(replicate=True), "A", EVENTS_QUERY,
        skip_exec_calls=1,
    )
    dep = build_small(replicate=True)
    xdb = XDB(dep, repair_budget=0)
    xdb.warm_metadata()
    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="A", after_calls=strike),))
    ).install(dep)
    try:
        with pytest.raises(Exception) as err:
            xdb.submit(EVENTS_QUERY)
    finally:
        injector.uninstall()
    assert XDB._unavailable_db(err.value) == "A"


def test_unreplicated_holder_outage_is_unrepairable():
    """Repair cannot help when the dead engine is the only data holder."""
    strike, _ = exec_strike_point(lambda: build_small(), "B", JOIN_QUERY)
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="B", after_calls=strike),))
    ).install(dep)
    try:
        with pytest.raises(EngineUnavailableError) as err:
            xdb.submit(JOIN_QUERY)
    finally:
        injector.uninstall()
    assert "'events'" in str(err.value)


def test_open_breaker_caps_calls_to_the_downed_engine():
    strike, truth = exec_strike_point(
        lambda: build_small(replicate=True), "A", EVENTS_QUERY,
        skip_exec_calls=1,
    )
    dep = build_small(replicate=True)
    threshold = 3
    dep.configure_health(
        BreakerConfig(failure_threshold=threshold, cooldown_seconds=1e9)
    )
    xdb = XDB(dep)
    xdb.warm_metadata()
    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="A", after_calls=strike),))
    ).install(dep)
    try:
        for _ in range(5):
            report = xdb.submit(EVENTS_QUERY)
            assert_same_rows(report.result.rows, truth)
    finally:
        injector.uninstall()
    # One failed call tripped the breaker; with the cool-down effectively
    # infinite, no later query re-probes the dead engine.
    assert injector.calls_by_db["A"] <= strike + threshold
    assert injector.calls_by_db["A"] == strike + 1


# -- re-admission after recovery -----------------------------------------


def test_half_open_probe_readmits_recovered_engine():
    strike, truth = exec_strike_point(
        lambda: build_small(replicate=True), "A", EVENTS_QUERY,
        skip_exec_calls=1,
    )
    dep = build_small(replicate=True)
    dep.configure_health(
        BreakerConfig(failure_threshold=1, cooldown_seconds=4.0)
    )
    xdb = XDB(dep)
    xdb.warm_metadata()
    # A dies at its first exec call and stays down for 2 further calls
    # (the two failed half-open probes below), then recovers.
    injector = FaultInjector(
        FaultPolicy(
            outages=(
                EngineOutage(db="A", after_calls=strike, duration_calls=3),
            )
        )
    ).install(dep)
    try:
        repaired = xdb.submit(EVENTS_QUERY)
        assert repaired.recovery.repaired
        assert set(repaired.plan.annotations()) == {"B"}

        # Probe while still down: the breaker re-opens each time, and
        # the probe consumes the outage window like any real call.
        for _ in range(2):
            dep.health.clock.advance(10.0)
            report = xdb.submit(EVENTS_QUERY)
            assert set(report.plan.annotations()) == {"B"}
            assert dep.health.is_open("A")
            assert_same_rows(report.result.rows, truth)

        # Outage over: the next probe succeeds, the breaker closes, and
        # the very next identical query places work on A again.
        dep.health.clock.advance(10.0)
        report = xdb.submit(EVENTS_QUERY)
        assert dep.health.breaker("A").state is BreakerState.CLOSED
        assert set(report.plan.annotations()) == {"A"}
        assert not report.recovery.repaired
        assert_same_rows(report.result.rows, truth)
    finally:
        injector.uninstall()
    assert dep.health.breaker("A").probes >= 3


# -- acceptance: TD1 with a mid-workload outage --------------------------


def build_tpch_replicated():
    from repro.bench.scenarios import build_tpch_deployment

    deployment, _ = build_tpch_deployment("TD1", 0.001)
    deployment.replicate_table("customer", "db3")
    deployment.replicate_table("orders", "db3")
    return deployment


def test_td1_mid_workload_outage_repairs_every_query():
    from repro.workloads.tpch import QUERIES, query

    names = sorted(QUERIES)

    # Counting pass (fault-free): ground truth + the strike point that
    # kills db2 at the first exec-phase call of the first query that
    # places work on it.
    dep = build_tpch_replicated()
    xdb = XDB(dep)
    xdb.warm_metadata()
    counting = FaultInjector(FaultPolicy()).install(dep)
    truth = {}
    strike = None
    struck_query = None
    try:
        for name in names:
            before = counting.calls_by_db.get("db2", 0)
            report = xdb.submit(query(name))
            truth[name] = report.result.rows
            ddl_on_victim = sum(
                1 for db, _ in report.deployed.ddl_log if db == "db2"
            )
            exec_calls = ddl_on_victim + (
                1 if report.plan.root.annotation == "db2" else 0
            )
            after = counting.calls_by_db.get("db2", 0)
            if strike is None and exec_calls:
                # cleanup drops one object per DDL; ann consults are
                # whatever remains of the window.
                ann_calls = (after - before) - exec_calls - ddl_on_victim
                strike = before + ann_calls
                struck_query = name
    finally:
        counting.uninstall()
    assert strike is not None, "no TD1 query places work on db2"

    # Real pass on a fresh identical build: db2 dies mid-workload and
    # never comes back.
    dep = build_tpch_replicated()
    dep.configure_health(BreakerConfig(cooldown_seconds=1e9))
    xdb = XDB(dep)
    xdb.warm_metadata()
    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="db2", after_calls=strike),))
    ).install(dep)
    repaired_reports = {}
    try:
        for name in names:
            report = xdb.submit(query(name))
            assert_same_rows(report.result.rows, truth[name])
            repaired_reports[name] = report
    finally:
        injector.uninstall()

    # The struck query healed through the repair loop, moving its db2
    # tasks onto the replica holder.
    recovery = repaired_reports[struck_query].recovery
    assert recovery.repaired
    assert recovery.repaired_dbs == ["db2"]
    moved = recovery.placement_diff()
    assert moved and all(old == "db2" for old, _ in moved.values())
    # The breaker capped traffic to the dead engine: one failed call,
    # then every later query failed fast / routed around without
    # re-probing.
    assert injector.calls_by_db["db2"] == strike + 1
    assert dep.health.is_open("db2")
