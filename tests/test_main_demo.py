"""Smoke test for the ``python -m repro`` demo entry point."""

from repro.__main__ import main


def test_demo_runs_and_reports(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "delegation plan" in out
    assert "XDB" in out and "Garlic" in out and "Sclera" in out
    assert "CREATE VIEW" in out
    # The comparison table reports megabytes moved per system.
    assert "moved_MB" in out
