"""Delegation engine tests: Algorithm 1, Fig. 7 DDL pattern, cleanup."""

import pytest

from repro.core.client import XDB
from repro.core.plan import Movement
from repro.workloads.pandemic import CHO_QUERY, build_pandemic_deployment

from conftest import assert_same_rows, ground_truth_database


@pytest.fixture(scope="module")
def pandemic():
    return build_pandemic_deployment(
        citizens=200, vaccinations=400, measurements=600, seed=3
    )


def test_ddl_sequence_matches_fig7_pattern(pandemic):
    """Views chained by foreign tables, bottom-up, per Fig. 7."""
    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY)
    ddl = report.deployed.ddl_log
    kinds = [
        ("VIEW" if "VIEW" in sql else "FOREIGN" if "FOREIGN" in sql
         or "FEDERATED" in sql or "EXTERNAL" in sql else "TABLE")
        for _, sql in ddl
    ]
    # First statement is always a view on the deepest task's DBMS.
    assert kinds[0] == "VIEW"
    # Every foreign table declaration is followed (eventually) by a view.
    assert kinds[-1] == "VIEW"
    # The root task's view lives on the DBMS the XDB query targets.
    last_db, _ = ddl[-1]
    assert last_db == report.deployed.root_db


def test_foreign_tables_point_at_producer_views(pandemic):
    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY)
    created = {}
    for db, sql in report.deployed.ddl_log:
        if "CREATE VIEW" in sql:
            name = sql.split()[2]
            created[name] = db
    for db, sql in report.deployed.ddl_log:
        if "table_name '" in sql:
            referenced = sql.split("table_name '")[1].split("'")[0]
            assert referenced in created
            assert created[referenced] != db  # remote, not local


def test_xdb_query_is_select_star_from_root_view(pandemic):
    from repro.sql import ast

    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY)
    query = report.deployed.xdb_query
    assert isinstance(query.items[0].expr, ast.Star)
    (table_ref,) = query.from_items
    assert table_ref.parts[0].startswith("xv_")


def test_cleanup_drops_all_created_objects(pandemic):
    xdb = XDB(pandemic)
    before = {
        name: set(pandemic.database(name).catalog.names())
        for name in pandemic.database_names()
    }
    xdb.submit(CHO_QUERY, cleanup=True)
    after = {
        name: set(pandemic.database(name).catalog.names())
        for name in pandemic.database_names()
    }
    assert before == after


def test_cleanup_can_be_deferred(pandemic):
    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY, cleanup=False)
    assert report.deployed.created_objects
    # Objects still exist...
    db, kind, name = report.deployed.created_objects[0]
    assert pandemic.database(db).catalog.get(name) is not None
    # ...until cleaned up explicitly.
    report.deployed.cleanup()
    assert pandemic.database(db).catalog.get(name) is None


def test_explicit_edges_materialize_tables(pandemic):
    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY, cleanup=False)
    try:
        explicit_edges = [
            e for e in report.plan.edges if e.movement is Movement.EXPLICIT
        ]
        tables_created = [
            (db, name)
            for db, kind, name in report.deployed.created_objects
            if kind == "TABLE"
        ]
        assert len(tables_created) == len(explicit_edges)
    finally:
        report.deployed.cleanup()


def test_results_match_ground_truth(pandemic):
    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY)
    truth = ground_truth_database(pandemic).execute(
        CHO_QUERY.replace("CDB.", "").replace("VDB.", "").replace("HDB.", "")
    )
    assert_same_rows(report.result.rows, truth.rows)


def test_edge_statistics_filled_after_execution(pandemic):
    xdb = XDB(pandemic)
    report = xdb.submit(CHO_QUERY)
    for edge in report.plan.edges:
        assert edge.moved_rows is not None
        assert edge.moved_bytes is not None and edge.moved_bytes > 0


def test_ddl_rendered_in_target_dialect():
    deployment = build_pandemic_deployment(
        citizens=100,
        vaccinations=150,
        measurements=200,
        profiles={"VDB": "mariadb", "HDB": "hive"},
    )
    xdb = XDB(deployment)
    report = xdb.submit(CHO_QUERY)
    vdb_ddl = [sql for db, sql in report.deployed.ddl_log if db == "VDB"]
    hdb_ddl = [sql for db, sql in report.deployed.ddl_log if db == "HDB"]
    assert any(
        "ENGINE=FEDERATED" in sql for sql in vdb_ddl
    ) or not any("FOREIGN" in sql for sql in vdb_ddl)
    # Heterogeneous result still correct.
    truth = ground_truth_database(deployment).execute(
        CHO_QUERY.replace("CDB.", "").replace("VDB.", "").replace("HDB.", "")
    )
    assert_same_rows(report.result.rows, truth.rows)


def test_virtual_relations_guard_against_wrapper_pushdown_variance():
    """§V: task semantics must not depend on wrapper capabilities.

    MariaDB's wrapper pushes nothing; the delegation's remote views must
    still pin each task's filters to the producing DBMS, so results are
    identical across vendor mixes.
    """
    base = build_pandemic_deployment(
        citizens=150, vaccinations=250, measurements=350, seed=5
    )
    mixed = build_pandemic_deployment(
        citizens=150,
        vaccinations=250,
        measurements=350,
        seed=5,
        profiles={"CDB": "mariadb", "HDB": "hive"},
    )
    result_a = XDB(base).submit(CHO_QUERY).result
    result_b = XDB(mixed).submit(CHO_QUERY).result
    assert_same_rows(result_a.rows, result_b.rows)
