"""Federation resilience tests: fault injection, retry/backoff,
deploy-or-rollback delegation, and degradation-aware placement."""

import gc

import pytest

from repro.connect.connector import RetryPolicy
from repro.core.client import XDB
from repro.core.delegate import DeployedQuery
from repro.errors import (
    ConnectorTimeoutError,
    DelegationError,
    EngineUnavailableError,
    NetworkPartitionedError,
    ReproError,
)
from repro.faults import (
    EngineOutage,
    FaultInjector,
    FaultPolicy,
    LinkFault,
    ScriptedFault,
)
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER, varchar

from conftest import assert_same_rows

JOIN_QUERY = """
    SELECT u.name, SUM(e.weight) AS total
    FROM users u, events e
    WHERE u.id = e.user_id AND e.kind = 'login'
    GROUP BY u.name
    ORDER BY total DESC, u.name
"""


def catalog_names(deployment):
    return {
        name: set(deployment.database(name).catalog.names())
        for name in deployment.database_names()
    }


def set_retry_policy(deployment, policy):
    for connector in deployment.connectors.values():
        connector.retry_policy = policy


# -- transactional delegation (deploy-or-rollback) -----------------------


def test_killed_nth_ddl_rolls_back_every_object(two_db_deployment):
    """Kill each Nth DDL statement: zero objects remain on every engine."""
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    before = catalog_names(deployment)

    # Discover how many DDL statements this delegation issues.
    probe = xdb.submit(JOIN_QUERY)
    ddl_count = len(probe.deployed.ddl_log)
    assert ddl_count >= 3
    assert catalog_names(deployment) == before

    set_retry_policy(deployment, RetryPolicy(max_attempts=1))
    try:
        for nth in range(1, ddl_count + 1):
            injector = FaultInjector(
                FaultPolicy(scripted=(ScriptedFault(op="ddl", nth=nth),))
            ).install(deployment)
            try:
                with pytest.raises(DelegationError) as err:
                    xdb.submit(JOIN_QUERY)
            finally:
                injector.uninstall()

            assert catalog_names(deployment) == before
            # The failed statement is the last one logged.
            assert len(err.value.ddl_log) == nth
            assert len(err.value.rolled_back) == nth - 1
            assert not err.value.leaked
            assert err.value.failed_db in deployment.database_names()
    finally:
        set_retry_policy(deployment, RetryPolicy())

    # The federation recovers: the same query succeeds afterwards.
    report = xdb.submit(JOIN_QUERY)
    assert catalog_names(deployment) == before
    assert len(report.result) > 0


def test_delegation_error_carries_ddl_log(two_db_deployment):
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    set_retry_policy(deployment, RetryPolicy(max_attempts=1))
    with FaultInjector(
        FaultPolicy(scripted=(ScriptedFault(op="ddl", nth=2),))
    ).install(deployment):
        with pytest.raises(DelegationError) as err:
            xdb.submit(JOIN_QUERY)
    for db, sql in err.value.ddl_log:
        assert db in deployment.database_names()
        assert sql.startswith("CREATE")


# -- transient faults + retry/backoff ------------------------------------


def test_transient_faults_are_absorbed_by_retries(two_db_deployment):
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    truth = xdb.submit(JOIN_QUERY).result.rows

    set_retry_policy(deployment, RetryPolicy(max_attempts=8))
    injector = FaultInjector(
        FaultPolicy(seed=11, transient_error_rate=0.15)
    ).install(deployment)
    try:
        report = xdb.submit(JOIN_QUERY)
    finally:
        injector.uninstall()

    assert_same_rows(report.result.rows, truth)
    assert injector.injected_transients > 0
    assert report.resilience is not None
    assert report.resilience.failures == injector.injected_transients
    assert report.resilience.retries > 0
    assert report.resilience.giveups == 0
    assert report.resilience.backoff_seconds > 0.0
    # Counters surface in the client's breakdown.
    assert "resilience:" in report.describe()
    assert set(report.phases) == {"prep", "lopt", "ann", "exec"}
    # Backoff is priced into the phase times.
    assert report.total_seconds > 0.0


def test_fault_schedule_is_deterministic(two_db_deployment):
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    set_retry_policy(deployment, RetryPolicy(max_attempts=8))

    counts = []
    for _ in range(2):
        injector = FaultInjector(
            FaultPolicy(seed=7, transient_error_rate=0.2)
        ).install(deployment)
        try:
            xdb.submit(JOIN_QUERY)
        finally:
            injector.uninstall()
        counts.append(injector.injected_transients)
    assert counts[0] == counts[1] > 0


def test_retry_counters_reset_with_connector_counters(two_db_deployment):
    deployment = two_db_deployment
    connector = deployment.connector("A")
    connector.retries = 3
    connector.failures = 4
    connector.giveups = 1
    connector.backoff_seconds = 0.5
    deployment.reset_metrics()
    assert connector.retries == 0
    assert connector.failures == 0
    assert connector.giveups == 0
    assert connector.backoff_seconds == 0.0


# -- acceptance: TPC-H TD1 under seeded faults ---------------------------


@pytest.fixture(scope="module")
def tpch_faulty():
    from repro.bench.scenarios import build_tpch_deployment

    deployment, _ = build_tpch_deployment("TD1", 0.001)
    return deployment


def test_td1_paper_queries_identical_under_20pct_faults(tpch_faulty):
    from repro.workloads.tpch import QUERIES, query

    deployment = tpch_faulty
    xdb = XDB(deployment)
    xdb.warm_metadata()
    truth = {
        name: xdb.submit(query(name)).result.rows for name in sorted(QUERIES)
    }
    before = catalog_names(deployment)

    set_retry_policy(deployment, RetryPolicy(max_attempts=10))
    injector = FaultInjector(
        FaultPolicy(seed=42, transient_error_rate=0.2)
    ).install(deployment)
    try:
        for name in sorted(QUERIES):
            report = xdb.submit(query(name))
            assert_same_rows(report.result.rows, truth[name])
    finally:
        injector.uninstall()
        set_retry_policy(deployment, RetryPolicy())

    assert injector.injected_transients > 0
    # No short-lived object remains on any engine.
    assert catalog_names(deployment) == before


# -- degradation-aware placement -----------------------------------------


def test_dead_data_holder_yields_clear_diagnostic(two_db_deployment):
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    before = catalog_names(deployment)
    with FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="B"),))
    ).install(deployment):
        with pytest.raises(EngineUnavailableError) as err:
            xdb.submit(JOIN_QUERY)
    message = str(err.value)
    assert "'B'" in message and "'events'" in message
    assert catalog_names(deployment) == before
    # Engine back up: the query works again.
    assert len(xdb.submit(JOIN_QUERY).result) > 0


def test_outage_constrains_candidate_set():
    """An unreachable third DBMS is excluded from A; planning succeeds."""
    # A third engine that holds no data for this query.
    deployment_c = Deployment({"A": "postgres", "B": "postgres", "C": "postgres"})
    deployment_c.load_table(
        "A",
        "users",
        Schema([Field("id", INTEGER), Field("name", varchar(16))]),
        [(i, f"u{i}") for i in range(10)],
    )
    deployment_c.load_table(
        "B",
        "events",
        Schema([Field("user_id", INTEGER), Field("kind", varchar(8))]),
        [(1 + i % 10, ["login", "query"][i % 2]) for i in range(30)],
    )
    xdb = XDB(deployment_c, prune_candidates=False)
    xdb.warm_metadata()
    with FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="C"),))
    ).install(deployment_c):
        report = xdb.submit(
            "SELECT u.name FROM users u, events e WHERE u.id = e.user_id"
        )
    assert len(report.result) > 0
    assert report.annotation is not None
    candidates = {
        db
        for decision in report.annotation.decisions.values()
        for db, _, _ in decision.costs
    }
    assert "C" not in candidates
    assert candidates <= {"A", "B"}


def test_slow_link_trips_timeout_budget_then_recovers(two_db_deployment):
    deployment = two_db_deployment
    set_retry_policy(
        deployment,
        RetryPolicy(max_attempts=2, call_timeout_seconds=1.0),
    )
    connector = deployment.connector("B")
    injector = FaultInjector(
        FaultPolicy(
            link_faults=(
                LinkFault(
                    src=deployment.middleware_node,
                    dst=connector.node,
                    latency_factor=1e7,
                ),
            )
        )
    ).install(deployment)
    try:
        assert not connector.is_available()
        with pytest.raises(ConnectorTimeoutError):
            connector.execute_sql("SELECT 1 AS x FROM events")
        assert connector.giveups == 1
    finally:
        injector.uninstall()
    assert connector.is_available()
    set_retry_policy(deployment, RetryPolicy())
    assert len(connector.execute_sql("SELECT user_id FROM events")) > 0


def test_partitioned_link_is_retryable_and_heals(two_db_deployment):
    deployment = two_db_deployment
    network = deployment.network
    connector = deployment.connector("B")
    set_retry_policy(deployment, RetryPolicy(max_attempts=2))
    network.partition_link(deployment.middleware_node, connector.node)
    try:
        assert not connector.is_available()
        with pytest.raises(NetworkPartitionedError):
            connector.execute_sql("SELECT user_id FROM events")
        assert connector.failures >= 2  # initial attempt + retry
    finally:
        network.heal_link(deployment.middleware_node, connector.node)
    assert connector.is_available()
    set_retry_policy(deployment, RetryPolicy())
    assert len(connector.execute_sql("SELECT user_id FROM events")) > 0


# -- shard-scoped outages (fault × partition composition) ----------------


def build_partitioned():
    from repro.core.partition import partition_name

    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "orders",
        Schema([Field("o_orderkey", INTEGER), Field("o_custkey", INTEGER)]),
        [(i, i % 7) for i in range(40)],
    )
    dep.partition_table("orders", "o_orderkey", ["A", "B"])
    dep.load_table(
        "A",
        "misc",
        Schema([Field("id", INTEGER)]),
        [(1,), (2,)],
    )
    return dep, partition_name("orders", 0)


def test_shard_outage_strikes_only_matching_calls():
    """A shard-scoped outage is a dead disk, not a dead server: calls
    whose payload references the shard fail with the shard attached;
    everything else on the engine keeps answering."""
    dep, shard = build_partitioned()
    connector = dep.connector("A")
    set_retry_policy(dep, RetryPolicy(max_attempts=1))
    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="A", table=shard),))
    ).install(dep)
    try:
        # Non-matching payloads pass straight through.
        assert len(connector.execute_sql("SELECT id FROM misc")) == 2
        with pytest.raises(EngineUnavailableError) as err:
            connector.execute_sql(f"SELECT o_orderkey FROM {shard}")
        assert err.value.table == shard
        assert err.value.db == "A"
        # Only matching calls consumed the shard counter.
        assert injector.calls_by_shard == {("A", shard): 1}
        assert injector.shard_down("A", shard)
        assert not injector.shard_down("B", shard)
        # The engine is still available: the outage is below engine level.
        assert connector.is_available()
    finally:
        injector.uninstall()
        set_retry_policy(dep, RetryPolicy())


def test_shard_outage_composes_with_partitioned_query():
    """Composition: a partitioned gather under a shard-scoped outage
    quarantines exactly one holder and degrades to a policy-bounded
    partial answer; sibling shards keep serving."""
    from repro.qos import QoSPolicy

    dep, shard = build_partitioned()
    xdb = XDB(dep)
    xdb.warm_metadata()
    sql = "SELECT o_orderkey, o_custkey FROM orders ORDER BY o_orderkey"
    truth = {tuple(row) for row in xdb.submit(sql).result.rows}

    with FaultInjector(
        FaultPolicy(outages=(EngineOutage(db="A", table=shard),))
    ).install(dep) as injector:
        report = xdb.submit(
            sql, qos=QoSPolicy(allow_partial=True, completeness_floor=0.0)
        )
    assert injector.calls_by_shard
    got = {tuple(row) for row in report.result.rows}
    assert got < truth  # a strict row-subset of the fault-free oracle
    assert report.recovery.partial
    assert report.recovery.missing_partitions == [shard]
    assert 0.0 < report.recovery.completeness < 1.0
    # Only the struck holder is quarantined; the sibling still serves.
    assert xdb.catalog.is_quarantined("A", shard)
    from repro.core.partition import partition_name

    assert not xdb.catalog.is_quarantined("B", partition_name("orders", 1))
    # The engine-level breaker never tripped for a shard fault.
    assert not dep.health.is_open("A")


def test_shard_outage_window_expires_like_engine_outage():
    dep, shard = build_partitioned()
    connector = dep.connector("A")
    set_retry_policy(dep, RetryPolicy(max_attempts=1))
    injector = FaultInjector(
        FaultPolicy(
            outages=(
                EngineOutage(
                    db="A", table=shard, after_calls=1, duration_calls=1
                ),
            )
        )
    ).install(dep)
    try:
        probe = f"SELECT o_orderkey FROM {shard}"
        assert connector.execute_sql(probe) is not None  # call 1: before
        with pytest.raises(EngineUnavailableError):
            connector.execute_sql(probe)  # call 2: inside the window
        assert connector.execute_sql(probe) is not None  # call 3: after
        assert injector.calls_by_shard == {("A", shard): 3}
    finally:
        injector.uninstall()
        set_retry_policy(dep, RetryPolicy())


# -- DeployedQuery hardening ---------------------------------------------


def test_deployed_query_without_connectors_raises_cleanly():
    deployed = DeployedQuery(
        plan=None,
        root_db="A",
        xdb_query=None,
        created_objects=[],
        ddl_log=[],
        edge_views={},
    )
    # No objects: cleanup and refresh are no-ops, not TypeErrors.
    deployed.cleanup()
    deployed.refresh_materializations()

    deployed.created_objects.append(("A", "VIEW", "xv_1_1"))
    with pytest.raises(DelegationError):
        deployed.cleanup()


def test_cleanup_is_idempotent(two_db_deployment):
    deployment = two_db_deployment
    xdb = XDB(deployment)
    xdb.warm_metadata()
    before = catalog_names(deployment)
    report = xdb.submit(JOIN_QUERY, cleanup=False)
    assert catalog_names(deployment) != before
    report.deployed.cleanup()
    assert catalog_names(deployment) == before
    report.deployed.cleanup()  # second call: no-op, no error
    assert catalog_names(deployment) == before


def test_prepared_close_twice(two_db_deployment):
    xdb = XDB(two_db_deployment)
    xdb.warm_metadata()
    prepared = xdb.prepare(JOIN_QUERY)
    prepared.close()
    prepared.close()


def test_failed_refresh_keeps_previous_snapshot(two_db_deployment):
    """A CTAS that fails mid-refresh must not leave a missing snapshot."""
    deployment = two_db_deployment
    xdb = XDB(deployment, movement_policy="explicit")
    xdb.warm_metadata()
    prepared = xdb.prepare(JOIN_QUERY)
    try:
        prepared.execute()
        assert prepared.deployed.materializations
        db, table_name, ctas = prepared.deployed.materializations[0]
        holder = deployment.database(db)
        snapshot = list(holder.catalog.get(table_name).rows)

        # Break the CTAS's input: drop the remote view behind the
        # foreign table it scans.
        foreign_name = ctas.query.from_items[0].parts[0]
        foreign = holder.catalog.get(foreign_name)
        remote_db = deployment.database(foreign.server)
        remote_db.execute(f"DROP VIEW {foreign.remote_object}")

        with pytest.raises(ReproError):
            prepared.execute()  # triggers refresh_materializations

        # The previous snapshot survives the failed rebuild.
        table = holder.catalog.get(table_name)
        assert table is not None
        assert list(table.rows) == snapshot
    finally:
        prepared.close()


# -- id()-keyed state must hold strong references ------------------------


def test_estimator_cache_pins_plan_nodes(two_db_deployment):
    database = two_db_deployment.database("A")
    from repro.relational.builder import build_plan
    from repro.sql.parser import parse_statement

    plan = build_plan(
        parse_statement("SELECT id FROM users"), database.catalog
    )
    plan = database.planner.optimize(plan)
    estimator = database.planner.make_estimator()
    rows = estimator.estimate_rows(plan)
    key = id(plan)
    del plan
    gc.collect()
    # The cache entry keeps the node alive, so its id cannot be
    # recycled and alias a stale estimate.
    node, estimate = estimator._cache[key]
    assert node is not None
    assert estimate.rows == rows
    # New nodes can never collide with a cached id.
    from repro.relational import algebra

    schema = Schema([Field("id", INTEGER)])
    for i in range(50):
        fresh = algebra.Scan(f"t{i}", f"t{i}", schema, source_db="A")
        assert id(fresh) not in estimator._cache or (
            estimator._cache[id(fresh)][0] is fresh
        )


def test_annotation_pins_plan_nodes(two_db_deployment):
    from repro.core.annotate import PlanAnnotator
    from repro.core.catalog import GlobalCatalog
    from repro.core.logical import LogicalOptimizer
    from repro.relational import algebra
    from repro.sql.parser import parse_statement

    deployment = two_db_deployment
    catalog = GlobalCatalog(deployment.connectors)
    optimizer = LogicalOptimizer(catalog)
    plan = optimizer.optimize(parse_statement(JOIN_QUERY))
    annotator = PlanAnnotator(deployment.connectors, deployment.network)
    annotation = annotator.annotate(plan)

    # Every annotated id is backed by a live node reference.
    assert set(annotation.node_db) <= set(annotation._node_refs)
    node_dbs = dict(annotation.node_db)
    del plan
    gc.collect()
    assert annotation.node_db == node_dbs
    # Fresh allocations cannot alias an annotated id.
    schema = Schema([Field("id", INTEGER)])
    for i in range(50):
        fresh = algebra.Scan(f"n{i}", f"n{i}", schema, source_db="A")
        assert id(fresh) not in annotation.node_db or (
            annotation._node_refs[id(fresh)] is fresh
        )
