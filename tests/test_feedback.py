"""The Q-Error loop: arithmetic, store, overlay, and both replan paths.

Covers the feedback package bottom-up — Q-Error corner cases,
fingerprint invariance, store round-trip and drift invalidation — and
then the two integration paths: the offline loop (a warmed store
re-steers the next submission's join order) and mid-query adaptivity
(a blown estimate at a materialization boundary pins the snapshot and
replans the suffix, with result parity throughout).
"""

import math

import pytest

from repro.core.client import XDB
from repro.feedback import qerror
from repro.feedback.fingerprint import (
    base_tables,
    fingerprint,
    scan_fingerprint,
    table_key,
)
from repro.feedback.report import median_q_error, qerror_table
from repro.feedback.store import (
    FeedbackOverlay,
    FeedbackStore,
    Observation,
)

from conftest import assert_same_rows

JOIN_QUERY = """
    SELECT u.name, SUM(e.weight) AS total
    FROM users u, events e
    WHERE u.id = e.user_id AND e.kind = 'login'
    GROUP BY u.name
    ORDER BY total DESC, u.name
"""


# -- Q-Error arithmetic -----------------------------------------------------


def test_q_error_is_symmetric():
    assert qerror.q_error(10, 1000) == qerror.q_error(1000, 10) == 100.0


def test_q_error_exact_is_one():
    assert qerror.q_error(42, 42) == 1.0


def test_q_error_zero_corners():
    assert qerror.q_error(0, 0) == 1.0
    assert qerror.q_error(0, 50) == qerror.INFINITE
    assert qerror.q_error(50, 0) == qerror.INFINITE
    assert qerror.q_error(None, None) == 1.0


def test_direction_classification():
    assert qerror.direction(10, 100) == qerror.UNDER_EST
    assert qerror.direction(100, 10) == qerror.OVER_EST
    assert qerror.direction(0, 10) == qerror.ZERO_EST
    assert qerror.direction(7, 7) == qerror.EXACT


def test_median_handles_infinity_and_empty():
    assert qerror.median([]) == 0.0
    assert qerror.median([1.0, 3.0, 2.0]) == 2.0
    assert qerror.median([1.0, qerror.INFINITE]) == qerror.INFINITE


def test_routing_table_covers_the_blown_join():
    rewrites, why = qerror.hypothesis(qerror.JOIN, qerror.UNDER_EST)
    assert "P2" in rewrites and why


# -- fingerprints -----------------------------------------------------------


def test_fingerprint_is_join_order_insensitive(two_db_deployment):
    xdb = XDB(two_db_deployment)
    xdb.warm_metadata()
    plan_ab = xdb.pipeline.optimizer.optimize(
        xdb._parse(
            "SELECT u.id FROM users u, events e WHERE u.id = e.user_id"
        )
    )
    plan_ba = xdb.pipeline.optimizer.optimize(
        xdb._parse(
            "SELECT u.id FROM events e, users u WHERE e.user_id = u.id"
        )
    )
    assert fingerprint(plan_ab) == fingerprint(plan_ba)


def test_scan_fingerprint_and_table_key_casefold():
    assert scan_fingerprint("DbA", "Users") == scan_fingerprint(
        "dba", "users"
    )
    assert table_key("A", "Users") == "a.users"


def test_base_tables_of_optimized_plan(two_db_deployment):
    xdb = XDB(two_db_deployment)
    xdb.warm_metadata()
    plan = xdb.pipeline.optimizer.optimize(xdb._parse(JOIN_QUERY))
    assert set(base_tables(plan)) == {"a.users", "b.events"}


# -- store ------------------------------------------------------------------


def _obs(fp="fp1", tables=("a.users",), est=10.0, act=100.0):
    return Observation(
        fingerprint=fp,
        kind="task",
        locus=qerror.JOIN,
        tables=list(tables),
        estimated_rows=est,
        actual_rows=act,
        label="task 1@A",
    )


def test_store_observe_and_correction():
    store = FeedbackStore()
    store.observe(_obs())
    assert len(store) == 1
    assert store.correction("fp1") == 100.0
    assert store.correction("missing") is None


def test_store_refresh_bumps_hits():
    store = FeedbackStore()
    store.observe(_obs(act=100.0))
    store.observe(_obs(act=120.0))
    entry = store.get("fp1")
    assert entry.hits == 2
    assert entry.actual_rows == 120.0


def test_store_round_trip_through_json(tmp_path):
    path = str(tmp_path / "feedback.json")
    store = FeedbackStore(path=path)
    store.observe(_obs())
    store.observe(_obs(fp="fp2", est=0.0, act=5.0))  # infinite q-error

    reloaded = FeedbackStore(path=path)
    assert len(reloaded) == 2
    assert reloaded.correction("fp1") == 100.0
    entry = reloaded.get("fp2")
    assert entry.qerror == qerror.INFINITE  # -1.0 sentinel decodes back


def test_store_invalidate_table_drops_touching_entries():
    store = FeedbackStore()
    store.observe(_obs(fp="fp1", tables=["a.users"]))
    store.observe(_obs(fp="fp2", tables=["a.users", "b.events"]))
    store.observe(_obs(fp="fp3", tables=["b.events"]))
    dropped = store.invalidate_table("A", "Users")
    assert dropped == 2
    assert store.correction("fp3") is not None
    assert store.correction("fp1") is None


# -- overlay ----------------------------------------------------------------


def test_overlay_pin_beats_store():
    store = FeedbackStore()
    store.observe(_obs(fp="fp1", act=100.0))
    overlay = FeedbackOverlay(store)

    class _Fake:
        pass

    fake = _Fake()
    overlay._fingerprints[id(fake)] = (fake, "fp1")  # bypass rendering
    assert overlay.correct(fake, default_rows=10.0) == 100.0
    overlay.pin("fp1", 7.0)
    assert overlay.correct(fake, default_rows=10.0) == 7.0
    assert overlay.applied == 2


def test_overlay_without_knowledge_keeps_model_estimate():
    overlay = FeedbackOverlay()

    class _Fake:
        pass

    fake = _Fake()
    overlay._fingerprints[id(fake)] = (fake, "unknown")
    assert overlay.correct(fake, default_rows=10.0) is None
    assert overlay.applied == 0


# -- report rendering -------------------------------------------------------


def test_qerror_table_flags_worst_as_planning_locus():
    observations = [
        _obs(fp="fine", est=10.0, act=10.0),
        _obs(fp="blown", est=2.0, act=3000.0),
    ]
    text = qerror_table(observations)
    first_line = text.splitlines()[1]
    assert "planning locus" in first_line
    assert "1500.00" in first_line
    assert "hypothesis:" in text  # JOIN × UNDER_EST routes to P2


def test_median_q_error_of_observations():
    observations = [
        _obs(est=10.0, act=10.0),
        _obs(est=10.0, act=50.0),
        _obs(est=10.0, act=90.0),
    ]
    assert median_q_error(observations) == 5.0
    assert median_q_error([]) == 0.0


# -- the offline feedback loop ----------------------------------------------


def test_feedback_loop_learns_and_preserves_results(two_db_deployment):
    """Skewed stats mislead the cold plan; the warmed store corrects
    the next submission without changing a single result row."""
    store = FeedbackStore()
    xdb = XDB(two_db_deployment, feedback=store)
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)  # events is *not* tiny

    cold = xdb.submit(JOIN_QUERY)
    assert cold.feedback, "execution must harvest observations"
    assert len(store) > 0
    assert median_q_error(cold.feedback) > 1.0

    warm = xdb.submit(JOIN_QUERY)
    assert_same_rows(cold.result.rows, warm.result.rows)
    assert median_q_error(warm.feedback) < median_q_error(cold.feedback)


def test_feedback_disabled_by_default(two_db_deployment):
    xdb = XDB(two_db_deployment)
    report = xdb.submit(JOIN_QUERY)
    # Observations still ride on the report (explain_analyze needs
    # them) but nothing persists and no overlay perturbs planning.
    assert xdb.feedback is None
    assert xdb.feedback_overlay is None
    assert report.feedback


def test_feedback_path_persists_across_clients(
    two_db_deployment, tmp_path
):
    path = str(tmp_path / "fb.json")
    first = XDB(two_db_deployment, feedback_path=path)
    first.warm_metadata()
    first.catalog.override_stats("B", "events", 1)
    first.submit(JOIN_QUERY)

    second = XDB(two_db_deployment, feedback_path=path)
    assert len(second.feedback) > 0


def test_explain_analyze_renders_qerror_section(two_db_deployment):
    xdb = XDB(two_db_deployment, feedback=FeedbackStore())
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)
    text = xdb.explain_analyze(JOIN_QUERY)
    assert "q-error (worst first):" in text
    assert "planning locus" in text


# -- mid-query adaptivity ---------------------------------------------------


def test_mid_query_adaptation_pins_and_preserves(two_db_deployment):
    """Explicit movement + a blown estimate at the materialization
    boundary: the submission adapts mid-query (pinning the snapshot)
    and still returns exactly the oracle rows."""
    oracle = XDB(two_db_deployment, movement_policy="explicit")
    baseline = oracle.submit(JOIN_QUERY)

    store = FeedbackStore()
    xdb = XDB(
        two_db_deployment,
        movement_policy="explicit",
        feedback=store,
        adaptivity_threshold=2.0,
    )
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)
    report = xdb.submit(JOIN_QUERY)

    assert report.recovery.adaptations == 1
    assert report.recovery.pinned_tasks
    assert report.recovery.blown_estimates
    worst = max(q for _, q in report.recovery.blown_estimates)
    assert worst > 2.0
    assert "mid-query adaptation" in report.recovery.describe()
    assert_same_rows(baseline.result.rows, report.result.rows)


def test_adaptation_cleans_up_every_object(two_db_deployment):
    """Nothing may leak: kept snapshots are re-fenced under the new
    epoch and dropped with the adapted deployment's cleanup."""
    store = FeedbackStore()
    xdb = XDB(
        two_db_deployment,
        movement_policy="explicit",
        feedback=store,
        adaptivity_threshold=2.0,
    )
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)
    report = xdb.submit(JOIN_QUERY)
    assert report.recovery.adaptations == 1
    assert xdb.ledger.leaked_count() == 0
    for name, member in two_db_deployment.databases.items():
        for table in member.catalog.tables():
            assert not table.name.lower().startswith(("xf_", "xm_", "xv_")), (
                f"leaked {table.name} on {name}"
            )


def test_adaptation_is_one_round_per_submission(two_db_deployment):
    store = FeedbackStore()
    xdb = XDB(
        two_db_deployment,
        movement_policy="explicit",
        feedback=store,
        adaptivity_threshold=1.01,  # everything trips it
    )
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)
    report = xdb.submit(JOIN_QUERY)
    assert report.recovery.adaptations <= 1


def test_adaptivity_off_without_threshold(two_db_deployment):
    store = FeedbackStore()
    xdb = XDB(
        two_db_deployment, movement_policy="explicit", feedback=store
    )
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)
    report = xdb.submit(JOIN_QUERY)
    assert report.recovery.adaptations == 0


# -- prepared queries -------------------------------------------------------


def test_prepared_query_replans_after_blown_estimates(two_db_deployment):
    """A prepared handle re-enters the pipeline at ``optimize`` once the
    warmed store knows the real cardinalities."""
    store = FeedbackStore()
    xdb = XDB(two_db_deployment, feedback=store, adaptivity_threshold=2.0)
    xdb.warm_metadata()
    xdb.catalog.override_stats("B", "events", 1)
    with xdb.prepare(JOIN_QUERY) as prepared:
        first = prepared.execute()
        assert prepared._estimates_blown
        second = prepared.execute()
        assert second.recovery is not None
        assert second.recovery.adapted
        assert "feedback replan" in second.recovery.describe()
        assert_same_rows(first.result.rows, second.result.rows)


def test_drift_invalidates_learned_cardinalities(two_db_deployment):
    """Re-introspection after drift must also forget the corrections
    observed under the old schema."""
    store = FeedbackStore()
    xdb = XDB(two_db_deployment, feedback=store)
    xdb.warm_metadata()
    xdb.submit(JOIN_QUERY)
    assert any(
        "b.events" in entry.tables for entry in store.entries()
    )
    store_len_before = len(store)
    dropped = store.invalidate_table("B", "events")
    assert dropped > 0
    assert len(store) < store_len_before


def test_infinite_q_error_feeds_back_safely():
    obs = _obs(est=0.0, act=5.0)
    assert obs.q_error == qerror.INFINITE
    assert obs.direction == qerror.ZERO_EST
    assert not math.isnan(obs.q_error)
    text = qerror_table([obs])
    assert "inf" in text
