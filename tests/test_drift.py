"""Schema-drift resilience: versioned catalog, drift recovery, and the
epoch-fenced orphan reaper.

The remote sources are autonomous (the paper's in-situ premise), so
their schemas move underneath the federation.  These tests pin the
whole lifecycle: fingerprint detection, re-introspection + replanning
inside the repair budget, quarantine of unreconcilable holders,
prepared-plan invalidation, and the reaper's fencing invariants.
"""

import pytest

from repro.core.client import XDB
from repro.drift import ObjectLedger, apply_drift, schema_fingerprint
from repro.drift.fingerprint import schema_diff
from repro.errors import ReproError, SchemaDriftError
from repro.faults import FaultInjector, FaultPolicy, SchemaDrift
from repro.federation.deployment import Deployment
from repro.qos import QoSPolicy
from repro.relational.schema import Field, Schema
from repro.sql.types import BIGINT, DOUBLE, INTEGER, varchar

from conftest import assert_same_rows

EVENTS_STAR = "SELECT * FROM events WHERE weight > 1"

JOIN_QUERY = """
    SELECT u.name, SUM(e.weight) AS total
    FROM users u, events e
    WHERE u.id = e.user_id AND e.kind = 'login'
    GROUP BY u.name
    ORDER BY total DESC, u.name
"""


def build_small(replicate: bool = False) -> Deployment:
    """users @ A, events @ B — optionally replicating events onto A."""
    dep = Deployment({"A": "postgres", "B": "postgres"})
    dep.load_table(
        "A",
        "users",
        Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(16)),
                Field("score", DOUBLE),
            ]
        ),
        [(i, f"user{i}", float(i * 10 % 70)) for i in range(1, 21)],
    )
    dep.load_table(
        "B",
        "events",
        Schema(
            [
                Field("user_id", INTEGER),
                Field("kind", varchar(8)),
                Field("weight", INTEGER),
            ]
        ),
        [
            (1 + i % 25, ["login", "query", "logout"][i % 3], i % 7)
            for i in range(60)
        ],
    )
    if replicate:
        dep.replicate_table("events", "A", from_db="B")
    return dep


def drifted_truth(drift: SchemaDrift, sql: str):
    """Oracle rows: a fresh client over an already-drifted deployment."""
    dep = build_small()
    apply_drift(dep.database(drift.db), drift)
    return XDB(dep).submit(sql).result.rows


# -- fingerprints and the versioned catalog ------------------------------


def test_fingerprint_tracks_names_types_and_epoch():
    schema = Schema([Field("a", INTEGER), Field("b", varchar(8))])
    base = schema_fingerprint(schema)
    assert base == schema_fingerprint(schema)  # deterministic
    renamed = Schema([Field("a", INTEGER), Field("c", varchar(8))])
    retyped = Schema([Field("a", BIGINT), Field("b", varchar(8))])
    assert schema_fingerprint(renamed) != base
    assert schema_fingerprint(retyped) != base
    assert schema_fingerprint(schema, stats_epoch=2) != base


def test_schema_diff_classifies_changes():
    old = Schema([Field("a", INTEGER), Field("b", varchar(8))])
    new = Schema([Field("a", BIGINT), Field("c", varchar(8))])
    added, removed, retyped, dropped = schema_diff(old, new)
    assert added == ["c"]
    assert removed == ["b"]
    assert retyped and retyped[0].startswith("a:")
    assert not dropped
    added, removed, retyped, dropped = schema_diff(old, None)
    assert dropped and removed == ["a", "b"]


def test_catalog_versions_and_lazy_verification():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    version = xdb.catalog.catalog_version
    assert version > 0
    assert xdb.catalog.fingerprint_of("B", "events")

    # A refresh pre-verifies everything it read: no guarded calls.
    counting = FaultInjector(FaultPolicy()).install(dep)
    try:
        xdb.catalog.verify_table("B", "events")
        assert counting.calls_by_db.get("B", 0) == 0
    finally:
        counting.uninstall()

    apply_drift(
        dep.database("B"),
        SchemaDrift(
            db="B", table="events", kind="rename_column",
            column="kind", new_name="category",
        ),
    )
    # Cached verification stays silent; a forced one sees the drift.
    xdb.catalog.verify_table("B", "events")
    with pytest.raises(SchemaDriftError) as err:
        xdb.catalog.verify_table("B", "events", force=True)
    assert err.value.db == "B" and err.value.table == "events"
    assert "category" in err.value.added
    assert "kind" in err.value.removed
    assert not err.value.dropped

    # Refreshing bumps the version and adopts the live schema.
    xdb.catalog.refresh()
    assert xdb.catalog.catalog_version > version
    xdb.catalog.verify_table("B", "events", force=True)  # reconciled


# -- submit-path drift recovery ------------------------------------------


def test_submit_absorbs_rename_drift():
    dep = build_small()
    xdb = XDB(dep)
    xdb.submit(EVENTS_STAR)  # warm catalog + plans

    drift = SchemaDrift(
        db="B", table="events", kind="rename_column",
        column="kind", new_name="category",
    )
    apply_drift(dep.database("B"), drift)
    report = xdb.submit(EVENTS_STAR)

    assert report.recovery.drifted
    assert report.recovery.drift_events == 1
    assert ("B", "events") in report.recovery.drifted_tables
    assert "drift" in report.recovery.describe()
    assert [f.name for f in report.result.schema] == [
        "user_id", "category", "weight",
    ]
    assert_same_rows(report.result.rows, drifted_truth(drift, EVENTS_STAR))
    # Recovery reconciled the catalog: nothing left to absorb.
    clean = xdb.submit(EVENTS_STAR)
    assert not clean.recovery.drifted


def test_submit_absorbs_drop_column_drift():
    dep = build_small()
    xdb = XDB(dep)
    baseline = xdb.submit(EVENTS_STAR)
    assert len(baseline.result.schema) == 3

    drift = SchemaDrift(
        db="B", table="events", kind="drop_column", column="kind"
    )
    apply_drift(dep.database("B"), drift)
    report = xdb.submit(EVENTS_STAR)

    assert report.recovery.drifted
    assert [f.name for f in report.result.schema] == ["user_id", "weight"]
    assert_same_rows(report.result.rows, drifted_truth(drift, EVENTS_STAR))


def test_mid_delegation_drift_is_absorbed():
    """Drift landing between the cascade's guarded calls still recovers."""
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    truth = drifted_truth(
        SchemaDrift(
            db="B", table="events", kind="rename_column",
            column="kind", new_name="category",
        ),
        EVENTS_STAR,
    )
    # Land the drift right before the exec-phase calls on B: measure a
    # fault-free run's guarded-call schedule, then subtract the calls
    # the execution itself makes (DDL statements + the root query).
    counting = FaultInjector(FaultPolicy()).install(dep)
    try:
        probe = xdb.submit(EVENTS_STAR, cleanup=False)
    finally:
        counting.uninstall()
    total = counting.calls_by_db.get("B", 0)
    exec_calls = sum(1 for db, _ in probe.deployed.ddl_log if db == "B")
    if probe.deployed.root_db == "B":
        exec_calls += 1  # the root also serves the final XDB query
    assert exec_calls >= 1
    strike = total - exec_calls

    injector = FaultInjector(
        FaultPolicy(
            drifts=(
                SchemaDrift(
                    db="B", table="events", kind="rename_column",
                    column="kind", new_name="category",
                    after_calls=strike,
                ),
            )
        )
    ).install(dep)
    try:
        report = xdb.submit(EVENTS_STAR)
    finally:
        injector.uninstall()
    assert report.recovery.drifted
    assert_same_rows(report.result.rows, truth)


def test_drift_budget_exhaustion_propagates():
    dep = build_small()
    xdb = XDB(dep, repair_budget=0)
    xdb.submit(EVENTS_STAR)
    apply_drift(
        dep.database("B"),
        SchemaDrift(
            db="B", table="events", kind="rename_column",
            column="kind", new_name="category",
        ),
    )
    with pytest.raises(ReproError):
        xdb.submit(EVENTS_STAR)


def test_dropped_table_is_unreconcilable():
    dep = build_small()
    xdb = XDB(dep)
    xdb.submit(EVENTS_STAR)
    apply_drift(
        dep.database("B"),
        SchemaDrift(db="B", table="events", kind="drop_table"),
    )
    with pytest.raises(SchemaDriftError) as exc_info:
        xdb.submit(EVENTS_STAR)
    assert exc_info.value.dropped
    assert exc_info.value.quarantined
    assert exc_info.value.diff_summary() == "table dropped"


def test_drift_events_land_on_the_span_tree():
    dep = build_small()
    xdb = XDB(dep)
    xdb.submit(EVENTS_STAR)
    apply_drift(
        dep.database("B"),
        SchemaDrift(
            db="B", table="events", kind="rename_column",
            column="kind", new_name="category",
        ),
    )
    report = xdb.submit(EVENTS_STAR)
    events = report.context.tracer.root.subtree_events("schema-drift")
    assert events and events[0].attributes["table"] == "events"


# -- replicas and quarantine ---------------------------------------------


def test_replica_drift_quarantines_and_reroutes():
    dep = build_small(replicate=True)
    xdb = XDB(dep)
    first = xdb.submit(JOIN_QUERY)
    truth = first.result.rows
    victim = first.recovery.placement["events"]
    survivor = "A" if victim == "B" else "B"

    # The chosen replica loses the very column the query needs; the
    # other replica still carries it.
    apply_drift(
        dep.database(victim),
        SchemaDrift(
            db=victim, table="events", kind="drop_column", column="kind"
        ),
    )
    report = xdb.submit(JOIN_QUERY)
    assert report.recovery.drifted
    assert (victim, "events") in report.recovery.quarantined
    assert xdb.catalog.is_quarantined(victim, "events")
    assert report.recovery.placement["events"] == survivor
    assert_same_rows(report.result.rows, truth)

    # A refresh re-admits the (still drifted) holder.
    xdb.catalog.refresh()
    assert not xdb.catalog.is_quarantined(victim, "events")


# -- the object ledger and the epoch-fenced reaper -----------------------


def orphan_on(dep, db: str, name: str) -> None:
    """Plant an engine-held object shaped like a delegated leftover."""
    dep.database(db).create_table(
        name, Schema([Field("x", INTEGER)]), [(1,)]
    )


def engine_holds(dep, db: str, name: str) -> bool:
    held = dep.connector(db).list_objects(("xf_", "xm_", "xv_"))
    return name.lower() in {obj.lower() for _, obj in held}


def test_reaper_drops_closed_epochs_and_fences_live_ones():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()

    # A prepared query's cascade belongs to a live epoch.
    prepared = xdb.prepare(JOIN_QUERY)
    live_objects = [
        (db, name)
        for db, _kind, name in prepared.deployed.created_objects
    ]
    assert live_objects
    assert xdb.ledger.live_epochs()

    # A leftover from a closed (crashed) epoch sits next to them.
    orphan_on(dep, "B", "xm_999_zombie")
    report = xdb.reap()
    assert ("B", "TABLE", "xm_999_zombie") in report.dropped
    assert not engine_holds(dep, "B", "xm_999_zombie")
    for db, name in live_objects:
        assert engine_holds(dep, db, name)  # fencing: live epoch kept
    assert report.kept_live

    # The live deployment still works, then retires cleanly.
    assert len(prepared.execute().result) > 0
    prepared.close()
    assert xdb.reap().orphans_dropped == 0
    for db, name in live_objects:
        assert not engine_holds(dep, db, name)


def test_reaper_ignores_foreign_namespaces():
    dep = build_small()
    mine = XDB(dep, ddl_namespace="mine")
    mine.warm_metadata()
    orphan_on(dep, "B", "xm_other7_tmp")  # another client's leftover
    report = mine.reap()
    assert report.dropped == []
    assert engine_holds(dep, "B", "xm_other7_tmp")


def test_breaker_recovery_schedules_deferred_sweep():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    orphan_on(dep, "B", "xm_41_leftover")

    dep.health.report_outage("B")
    assert xdb.reaper.pending() == set()
    dep.health.record_success("B")  # half-open probe succeeds
    assert xdb.reaper.pending() == {"B"}

    # The next submission performs the sweep, outside the query path.
    xdb.submit("SELECT name FROM users WHERE id < 5")
    assert xdb.reaper.pending() == set()
    assert not engine_holds(dep, "B", "xm_41_leftover")


def test_leaked_objects_surface_and_reconcile():
    dep = build_small()
    xdb = XDB(dep)
    xdb.warm_metadata()
    # The ledger remembers a leak whose object was cleaned out of band.
    xdb.ledger.record("B", "TABLE", "xm_12_gone", epoch=12)
    xdb.ledger.mark_leaked("B", "xm_12_gone")

    report = xdb.submit("SELECT name FROM users WHERE id < 5")
    assert report.resilience.leaked_objects == 1
    assert "leaked" in report.resilience.describe()

    reap = xdb.reap()
    assert ("B", "TABLE", "xm_12_gone") in reap.reconciled
    assert xdb.ledger.leaked_count() == 0
    clean = xdb.submit("SELECT name FROM users WHERE id < 5")
    assert clean.resilience.leaked_objects == 0


def test_ledger_persists_and_fences_across_restart(tmp_path):
    path = str(tmp_path / "ledger.json")
    dep = build_small()

    first = XDB(dep, ledger_path=path)
    first.warm_metadata()
    prepared = first.prepare(JOIN_QUERY)  # live epoch with real objects
    live_epoch = prepared.deployed.epoch
    first.ledger.record("B", "TABLE", "xm_3_crashed", epoch=3)
    first.ledger.mark_leaked("B", "xm_3_crashed")
    orphan_on(dep, "B", "xm_3_crashed")

    # A restarted client reads the same ledger: the leak is still owed,
    # the prepared epoch is still fenced, and new delegations number
    # themselves above everything the predecessor ever created.
    reborn = XDB(dep, ledger_path=path)
    reborn.warm_metadata()
    assert reborn.ledger.leaked_count() == 1
    assert reborn.ledger.is_live(live_epoch)
    report = reborn.reap()
    assert ("B", "TABLE", "xm_3_crashed") in report.dropped
    assert report.kept_live  # the first client's prepared cascade
    assert len(prepared.execute().result) > 0
    assert reborn.submit(EVENTS_STAR).deployed.epoch > live_epoch
    prepared.close()


# -- prepared queries under drift ----------------------------------------


def test_prepared_query_replans_after_drift():
    dep = build_small()
    xdb = XDB(dep)
    prepared = xdb.prepare(EVENTS_STAR)
    prepared.execute()

    drift = SchemaDrift(
        db="B", table="events", kind="rename_column",
        column="kind", new_name="category",
    )
    apply_drift(dep.database("B"), drift)
    truth = drifted_truth(drift, EVENTS_STAR)

    report = prepared.execute()
    assert report.recovery is not None and report.recovery.drifted
    assert not prepared.stale_plan
    assert_same_rows(report.result.rows, truth)
    # Subsequent executions run on the adopted plan, drift-free.
    again = prepared.execute()
    assert again.recovery is None or not again.recovery.drifted
    assert_same_rows(again.result.rows, truth)
    prepared.close()


def test_submit_recovery_invalidates_prepared_plans():
    dep = build_small()
    xdb = XDB(dep)
    prepared = xdb.prepare(EVENTS_STAR)
    prepared.execute()
    apply_drift(
        dep.database("B"),
        SchemaDrift(
            db="B", table="events", kind="rename_column",
            column="kind", new_name="category",
        ),
    )
    xdb.submit(EVENTS_STAR)  # absorbs the drift, bumps the catalog
    assert prepared.stale_plan  # invalidated by the recovery path
    report = prepared.execute()
    assert not prepared.stale_plan
    assert [f.name for f in report.result.schema] == [
        "user_id", "category", "weight",
    ]
    prepared.close()


def test_prepared_query_degrades_to_snapshot_on_drift():
    dep = build_small()
    # Explicit data movement materializes the moved relation, giving
    # the prepared query a snapshot to degrade onto.
    xdb = XDB(dep, movement_policy="explicit")
    prepared = xdb.prepare(JOIN_QUERY)
    baseline = prepared.execute()
    assert prepared.deployed.materializations

    apply_drift(
        dep.database("B"),
        SchemaDrift(
            db="B", table="events", kind="rename_column",
            column="kind", new_name="category",
        ),
    )
    xdb.submit("SELECT * FROM events WHERE weight > 1")  # marks it stale
    assert prepared.stale_plan

    report = prepared.execute(
        qos=QoSPolicy(max_staleness_seconds=1e9)
    )
    assert report.qos is not None and report.qos.stale_read
    assert report.qos.stale_reason == "drift"
    assert_same_rows(report.result.rows, baseline.result.rows)
    prepared.close()
