"""Task-level fault domains: branch-scoped retry/failover, hedged
stragglers, and policy-bounded partial results.

A failed delegated branch of a partitioned gather must be repaired *in
place*: the one struck shard holder is quarantined (the engine's
breaker stays closed — the disk died, not the server), completed
sibling ``xm_`` snapshots are pinned and reused, and only the failed
branch re-routes to a replica holder.  Whole-query re-entry
(``repair_attempts``) stays at zero.  With no healthy holder left, a
``QoSPolicy.allow_partial`` submission degrades to a partial answer —
a row-subset of the fault-free oracle with its completeness reported —
while a submission below its ``completeness_floor`` refuses and fails.
The worker pool underneath hedges stragglers (speculative duplicate,
first result wins, loser cooperatively cancelled) and cancels queued
siblings after the first branch failure.
"""

import time

import pytest

from repro.connect.connector import RetryPolicy
from repro.core.client import XDB
from repro.core.partition import (
    partition_completeness,
    partition_name,
    prune_missing_shards,
)
from repro.engine.parallel import (
    BranchCancelled,
    CancelToken,
    HedgePolicy,
    WorkerPool,
    check_cancelled,
    current_cancel_token,
)
from repro.engine.physical import ParallelUnionAllOp, PhysicalPlan
from repro.errors import ReproError
from repro.faults import EngineOutage, FaultInjector, FaultPolicy
from repro.federation.deployment import Deployment
from repro.obs.context import QueryContext
from repro.qos import QoSPolicy
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER

from conftest import assert_same_rows

DBS = ["p1", "p2", "p3", "p4"]

ORDERS = Schema(
    [
        Field("o_orderkey", INTEGER),
        Field("o_custkey", INTEGER),
        Field("o_total", DOUBLE),
    ]
)
ORDERS_ROWS = [(i, i % 10, float(i * 7 % 90)) for i in range(80)]

AGG_SQL = """
    SELECT o_custkey, SUM(o_total) AS total
    FROM orders
    GROUP BY o_custkey
    ORDER BY total DESC, o_custkey
"""

SCAN_SQL = "SELECT o_orderkey, o_custkey FROM orders ORDER BY o_orderkey"


def build_sharded(replicate_shard=None, replica_db=None) -> Deployment:
    dep = Deployment(
        {name: "postgres" for name in DBS}, parallel_workers=2
    )
    dep.load_table("p1", "orders", ORDERS, ORDERS_ROWS)
    dep.partition_table("orders", "o_orderkey", DBS)
    if replicate_shard is not None:
        dep.replicate_table(
            partition_name("orders", replicate_shard), replica_db
        )
    return dep


def truth_rows(sql: str):
    dep = Deployment({"T": "postgres"})
    dep.load_table("T", "orders", ORDERS, ORDERS_ROWS)
    return XDB(dep).submit(sql).result.rows


def shard_outage(index: int):
    """A shard-scoped outage striking only calls that touch the shard."""
    db = DBS[index]
    return FaultInjector(
        FaultPolicy(
            outages=(
                EngineOutage(
                    db=db, table=partition_name("orders", index)
                ),
            )
        )
    )


# -- branch-scoped failover to a replica holder ---------------------------


def test_branch_failover_reuses_pinned_siblings():
    """Single-shard outage with a replica: repaired branch-locally.

    The struck holder is quarantined (breaker closed), the completed
    sibling snapshots are pinned, only the failed branch re-routes —
    and the whole-query repair loop is never entered.
    """
    dep = build_sharded(replicate_shard=3, replica_db="p1")
    xdb = XDB(dep, movement_policy="explicit")
    xdb.warm_metadata()
    truth = truth_rows(AGG_SQL)
    baseline = xdb.submit(AGG_SQL)
    assert_same_rows(baseline.result.rows, truth)
    shard = partition_name("orders", 3)
    # Strike whichever holder the planner actually picked; failover
    # must land on the other one.
    primary = baseline.recovery.placement[shard]
    backup = next(
        db for db in xdb.catalog.holders(shard) if db != primary
    )

    injector = FaultInjector(
        FaultPolicy(outages=(EngineOutage(db=primary, table=shard),))
    )
    with injector.install(dep):
        report = xdb.submit(AGG_SQL)
    assert_same_rows(report.result.rows, truth)
    assert injector.calls_by_shard  # the outage actually struck

    recovery = report.recovery
    assert recovery.branch_repairs == 1
    assert recovery.repair_attempts == 0  # no whole-query re-entry
    assert recovery.branch_events == [("failover", primary, shard)]
    # Executed sibling work was pinned, not redone.
    assert recovery.pinned_tasks
    # The shard holder is quarantined; the engine itself is not blamed.
    assert xdb.catalog.is_quarantined(primary, shard)
    assert primary not in recovery.repaired_dbs
    assert not dep.health.is_open(primary)  # the breaker never tripped
    assert (primary, shard) in dep.health.shard_outages
    # The repaired placement routes the shard to the replica holder.
    assert recovery.placement[shard] == backup
    assert f"branch failover: {primary}" in report.explain_analyze()


def test_branch_failover_without_replica_falls_back_to_query_repair():
    """No replica, no partial policy: the branch repair cannot help and
    the failure propagates (the only holder of the shard is gone)."""
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    with shard_outage(3).install(dep):
        with pytest.raises(ReproError):
            xdb.submit(AGG_SQL)


# -- policy-bounded partial results ---------------------------------------


def test_partial_answer_is_subset_with_reported_completeness():
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    truth = truth_rows(SCAN_SQL)
    spec = xdb.catalog.partition_spec("orders")
    assert spec is not None

    qos = QoSPolicy(allow_partial=True, completeness_floor=0.1)
    with shard_outage(3).install(dep):
        report = xdb.submit(SCAN_SQL, qos=qos)

    # The partial answer is a row-subset of the fault-free oracle.
    assert set(report.result.rows) < set(truth)
    shard = partition_name("orders", 3)
    lost = xdb.catalog.stats_of("p4", shard).row_count
    expected = (len(ORDERS_ROWS) - lost) / len(ORDERS_ROWS)
    assert len(report.result.rows) == len(ORDERS_ROWS) - lost

    recovery = report.recovery
    assert recovery.partial
    assert recovery.missing_partitions == [shard]
    assert recovery.completeness == pytest.approx(expected)
    assert recovery.branch_events == [("partial", "p4", shard)]
    assert recovery.repair_attempts == 0

    # Surfaced through the QoS receipt and EXPLAIN ANALYZE.
    assert report.qos.partial
    assert report.qos.completeness == pytest.approx(expected)
    assert report.qos.missing_partitions == [shard]
    assert "partial answer" in report.qos.describe()
    assert "partial answer" in report.explain_analyze()


def test_partial_below_completeness_floor_is_refused():
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    qos = QoSPolicy(allow_partial=True, completeness_floor=0.95)
    with shard_outage(3).install(dep):
        with pytest.raises(ReproError):
            xdb.submit(SCAN_SQL, qos=qos)


def test_partial_requires_opt_in():
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    with shard_outage(3).install(dep):
        with pytest.raises(ReproError):
            xdb.submit(SCAN_SQL, qos=QoSPolicy())


# -- the pruning + completeness primitives --------------------------------


def test_prune_missing_shards_collapses_gather_chain():
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    state = xdb.pipeline.new_state(SCAN_SQL, budget=0)
    ctx = QueryContext(label="prune")
    with ctx:
        xdb.pipeline.plan(state, ctx)
    shard = partition_name("orders", 1)
    plan, pruned = prune_missing_shards(state.logical_plan, [shard])
    assert plan is not None
    assert pruned == [shard]

    def leaves(node):
        kids = node.children()
        if not kids and hasattr(node, "table"):
            yield node.table
        for kid in kids:
            yield from leaves(kid)

    assert shard not in set(leaves(plan))
    # Pruning an unknown table is a no-op.
    same, nothing = prune_missing_shards(state.logical_plan, ["ghost"])
    assert nothing == []


def test_partition_completeness_is_row_weighted():
    from repro.core.partition import PartitionSpec

    spec3 = PartitionSpec("orders", "o_orderkey", 3)
    rows = {"orders__p0": 60, "orders__p1": 20, "orders__p2": 20}
    completeness = partition_completeness(
        ["orders__p0"],
        lambda t: spec3 if t == "orders" else None,
        lambda shard: rows.get(shard),
    )
    assert completeness == pytest.approx(40 / 100)
    # Unknown shard rows fall back to a uniform fraction.
    spec4 = PartitionSpec("orders", "o_orderkey", 4)
    uniform = partition_completeness(
        ["orders__p0"],
        lambda t: spec4 if t == "orders" else None,
        lambda shard: None,
    )
    assert uniform == pytest.approx(0.75)


# -- worker-pool fault domains: cancellation + hedging --------------------


def test_map_cancels_queued_siblings_on_first_failure():
    pool = WorkerPool(1)  # strictly serial: order is deterministic
    ran = []

    def ok():
        ran.append("ok")
        return 1

    def boom():
        raise ValueError("boom")

    def never():
        ran.append("never")
        return 3

    ctx = QueryContext(label="cancel")
    with ctx:
        with pytest.raises(ValueError):
            pool.map([ok, boom, never], context=ctx)
    assert ran == ["ok"]
    assert ctx.metrics.value("parallel.branches_cancelled") == 1.0


def test_cancel_token_is_thread_local_and_cooperative():
    assert current_cancel_token() is None
    check_cancelled()  # no token: no-op
    token = CancelToken()
    assert not token.cancelled
    token.cancel()
    assert token.cancelled


def _straggler(duration: float):
    def run():
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            check_cancelled()
            time.sleep(0.002)
        return "slow"

    return run


def test_hedge_beats_straggler_and_cancels_loser():
    pool = WorkerPool(4)
    hedge = HedgePolicy(
        multiplier=3.0,
        factory=lambda index: (lambda: f"hedged-{index}"),
        poll_seconds=0.001,
    )
    ctx = QueryContext(label="hedge")
    started = time.monotonic()
    with ctx:
        outcomes = pool.map(
            [lambda: "a", lambda: "b", _straggler(30.0)],
            context=ctx,
            hedge=hedge,
        )
    elapsed = time.monotonic() - started
    assert [o.value for o in outcomes] == ["a", "b", "hedged-2"]
    assert outcomes[2].hedged and outcomes[2].hedge_won
    assert elapsed < 10.0  # the straggler was not waited out
    assert ctx.metrics.value("parallel.hedges_launched") == 1.0
    assert ctx.metrics.value("parallel.hedges_won") == 1.0
    assert ctx.metrics.value("parallel.hedges_wasted") == 0.0


def test_hedge_loser_that_finishes_counts_as_wasted():
    pool = WorkerPool(4)

    def slow_uncooperative():
        time.sleep(0.25)  # never polls check_cancelled
        return "slow"

    hedge = HedgePolicy(
        multiplier=2.0,
        factory=lambda index: (lambda: "hedged"),
        poll_seconds=0.001,
    )
    ctx = QueryContext(label="waste")
    with ctx:
        outcomes = pool.map(
            [lambda: 1, lambda: 2, slow_uncooperative],
            context=ctx,
            hedge=hedge,
        )
    assert outcomes[2].value == "hedged"
    assert ctx.metrics.value("parallel.hedges_wasted") == 1.0


def test_no_hedge_without_policy_or_samples():
    pool = WorkerPool(2)
    ctx = QueryContext(label="nohedge")
    with ctx:
        outcomes = pool.map([lambda: 1, lambda: 2], context=ctx)
    assert [o.value for o in outcomes] == [1, 2]
    assert ctx.metrics.value("parallel.hedges_launched") == 0.0


# -- hedging wired through the parallel gather ----------------------------


class _SlowOnceScan(PhysicalPlan):
    """Yields its rows after a shared-queue delay: the primary draws the
    long delay, its hedged clone draws nothing and runs fast."""

    def __init__(self, schema, rows, delays):
        super().__init__()
        self.schema = schema
        self._rows = rows
        self._delays = delays  # shared across clones on purpose

    def _produce(self):
        delay = self._delays.pop(0) if self._delays else 0.0
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            check_cancelled()
            time.sleep(0.002)
        return iter(self._rows)


def _fast_scan(schema, rows):
    return _SlowOnceScan(schema, rows, [])


def test_parallel_union_hedges_straggling_branch():
    schema = Schema([Field("x", INTEGER)])
    slow = _SlowOnceScan(schema, [(100,), (101,)], [30.0])
    op = ParallelUnionAllOp(
        [
            _fast_scan(schema, [(1,), (2,)]),
            _fast_scan(schema, [(3,)]),
            slow,
        ],
        schema,
        workers=4,
    )
    ctx = QueryContext(label="gather-hedge")
    ctx.hedge_multiplier = 3.0
    ctx.hedging_allowed = True
    started = time.monotonic()
    with ctx:
        rows = list(op.rows())
    elapsed = time.monotonic() - started
    # Branch order is preserved and the hedge's rows are identical.
    assert rows == [(1,), (2,), (3,), (100,), (101,)]
    assert elapsed < 10.0
    assert ctx.metrics.value("parallel.hedges_won") == 1.0
    # The gather's counter saw each row exactly once — the cancelled
    # primary's clone kept its own independent counters.
    assert op.rows_out == 5
    assert slow.rows_out == 0  # the primary never got to yield


def test_parallel_union_respects_gate_denial():
    schema = Schema([Field("x", INTEGER)])
    op = ParallelUnionAllOp(
        [_fast_scan(schema, [(1,)]), _fast_scan(schema, [(2,)])],
        schema,
        workers=2,
    )
    ctx = QueryContext(label="gate-denied")
    ctx.hedge_multiplier = 2.0
    ctx.hedging_allowed = False  # the workload gate saw saturation
    with ctx:
        assert op._hedge_policy(ctx, lambda branch: None) is None
        assert list(op.rows()) == [(1,), (2,)]


def test_physical_plan_clone_resets_counters_recursively():
    schema = Schema([Field("x", INTEGER)])
    inner = _fast_scan(schema, [(1,), (2,)])
    op = ParallelUnionAllOp([inner], schema, workers=1)
    list(op.rows())
    assert op.rows_out == 2 and inner.rows_out == 2
    dup = op.clone()
    assert dup.rows_out == 0
    assert dup.branches[0] is not inner
    assert dup.branches[0].rows_out == 0
    list(dup.rows())
    # Re-running the clone never touches the original's counters.
    assert inner.rows_out == 2


def test_hedged_query_end_to_end_is_correct():
    """A hedging-enabled submission stays correct (hedges may or may
    not fire — no branch straggles here) and reports cleanly."""
    dep = build_sharded()
    xdb = XDB(dep)
    xdb.warm_metadata()
    truth = truth_rows(AGG_SQL)
    report = xdb.submit(AGG_SQL, qos=QoSPolicy(hedge_multiplier=4.0))
    assert_same_rows(report.result.rows, truth)
    assert report.qos is not None and not report.qos.partial
