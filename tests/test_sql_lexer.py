"""Lexer unit tests."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_are_uppercased():
    tokens = tokenize("select Select SELECT")
    assert all(t.value == "SELECT" for t in tokens[:-1])
    assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])


def test_identifiers_preserve_case():
    assert values("FooBar") == ["FooBar"]
    assert kinds("FooBar")[0] is TokenKind.IDENTIFIER


def test_integer_and_float_literals():
    tokens = tokenize("42 3.14 1e3 2.5E-2")
    assert [t.value for t in tokens[:-1]] == [42, 3.14, 1000.0, 0.025]
    assert tokens[0].kind is TokenKind.INTEGER
    assert tokens[1].kind is TokenKind.FLOAT


def test_number_followed_by_dot_method_is_not_float():
    # "1." without digits should lex as INTEGER then PUNCTUATION.
    tokens = tokenize("1.x")
    assert tokens[0].kind is TokenKind.INTEGER
    assert tokens[1].value == "."


def test_string_literal_with_escaped_quote():
    assert values("'don''t'") == ["don't"]


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize("'oops")


def test_double_quoted_identifier():
    tokens = tokenize('"weird name"')
    assert tokens[0].kind is TokenKind.QUOTED_IDENTIFIER
    assert tokens[0].value == "weird name"


def test_backtick_identifier_mariadb_style():
    tokens = tokenize("`weird``name`")
    assert tokens[0].kind is TokenKind.QUOTED_IDENTIFIER
    assert tokens[0].value == "weird`name"


def test_multichar_operators_lex_greedily():
    assert values("a <> b >= c <= d != e || f") == [
        "a", "<>", "b", ">=", "c", "<=", "d", "!=", "e", "||", "f",
    ]


def test_line_comment_is_skipped():
    assert values("1 -- comment\n2") == [1, 2]


def test_block_comment_is_skipped():
    assert values("1 /* multi\nline */ 2") == [1, 2]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("1 /* never ends")


def test_invalid_character_raises_with_position():
    with pytest.raises(LexerError) as excinfo:
        tokenize("select #")
    assert "line 1" in str(excinfo.value)


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_eof_token_terminates_stream():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_date_keyword_then_string():
    tokens = tokenize("DATE '2024-01-01'")
    assert tokens[0].kind is TokenKind.KEYWORD
    assert tokens[1].kind is TokenKind.STRING
