"""Randomized query generation: federated XDB vs. single engine.

A hypothesis strategy assembles random analytical queries (random join
subsets, filters, aggregates, ordering) over a three-DBMS federation,
and every generated query must return the same rows through XDB as on
one engine holding all the data.  This is the strongest form of the
reproduction's central invariant.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.client import XDB
from repro.engine.database import Database
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar

from conftest import assert_same_rows

# A fixed federation: three DBMSes, four joinable tables.
TABLES = {
    "customers": (
        "A",
        Schema(
            [
                Field("cid", INTEGER),
                Field("region", varchar(4)),
                Field("budget", DOUBLE),
            ]
        ),
    ),
    "orders_t": (
        "B",
        Schema(
            [
                Field("oid", INTEGER),
                Field("cid", INTEGER),
                Field("total", DOUBLE),
            ]
        ),
    ),
    "lines_t": (
        "C",
        Schema(
            [
                Field("oid", INTEGER),
                Field("qty", INTEGER),
                Field("price", DOUBLE),
            ]
        ),
    ),
    "regions_t": (
        "A",
        Schema([Field("region", varchar(4)), Field("zone", INTEGER)]),
    ),
}

#: join conditions along the chain customers→orders→lines (+ regions).
JOIN_EDGES = {
    ("customers", "orders_t"): "customers.cid = orders_t.cid",
    ("orders_t", "lines_t"): "orders_t.oid = lines_t.oid",
    ("customers", "regions_t"): "customers.region = regions_t.region",
}

FILTERS = {
    "customers": [
        "customers.budget > 50",
        "customers.region IN ('eu', 'us')",
        "customers.budget IS NOT NULL",
    ],
    "orders_t": ["orders_t.total BETWEEN 10 AND 90", "orders_t.oid > 5"],
    "lines_t": ["lines_t.qty < 8", "lines_t.price > 3.0"],
    "regions_t": ["regions_t.zone <> 2"],
}

AGGREGATES = ["COUNT(*)", "SUM({x})", "AVG({x})", "MIN({x})", "MAX({x})"]
NUMERIC_COLUMNS = {
    "customers": "customers.budget",
    "orders_t": "orders_t.total",
    "lines_t": "lines_t.price",
    "regions_t": "regions_t.zone",
}
GROUP_COLUMNS = {
    "customers": "customers.region",
    "orders_t": "orders_t.cid",
    "lines_t": "lines_t.qty",
    "regions_t": "regions_t.zone",
}

#: connected table subsets (must be joinable without cross products)
TABLE_SUBSETS = [
    ["customers"],
    ["orders_t"],
    ["customers", "orders_t"],
    ["customers", "regions_t"],
    ["orders_t", "lines_t"],
    ["customers", "orders_t", "lines_t"],
    ["customers", "orders_t", "regions_t"],
    ["customers", "orders_t", "lines_t", "regions_t"],
]


@st.composite
def random_query(draw):
    tables = draw(st.sampled_from(TABLE_SUBSETS))
    conditions = [
        condition
        for (left, right), condition in JOIN_EDGES.items()
        if left in tables and right in tables
    ]
    filter_pool = [f for t in tables for f in FILTERS[t]]
    picked_filters = draw(
        st.lists(st.sampled_from(filter_pool), max_size=2, unique=True)
    ) if filter_pool else []

    group_table = draw(st.sampled_from(tables))
    group_column = GROUP_COLUMNS[group_table]
    agg_template = draw(st.sampled_from(AGGREGATES))
    agg_table = draw(st.sampled_from(tables))
    aggregate = agg_template.format(x=NUMERIC_COLUMNS[agg_table])

    use_group = draw(st.booleans())
    where = " AND ".join(conditions + picked_filters)
    where_clause = f" WHERE {where}" if where else ""
    if use_group:
        sql = (
            f"SELECT {group_column} AS g, {aggregate} AS v "
            f"FROM {', '.join(tables)}{where_clause} "
            f"GROUP BY {group_column}"
        )
    else:
        sql = (
            f"SELECT {aggregate} AS v FROM {', '.join(tables)}"
            f"{where_clause}"
        )
    return sql


def build_worlds():
    deployment = Deployment(
        {"A": "postgres", "B": "mariadb", "C": "hive"}
    )
    single = Database("ALL")
    data = {
        "customers": [
            (i, ["eu", "us", "apac"][i % 3], float(i * 7 % 100) if i % 5 else None)
            for i in range(30)
        ],
        "orders_t": [
            (i, i % 30, float(i * 13 % 100)) for i in range(60)
        ],
        "lines_t": [
            (i % 60, i % 10, float(i % 17)) for i in range(120)
        ],
        "regions_t": [("eu", 1), ("us", 2), ("apac", 3)],
    }
    for name, (db, schema) in TABLES.items():
        deployment.load_table(db, name, schema, data[name])
        single.create_table(name, schema, data[name])
    return deployment, single


_DEPLOYMENT, _SINGLE = build_worlds()
_XDB = XDB(_DEPLOYMENT)
_XDB.warm_metadata()
_XDB_BUSHY = XDB(_DEPLOYMENT, plan_shape="bushy")
_XDB_BUSHY.warm_metadata()


@given(sql=random_query())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_queries_federated_equals_single(sql):
    federated = _XDB.submit(sql).result
    truth = _SINGLE.execute(sql)
    assert_same_rows(federated.rows, truth.rows)


@given(sql=random_query())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_queries_bushy_equals_left_deep(sql):
    left = _XDB.submit(sql).result
    right = _XDB_BUSHY.submit(sql).result
    assert_same_rows(left.rows, right.rows)
