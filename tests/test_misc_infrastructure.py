"""Miscellaneous infrastructure: Result, profiles, errors, reporting."""

import pytest

from repro import errors
from repro.engine.profiles import available_profiles, profile_for
from repro.engine.result import Result
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar


# -- Result ---------------------------------------------------------------------


def make_result():
    schema = Schema(
        [Field("a", INTEGER), Field("s", varchar(4)), Field("x", DOUBLE)]
    )
    return Result(schema, [(1, "one", 1.5), (2, None, None)])


def test_result_basics():
    result = make_result()
    assert len(result) == 2
    assert result.column_names == ["a", "s", "x"]
    assert list(result)[0] == (1, "one", 1.5)


def test_result_byte_size():
    result = make_result()
    assert result.byte_size() == (4 + 4 + 8) * 2


def test_result_to_table_truncates():
    schema = Schema([Field("a", INTEGER)])
    result = Result(schema, [(i,) for i in range(30)])
    text = result.to_table(max_rows=5)
    assert "more rows" in text


def test_result_to_table_renders_null():
    text = make_result().to_table()
    assert "NULL" in text


def test_sorted_rows_handles_none():
    result = make_result()
    rows = result.sorted_rows()
    assert len(rows) == 2


def test_result_command():
    schema = Schema([])
    result = Result(schema, [], command="CREATE VIEW")
    assert result.command == "CREATE VIEW"


# -- profiles --------------------------------------------------------------------


def test_available_profiles():
    assert available_profiles() == ["hive", "mariadb", "postgres"]


def test_profile_lookup_case_insensitive():
    assert profile_for("POSTGRES").name == "postgres"


def test_unknown_profile():
    with pytest.raises(errors.CatalogError):
        profile_for("oracle")


def test_profile_characteristics():
    pg = profile_for("postgres")
    maria = profile_for("mariadb")
    hive = profile_for("hive")
    # PostgreSQL's wrapper pushes filters; the others' do not.
    assert pg.pushdown_filters
    assert not maria.pushdown_filters
    assert not hive.pushdown_filters
    # Hive is the slow starter; MariaDB the slowest OLAP processor.
    assert hive.startup_latency > pg.startup_latency
    assert maria.process_rows_per_sec < pg.process_rows_per_sec


# -- error hierarchy ----------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    for name in (
        "SQLError",
        "ParseError",
        "LexerError",
        "BindError",
        "TypeCheckError",
        "CatalogError",
        "ExecutionError",
        "ConnectorError",
        "NetworkError",
        "OptimizerError",
        "DelegationError",
        "WorkloadError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_parse_error_is_sql_error():
    assert issubclass(errors.ParseError, errors.SQLError)


def test_lexer_error_carries_location():
    err = errors.LexerError("bad", position=5, line=2, column=3)
    assert err.line == 2 and err.column == 3
    assert "line 2" in str(err)
