"""SQL type system tests."""

import datetime

import pytest

from repro.errors import TypeCheckError
from repro.sql import types as t


def test_type_from_name_aliases():
    assert t.type_from_name("INT") == t.INTEGER
    assert t.type_from_name("int4") == t.INTEGER
    assert t.type_from_name("TEXT").kind is t.TypeKind.VARCHAR
    assert t.type_from_name("NUMERIC", 10, 2) == t.decimal(10, 2)
    assert t.type_from_name("varchar", 25).length == 25


def test_type_from_unknown_name():
    with pytest.raises(TypeCheckError):
        t.type_from_name("blob")


def test_str_rendering():
    assert str(t.varchar(25)) == "VARCHAR(25)"
    assert str(t.decimal(10, 2)) == "DECIMAL(10,2)"
    assert str(t.DATE) == "DATE"


def test_byte_widths():
    assert t.INTEGER.byte_width() == 4
    assert t.BIGINT.byte_width() == 8
    assert t.varchar(25).byte_width() == 25
    assert t.varchar().byte_width() == 32  # default text width
    assert t.DATE.byte_width() == 4


def test_type_of_value():
    assert t.type_of_value(5) == t.INTEGER
    assert t.type_of_value(5_000_000_000) == t.BIGINT
    assert t.type_of_value(1.5) == t.DOUBLE
    assert t.type_of_value(True) == t.BOOLEAN
    assert t.type_of_value(None) == t.NULL
    assert t.type_of_value(datetime.date(2020, 1, 1)) == t.DATE
    assert t.type_of_value("abc").kind is t.TypeKind.VARCHAR


def test_type_of_value_rejects_unknown():
    with pytest.raises(TypeCheckError):
        t.type_of_value(object())


def test_common_supertype_numeric_widening():
    assert t.common_supertype(t.INTEGER, t.DOUBLE) == t.DOUBLE
    assert t.common_supertype(t.INTEGER, t.BIGINT) == t.BIGINT
    assert (
        t.common_supertype(t.decimal(10, 2), t.INTEGER).kind
        is t.TypeKind.DECIMAL
    )


def test_common_supertype_null_is_identity():
    assert t.common_supertype(t.NULL, t.DATE) == t.DATE
    assert t.common_supertype(t.varchar(5), t.NULL) == t.varchar(5)


def test_common_supertype_text_takes_max_length():
    merged = t.common_supertype(t.varchar(5), t.char(9))
    assert merged.kind is t.TypeKind.VARCHAR
    assert merged.length == 9


def test_common_supertype_incompatible():
    with pytest.raises(TypeCheckError):
        t.common_supertype(t.DATE, t.INTEGER)


def test_comparable():
    assert t.comparable(t.INTEGER, t.DOUBLE)
    assert t.comparable(t.DATE, t.DATE)
    assert not t.comparable(t.DATE, t.varchar(4))
