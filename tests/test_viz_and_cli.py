"""Visualization helpers and the standalone bench CLI."""

import pytest

from repro.bench.run import main as bench_main, parse_args, run_grid
from repro.core.client import XDB
from repro.core.viz import (
    critical_path,
    delegation_plan_to_dot,
    delegation_plan_to_networkx,
)
from repro.workloads.tpch import query


@pytest.fixture(scope="module")
def q5_plan(tpch_tiny):
    deployment, _ = tpch_tiny
    xdb = XDB(deployment)
    return xdb.plan_query(query("Q5"))


def test_dot_export_structure(q5_plan):
    dot = delegation_plan_to_dot(q5_plan)
    assert dot.startswith("digraph")
    for task in q5_plan.tasks.values():
        assert f"t{task.task_id}" in dot
        assert task.annotation in dot
    assert "(root)" in dot
    assert dot.rstrip().endswith("}")


def test_dot_edge_labels(q5_plan):
    dot = delegation_plan_to_dot(q5_plan)
    for edge in q5_plan.edges:
        assert f"t{edge.producer_id} -> t{edge.consumer_id}" in dot


def test_networkx_bridge(q5_plan):
    graph = delegation_plan_to_networkx(q5_plan)
    assert graph.number_of_nodes() == q5_plan.task_count()
    assert graph.number_of_edges() == len(q5_plan.edges)
    roots = [n for n, d in graph.nodes(data=True) if d["is_root"]]
    assert roots == [q5_plan.root_id]


def test_critical_path_ends_at_root(q5_plan):
    path = critical_path(q5_plan)
    assert path[-1] == q5_plan.root_id
    assert len(path) >= 2


# -- CLI --------------------------------------------------------------------------


def test_cli_parse_defaults():
    args = parse_args([])
    assert args.td == "TD1"
    assert args.sf == 0.005
    assert not args.hetero


def test_cli_grid_runs_subset(capsys):
    exit_code = bench_main(
        ["--sf", "0.001", "--queries", "Q3", "--systems", "xdb,garlic"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Q3" in out
    assert "XDB" in out and "Garlic" in out
    assert "vs XDB" in out


def test_cli_rejects_unknown_system():
    args = parse_args(["--systems", "oracle"])
    with pytest.raises(SystemExit):
        run_grid(args)


# -- demo CLI trace export --------------------------------------------------------


def test_demo_cli_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.__main__ import main as demo_main
    from repro.obs.context import validate_chrome_trace

    out_path = tmp_path / "trace.json"
    assert demo_main(["--trace", str(out_path)]) == 0
    printed = capsys.readouterr().out
    assert "wrote Chrome trace" in printed
    assert "explain analyze" in printed

    payload = json.loads(out_path.read_text(encoding="utf-8"))
    count = validate_chrome_trace(payload)
    assert count > 0
    names = {event["name"] for event in payload["traceEvents"]}
    assert {"prep", "lopt", "ann", "exec", "ddl", "transfer"} <= names
    assert payload["otherData"]["metrics"]


def test_demo_cli_trace_flag_is_optional(capsys):
    from repro.__main__ import main as demo_main

    assert demo_main([]) == 0
    out = capsys.readouterr().out
    assert "wrote Chrome trace" not in out
    assert "moved_MB" in out
