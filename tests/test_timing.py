"""Schedule simulator tests: pipelining vs. materialization semantics."""

import pytest

from repro.core.client import XDB
from repro.core.plan import DelegationPlan, Movement, Task
from repro.core import timing
from repro.relational import algebra
from repro.relational.schema import Field, Schema
from repro.sql.types import INTEGER
from repro.workloads.pandemic import CHO_QUERY, build_pandemic_deployment


def test_schedule_produces_positive_times():
    deployment = build_pandemic_deployment(
        citizens=150, vaccinations=200, measurements=300
    )
    report = XDB(deployment).submit(CHO_QUERY)
    schedule = report.schedule
    assert schedule.total_seconds > 0
    assert schedule.execution_seconds > 0
    assert schedule.result_transfer_seconds > 0
    assert schedule.total_seconds == pytest.approx(
        schedule.execution_seconds + schedule.result_transfer_seconds
    )
    assert len(schedule.tasks) == report.plan.task_count()


def test_tasks_start_after_explicit_producers_finish():
    deployment = build_pandemic_deployment(
        citizens=150, vaccinations=200, measurements=300
    )
    report = XDB(deployment).submit(CHO_QUERY)
    plan, schedule = report.plan, report.schedule
    for edge in plan.edges:
        producer = schedule.tasks[edge.producer_id]
        consumer = schedule.tasks[edge.consumer_id]
        if edge.movement is Movement.EXPLICIT:
            assert consumer.start >= producer.finish
        else:
            # Pipelined: may start almost together...
            assert consumer.start <= producer.finish
            # ...but cannot finish before its stream finishes arriving.
            assert consumer.finish >= producer.finish


def test_critical_path_bounds_total():
    deployment = build_pandemic_deployment(
        citizens=150, vaccinations=200, measurements=300
    )
    report = XDB(deployment).submit(CHO_QUERY)
    schedule = report.schedule
    assert schedule.execution_seconds == pytest.approx(
        schedule.critical_finish()
    )
    # Pipelining means total is below the serial sum of parts.
    serial = sum(t.proc_seconds for t in schedule.tasks.values())
    assert schedule.execution_seconds <= serial + 1.0


def test_attribute_edge_stats_sums_ledger_windows():
    deployment = build_pandemic_deployment(
        citizens=150, vaccinations=200, measurements=300
    )
    xdb = XDB(deployment)
    report = xdb.submit(CHO_QUERY)
    total_edge_bytes = sum(e.moved_bytes for e in report.plan.edges)
    fdw_bytes = report.transfers.bytes_for_tag("fdw")
    assert total_edge_bytes == fdw_bytes


def test_processing_seconds_for_rows_scales():
    deployment = build_pandemic_deployment(
        citizens=100, vaccinations=100, measurements=100
    )
    connector = deployment.connector("CDB")
    small = timing.processing_seconds_for_rows(connector, 1_000, 100)
    large = timing.processing_seconds_for_rows(connector, 100_000, 10_000)
    assert large > small


def test_jdbc_processing_penalty():
    deployment = build_pandemic_deployment(
        citizens=100, vaccinations=100, measurements=100
    )
    connector = deployment.connector("CDB")
    binary = timing.processing_seconds_for_rows(
        connector, 10_000, 10_000, protocol="binary"
    )
    jdbc = timing.processing_seconds_for_rows(
        connector, 10_000, 10_000, protocol="jdbc"
    )
    assert jdbc > binary


def test_explicit_edges_serialize_longer_than_implicit():
    """Same plan, flipping one edge implicit→explicit, must not finish
    earlier (materialization waits for the full producer output)."""
    deployment = build_pandemic_deployment(
        citizens=200, vaccinations=300, measurements=400
    )
    xdb = XDB(deployment)
    report = xdb.submit(CHO_QUERY, cleanup=False)
    try:
        deployed = report.deployed
        baseline = timing.simulate_schedule(
            deployed,
            xdb.connectors,
            deployment.network,
            deployment.client_node,
            result_bytes=1000,
        )
        implicit_edges = [
            e
            for e in deployed.plan.edges
            if e.movement is Movement.IMPLICIT
        ]
        if implicit_edges:
            implicit_edges[0].movement = Movement.EXPLICIT
            flipped = timing.simulate_schedule(
                deployed,
                xdb.connectors,
                deployment.network,
                deployment.client_node,
                result_bytes=1000,
            )
            assert flipped.execution_seconds >= (
                baseline.execution_seconds - 1e-9
            )
            implicit_edges[0].movement = Movement.IMPLICIT
    finally:
        report.deployed.cleanup()
