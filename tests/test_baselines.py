"""Baseline system tests: decomposition, equivalence, defining behaviors."""

import pytest

from repro.baselines.garlic import GarlicSystem
from repro.baselines.presto import PrestoSystem
from repro.baselines.sclera import ScleraSystem
from repro.workloads.tpch import query

from conftest import assert_same_rows


@pytest.fixture(scope="module")
def systems(tpch_tiny):
    deployment, _ = tpch_tiny
    return {
        "garlic": GarlicSystem(deployment),
        "presto": PrestoSystem(deployment, workers=4),
        "sclera": ScleraSystem(deployment),
    }


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q10"])
@pytest.mark.parametrize("system_key", ["garlic", "presto", "sclera"])
def test_baselines_match_ground_truth(
    systems, tpch_tiny_ground_truth, name, system_key
):
    report = systems[system_key].run(query(name))
    truth = tpch_tiny_ground_truth.execute(query(name))
    assert_same_rows(report.result.rows, truth.rows)


def test_garlic_pushes_colocated_joins(systems):
    # TD1 co-locates customer+orders on db2: Garlic pushes their join,
    # so Q3 decomposes into exactly 2 subqueries (db1: lineitem, db2: c⋈o).
    report = systems["garlic"].run(query("Q3"))
    assert report.subquery_count == 2


def test_presto_pushes_per_table_only(systems):
    # Presto fetches each table separately: 3 subqueries for Q3.
    report = systems["presto"].run(query("Q3"))
    assert report.subquery_count == 3


def test_presto_transfers_more_bytes_than_garlic(tpch_tiny, systems):
    deployment, _ = tpch_tiny
    mark = len(deployment.network.log)
    systems["garlic"].run(query("Q3"))
    garlic_bytes = sum(
        r.payload_bytes for r in deployment.network.log[mark:]
    )
    mark = len(deployment.network.log)
    systems["presto"].run(query("Q3"))
    presto_bytes = sum(
        r.payload_bytes for r in deployment.network.log[mark:]
    )
    assert presto_bytes > garlic_bytes


def test_mediator_transfer_dominates_processing(systems):
    # Fig. 1's shape: data movement is the bulk of MW execution time.
    report = systems["presto"].run(query("Q3"))
    assert report.transfer_seconds > report.processing_seconds


def test_presto_scaling_workers_shrinks_processing_not_transfers(tpch_tiny):
    deployment, _ = tpch_tiny
    two = PrestoSystem(deployment, workers=2).run(query("Q5"))
    ten = PrestoSystem(deployment, workers=10).run(query("Q5"))
    # Transfer time is unaffected by workers (Fig. 11's point)...
    assert ten.transfer_seconds == pytest.approx(
        two.transfer_seconds, rel=0.05
    )
    # ...while mediator-side processing shrinks.
    assert (
        ten.details["mediator_processing"]
        <= two.details["mediator_processing"] + 1e-9
    )
    # Total barely improves.
    assert ten.total_seconds >= two.total_seconds * 0.7


def test_sclera_relays_through_mediator(tpch_tiny):
    deployment, _ = tpch_tiny
    system = ScleraSystem(deployment)
    mark = len(deployment.network.log)
    system.run(query("Q3"))
    window = deployment.network.log[mark:]
    shipped = [r for r in window if r.tag.startswith("sclera-ship")]
    fetched = [r for r in window if r.tag.startswith("sclera-fetch")]
    assert shipped and fetched
    # Each relayed intermediate crosses the wire twice (in and out of
    # the mediator node).
    assert any(r.src == deployment.middleware_node for r in shipped)
    assert all(r.dst == deployment.middleware_node for r in fetched)


def test_sclera_all_inter_task_movements_explicit(tpch_tiny):
    deployment, _ = tpch_tiny
    from repro.core.catalog import GlobalCatalog
    from repro.core.finalize import PlanFinalizer
    from repro.core.logical import LogicalOptimizer
    from repro.core.plan import Movement
    from repro.sql.parser import parse_statement

    system = ScleraSystem(deployment)
    plan = system.optimizer.optimize(parse_statement(query("Q5")))
    annotation = system._annotate(plan)
    dplan = PlanFinalizer().finalize(plan, annotation)
    assert dplan.edges
    for edge in dplan.edges:
        assert edge.movement is Movement.EXPLICIT


def test_sclera_slower_than_mediators(systems):
    garlic = systems["garlic"].run(query("Q5"))
    sclera = systems["sclera"].run(query("Q5"))
    assert sclera.total_seconds > garlic.total_seconds


def test_baselines_clean_up_temp_state(tpch_tiny, systems):
    deployment, _ = tpch_tiny
    before = {
        name: set(deployment.database(name).catalog.names())
        for name in deployment.database_names()
    }
    systems["sclera"].run(query("Q3"))
    systems["garlic"].run(query("Q3"))
    after = {
        name: set(deployment.database(name).catalog.names())
        for name in deployment.database_names()
    }
    assert before == after


def test_mediator_keeps_intermediates_off_members(tpch_tiny, systems):
    """MW systems centralize: member DBMSes never exchange data."""
    deployment, _ = tpch_tiny
    mark = len(deployment.network.log)
    systems["presto"].run(query("Q5"))
    window = deployment.network.log[mark:]
    members = set(deployment.database_names())
    for record in window:
        if record.tag.startswith("mediator-fetch"):
            assert record.dst == deployment.middleware_node
        assert not (
            record.src in members
            and record.dst in members
            and record.payload_bytes > 1024
        )
