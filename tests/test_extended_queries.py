"""Extended TPC-H queries (Q1/Q6/Q12/Q14/Q19) across all systems."""

import pytest

from repro.baselines.garlic import GarlicSystem
from repro.baselines.presto import PrestoSystem
from repro.core.client import XDB
from repro.workloads.tpch import EXTENDED_QUERIES, query

from conftest import assert_same_rows


@pytest.fixture(scope="module")
def xdb(tpch_tiny):
    deployment, _ = tpch_tiny
    system = XDB(deployment)
    system.warm_metadata()
    return system


@pytest.mark.parametrize("name", sorted(EXTENDED_QUERIES))
def test_extended_queries_match_ground_truth(
    xdb, tpch_tiny_ground_truth, name
):
    report = xdb.submit(query(name))
    truth = tpch_tiny_ground_truth.execute(query(name))
    assert_same_rows(report.result.rows, truth.rows)


@pytest.mark.parametrize("name", ["Q1", "Q6"])
def test_single_table_queries_fully_delegated(xdb, name):
    """Q1/Q6 touch only lineitem: one task, zero inter-DBMS movement."""
    report = xdb.submit(query(name))
    assert report.plan.task_count() == 1
    assert not report.plan.edges
    assert report.transfers.bytes_for_tag("fdw") == 0


def test_q12_two_way_cross_database_join(xdb):
    report = xdb.submit(query("Q12"))
    assert report.plan.task_count() == 2


@pytest.mark.parametrize("name", ["Q1", "Q12", "Q19"])
def test_extended_queries_on_mediator_baselines(
    tpch_tiny, tpch_tiny_ground_truth, name
):
    deployment, _ = tpch_tiny
    truth = tpch_tiny_ground_truth.execute(query(name))
    garlic = GarlicSystem(deployment).run(query(name))
    assert_same_rows(garlic.result.rows, truth.rows)
    presto = PrestoSystem(deployment, workers=2).run(query(name))
    assert_same_rows(presto.result.rows, truth.rows)


def test_q19_disjunctive_predicate_returns_plausible_value(xdb):
    report = xdb.submit(query("Q19"))
    (value,) = report.result.rows[0]
    # Sum of revenues: None (no matches at tiny scale) or positive.
    assert value is None or value > 0


def test_query_lookup_covers_extended():
    assert query("q14") == EXTENDED_QUERIES["Q14"]
