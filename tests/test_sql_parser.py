"""Parser unit tests: statements, expressions, precedence, errors."""

import datetime

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_statement


# -- expressions ------------------------------------------------------------


def test_precedence_arithmetic_over_comparison():
    expr = parse_expression("a + b * 2 = c")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "="
    left = expr.left
    assert isinstance(left, ast.BinaryOp) and left.op == "+"
    assert isinstance(left.right, ast.BinaryOp) and left.right.op == "*"


def test_precedence_and_over_or():
    expr = parse_expression("a OR b AND c")
    assert expr.op == "OR"
    assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "AND"


def test_left_associativity_of_subtraction():
    expr = parse_expression("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.BinaryOp)
    assert isinstance(expr.left.left, ast.ColumnRef)
    assert expr.left.left.name == "a"


def test_not_binds_tighter_than_and():
    expr = parse_expression("NOT a AND b")
    assert expr.op == "AND"
    assert isinstance(expr.left, ast.UnaryOp) and expr.left.op == "NOT"


def test_not_folds_into_predicates():
    expr = parse_expression("NOT x LIKE 'a%'")
    assert isinstance(expr, ast.Like) and expr.negated


def test_between_and_binding():
    expr = parse_expression("x BETWEEN 1 AND 2 AND y = 3")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "AND"
    assert isinstance(expr.left, ast.Between)


def test_in_list_and_negation():
    expr = parse_expression("x NOT IN (1, 2, 3)")
    assert isinstance(expr, ast.InList) and expr.negated
    assert len(expr.items) == 3


def test_is_null_and_is_not_null():
    assert parse_expression("x IS NULL") == ast.IsNull(ast.ColumnRef("x"))
    assert parse_expression("x IS NOT NULL") == ast.IsNull(
        ast.ColumnRef("x"), negated=True
    )


def test_date_literal():
    expr = parse_expression("DATE '2021-06-15'")
    assert expr == ast.Literal(datetime.date(2021, 6, 15))


def test_bad_date_literal_raises():
    with pytest.raises(ParseError):
        parse_expression("DATE 'not-a-date'")


def test_interval_literal():
    expr = parse_expression("d + INTERVAL '3' MONTH")
    assert isinstance(expr.right, ast.IntervalLiteral)
    assert expr.right.amount == 3 and expr.right.unit == "MONTH"


def test_interval_plural_unit_normalized():
    expr = parse_expression("d - INTERVAL '2' DAYS")
    assert expr.right.unit == "DAY"


def test_case_when():
    expr = parse_expression(
        "CASE WHEN a = 1 THEN 'x' WHEN a = 2 THEN 'y' ELSE 'z' END"
    )
    assert isinstance(expr, ast.CaseWhen)
    assert len(expr.whens) == 2
    assert expr.else_result == ast.Literal("z")


def test_case_without_when_raises():
    with pytest.raises(ParseError):
        parse_expression("CASE ELSE 1 END")


def test_extract():
    expr = parse_expression("EXTRACT(YEAR FROM d)")
    assert expr == ast.Extract("YEAR", ast.ColumnRef("d"))


def test_extract_bad_field_raises():
    with pytest.raises(ParseError):
        parse_expression("EXTRACT(CENTURY FROM d)")


def test_cast():
    expr = parse_expression("CAST(x AS VARCHAR(10))")
    assert isinstance(expr, ast.Cast)
    assert expr.target.length == 10


def test_aggregate_calls():
    assert parse_expression("COUNT(*)") == ast.FunctionCall(
        "COUNT", (ast.Star(),)
    )
    distinct = parse_expression("COUNT(DISTINCT x)")
    assert distinct.distinct


def test_qualified_column():
    assert parse_expression("t.col") == ast.ColumnRef("col", "t")


def test_unary_minus_and_plus():
    assert parse_expression("-x") == ast.UnaryOp("-", ast.ColumnRef("x"))
    assert parse_expression("+x") == ast.ColumnRef("x")


def test_string_concat_operator():
    expr = parse_expression("a || b || c")
    assert expr.op == "||"


# -- SELECT -------------------------------------------------------------------


def test_select_minimal():
    stmt = parse_statement("SELECT a FROM t")
    assert isinstance(stmt, ast.Select)
    assert stmt.items[0].expr == ast.ColumnRef("a")
    assert stmt.from_items[0] == ast.TableRef(("t",))


def test_select_star_and_qualified_star():
    stmt = parse_statement("SELECT *, t.* FROM t")
    assert stmt.items[0].expr == ast.Star()
    assert stmt.items[1].expr == ast.Star("t")


def test_alias_forms():
    stmt = parse_statement("SELECT a AS x, b y, c AS 'z' FROM t")
    assert [i.alias for i in stmt.items] == ["x", "y", "z"]


def test_table_alias_with_and_without_as():
    stmt = parse_statement("SELECT 1 AS one FROM t1 AS a, t2 b")
    assert stmt.from_items[0].alias == "a"
    assert stmt.from_items[1].alias == "b"


def test_qualified_table_name():
    stmt = parse_statement("SELECT x AS c FROM CDB.Citizen")
    assert stmt.from_items[0].parts == ("CDB", "Citizen")


def test_explicit_joins():
    stmt = parse_statement(
        "SELECT 1 AS one FROM a JOIN b ON a.k = b.k "
        "LEFT JOIN c ON b.x = c.x CROSS JOIN d"
    )
    join = stmt.from_items[0]
    assert isinstance(join, ast.Join) and join.kind == "CROSS"
    assert join.left.kind == "LEFT"
    assert join.left.left.kind == "INNER"


def test_derived_table():
    stmt = parse_statement(
        "SELECT s.x FROM (SELECT a AS x FROM t) AS s"
    )
    derived = stmt.from_items[0]
    assert isinstance(derived, ast.DerivedTable)
    assert derived.alias == "s"


def test_group_by_having_order_limit():
    stmt = parse_statement(
        "SELECT k, COUNT(*) AS n FROM t GROUP BY k HAVING COUNT(*) > 1 "
        "ORDER BY n DESC, k LIMIT 5"
    )
    assert len(stmt.group_by) == 1
    assert stmt.having is not None
    assert stmt.order_by[0].ascending is False
    assert stmt.order_by[1].ascending is True
    assert stmt.limit == 5


def test_select_distinct():
    assert parse_statement("SELECT DISTINCT a FROM t").distinct


def test_where_clause():
    stmt = parse_statement("SELECT a FROM t WHERE a > 1 AND b < 2")
    assert stmt.where.op == "AND"


def test_trailing_semicolon_allowed():
    parse_statement("SELECT a FROM t;")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_statement("SELECT a FROM t 123")


# -- DDL ----------------------------------------------------------------------


def test_create_view():
    stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
    assert isinstance(stmt, ast.CreateView)
    assert not stmt.or_replace


def test_create_or_replace_view():
    stmt = parse_statement("CREATE OR REPLACE VIEW v AS SELECT a FROM t")
    assert stmt.or_replace


def test_create_foreign_table_postgres():
    stmt = parse_statement(
        "CREATE FOREIGN TABLE ft (a INT, b VARCHAR(5)) SERVER remote "
        "OPTIONS (table_name 'obj')"
    )
    assert isinstance(stmt, ast.CreateForeignTable)
    assert stmt.server == "remote"
    assert stmt.remote_object == "obj"
    assert stmt.syntax == "postgres"


def test_create_federated_table_mariadb():
    stmt = parse_statement(
        "CREATE TABLE ft (a INT) ENGINE=FEDERATED CONNECTION='srv/obj'"
    )
    assert isinstance(stmt, ast.CreateForeignTable)
    assert (stmt.server, stmt.remote_object) == ("srv", "obj")
    assert stmt.syntax == "mariadb"


def test_create_external_table_hive():
    stmt = parse_statement(
        "CREATE EXTERNAL TABLE ft (a INT) STORED BY 'srv' "
        "OPTIONS (table_name 'obj')"
    )
    assert isinstance(stmt, ast.CreateForeignTable)
    assert stmt.syntax == "hive"


def test_bad_federated_connection_string():
    with pytest.raises(ParseError):
        parse_statement(
            "CREATE TABLE ft (a INT) ENGINE=FEDERATED CONNECTION='nope'"
        )


def test_create_table_and_temporary():
    stmt = parse_statement("CREATE TEMPORARY TABLE t (a INT, b DATE)")
    assert isinstance(stmt, ast.CreateTable) and stmt.temporary
    assert stmt.columns[1].type.kind.value == "date"


def test_create_table_as():
    stmt = parse_statement("CREATE TABLE t AS SELECT a FROM s")
    assert isinstance(stmt, ast.CreateTableAs)


def test_drop_variants():
    assert parse_statement("DROP TABLE t").kind == "TABLE"
    assert parse_statement("DROP VIEW v").kind == "VIEW"
    assert parse_statement("DROP FOREIGN TABLE f").kind == "FOREIGN TABLE"
    assert parse_statement("DROP EXTERNAL TABLE f").kind == "FOREIGN TABLE"
    assert parse_statement("DROP TABLE IF EXISTS t").if_exists


def test_insert_values():
    stmt = parse_statement(
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
    )
    assert isinstance(stmt, ast.Insert)
    assert stmt.columns == ("a", "b")
    assert len(stmt.rows) == 2


def test_explain():
    stmt = parse_statement("EXPLAIN SELECT a FROM t")
    assert isinstance(stmt, ast.Explain)


def test_error_reports_location():
    with pytest.raises(ParseError) as excinfo:
        parse_statement("SELECT FROM t")
    assert "line 1" in str(excinfo.value)
