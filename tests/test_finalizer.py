"""Plan finalization tests: task grouping, placeholders, renames."""

import pytest

from repro.core.annotate import PlanAnnotator
from repro.core.catalog import GlobalCatalog
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.plan import Movement
from repro.relational import algebra
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.types import INTEGER, varchar


def finalize(deployment, sql):
    catalog = GlobalCatalog(deployment.connectors)
    optimizer = LogicalOptimizer(catalog)
    plan = optimizer.optimize(parse_statement(sql))
    annotator = PlanAnnotator(deployment.connectors, deployment.network)
    annotation = annotator.annotate(plan)
    return PlanFinalizer().finalize(plan, annotation)


def test_single_database_query_is_one_task(two_db_deployment):
    dplan = finalize(
        two_db_deployment, "SELECT name FROM users WHERE id > 2"
    )
    assert dplan.task_count() == 1
    assert not dplan.edges
    assert dplan.root.annotation == "A"


def test_cross_database_join_creates_two_tasks(two_db_deployment):
    dplan = finalize(
        two_db_deployment,
        "SELECT u.name, COUNT(*) AS n FROM users u, events e "
        "WHERE u.id = e.user_id GROUP BY u.name",
    )
    assert dplan.task_count() == 2
    (edge,) = dplan.edges
    producer = dplan.tasks[edge.producer_id]
    consumer = dplan.tasks[edge.consumer_id]
    assert {producer.annotation, consumer.annotation} == {"A", "B"}
    assert dplan.root is consumer


def test_placeholder_wiring(two_db_deployment):
    dplan = finalize(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    (edge,) = dplan.edges
    consumer = dplan.tasks[edge.consumer_id]
    placeholders = consumer.placeholders()
    assert len(placeholders) == 1
    assert placeholders[0].binding == edge.placeholder
    # Placeholder schema mirrors the producer's output.
    producer = dplan.tasks[edge.producer_id]
    assert placeholders[0].schema.names == producer.expr.schema.names


def test_placeholder_estimated_rows_propagated(two_db_deployment):
    dplan = finalize(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    (edge,) = dplan.edges
    consumer = dplan.tasks[edge.consumer_id]
    (placeholder,) = consumer.placeholders()
    assert placeholder.estimated_rows and placeholder.estimated_rows > 0


def test_operators_grouped_maximally(two_db_deployment):
    # Aggregation over the cross join stays fused with the root task.
    dplan = finalize(
        two_db_deployment,
        "SELECT u.name, SUM(e.weight) AS s FROM users u, events e "
        "WHERE u.id = e.user_id GROUP BY u.name",
    )
    assert dplan.task_count() == 2
    root = dplan.root
    kinds = {type(node).__name__ for node in _walk(root.expr)}
    assert "Aggregate" in kinds and "Join" in kinds


def test_notation_render(two_db_deployment):
    dplan = finalize(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    text = dplan.describe()
    assert "⋈" in text
    assert "--" in text  # edge arrow with movement annotation


def test_duplicate_names_normalized_with_project(two_db_deployment):
    """Producer outputs with duplicate column names get normalized."""
    # users.id (A) joined against a second table with column `id` (B).
    two_db_deployment.load_table(
        "B",
        "badges",
        Schema([Field("id", INTEGER), Field("label", varchar(6))]),
        [(i, f"b{i}") for i in range(1, 21)],
    )
    dplan = finalize(
        two_db_deployment,
        "SELECT u.id, b.id, e.kind FROM users u, badges b, events e "
        "WHERE u.id = b.id AND u.id = e.user_id",
    )
    # Whatever the grouping, every producer task must expose unique names.
    for edge in dplan.edges:
        producer = dplan.tasks[edge.producer_id]
        names = [n.lower() for n in producer.expr.schema.names]
        assert len(set(names)) == len(names)
    # And the full query still runs (exercised end-to-end elsewhere).


def test_movement_annotations_preserved(two_db_deployment):
    dplan = finalize(
        two_db_deployment,
        "SELECT u.name FROM users u, events e WHERE u.id = e.user_id",
    )
    (edge,) = dplan.edges
    assert edge.movement in (Movement.IMPLICIT, Movement.EXPLICIT)


def test_topological_order_producers_first(tpch_tiny):
    deployment, _ = tpch_tiny
    from repro.workloads.tpch import query

    dplan = finalize(deployment, query("Q5"))
    seen = set()
    for task in dplan.topological():
        for edge in dplan.in_edges(task):
            assert edge.producer_id in seen
        seen.add(task.task_id)


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)
