"""Expression compiler tests: evaluation, 3VL, functions, casts."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindError, ExecutionError, TypeCheckError
from repro.relational.expressions import (
    add_months,
    compile_expression,
    compile_predicate,
    like_matches,
    shift_date,
    sql_and,
    sql_not,
    sql_or,
)
from repro.relational.schema import Field, Schema
from repro.sql.parser import parse_expression
from repro.sql.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    TypeKind,
    varchar,
)

SCHEMA = Schema(
    [
        Field("a", INTEGER, "t"),
        Field("b", DOUBLE, "t"),
        Field("s", varchar(10), "t"),
        Field("d", DATE, "t"),
        Field("flag", BOOLEAN, "t"),
    ]
)

ROW = (7, 2.5, "hello", datetime.date(2021, 3, 14), True)
NULL_ROW = (None, None, None, None, None)


def evaluate(text, row=ROW):
    return compile_expression(parse_expression(text), SCHEMA)(row)


# -- basic evaluation ---------------------------------------------------------


def test_column_access_qualified_and_unqualified():
    assert evaluate("a") == 7
    assert evaluate("t.a") == 7


def test_arithmetic():
    assert evaluate("a + 3") == 10
    assert evaluate("a * b") == 17.5
    assert evaluate("a - 10") == -3
    assert evaluate("a % 4") == 3


def test_division_is_float_and_zero_raises():
    assert evaluate("a / 2") == 3.5
    with pytest.raises(ExecutionError):
        evaluate("a / 0")


def test_comparisons():
    assert evaluate("a = 7") is True
    assert evaluate("a <> 7") is False
    assert evaluate("b >= 2.5") is True
    assert evaluate("s < 'world'") is True


def test_concat():
    assert evaluate("s || '!'") == "hello!"


def test_unary_minus():
    assert evaluate("-a") == -7


def test_case_when():
    assert evaluate("CASE WHEN a > 5 THEN 'big' ELSE 'small' END") == "big"
    assert (
        evaluate("CASE WHEN a > 50 THEN 'big' END") is None
    )  # no ELSE -> NULL


def test_between_and_in():
    assert evaluate("a BETWEEN 5 AND 9") is True
    assert evaluate("a NOT BETWEEN 5 AND 9") is False
    assert evaluate("a IN (1, 7, 9)") is True
    assert evaluate("a NOT IN (1, 7, 9)") is False


def test_like():
    assert evaluate("s LIKE 'he%'") is True
    assert evaluate("s LIKE 'h_llo'") is True
    assert evaluate("s NOT LIKE 'x%'") is True
    assert evaluate("s LIKE '%ell%'") is True


def test_like_special_chars_escaped():
    assert like_matches("a.b", "a.b") is True
    assert like_matches("axb", "a.b") is False  # '.' is literal


def test_extract():
    assert evaluate("EXTRACT(YEAR FROM d)") == 2021
    assert evaluate("EXTRACT(MONTH FROM d)") == 3
    assert evaluate("EXTRACT(DAY FROM d)") == 14


def test_date_interval_arithmetic():
    assert evaluate("d + INTERVAL '10' DAY") == datetime.date(2021, 3, 24)
    assert evaluate("d - INTERVAL '1' MONTH") == datetime.date(2021, 2, 14)
    assert evaluate("d + INTERVAL '2' YEAR") == datetime.date(2023, 3, 14)


def test_add_months_clamps_day():
    assert add_months(datetime.date(2021, 1, 31), 1) == datetime.date(
        2021, 2, 28
    )
    assert add_months(datetime.date(2020, 1, 31), 1) == datetime.date(
        2020, 2, 29
    )


def test_shift_date_rejects_bad_unit():
    with pytest.raises(ExecutionError):
        shift_date(datetime.date(2020, 1, 1), 1, "WEEK")


def test_is_null():
    assert evaluate("a IS NULL") is False
    assert evaluate("a IS NOT NULL") is True
    assert evaluate("a IS NULL", NULL_ROW) is True


# -- three-valued logic ----------------------------------------------------------


def test_kleene_tables():
    assert sql_and(True, None) is None
    assert sql_and(False, None) is False
    assert sql_or(True, None) is True
    assert sql_or(False, None) is None
    assert sql_not(None) is None


def test_null_propagation_in_comparisons():
    assert evaluate("a = 7", NULL_ROW) is None
    assert evaluate("a + 1", NULL_ROW) is None
    assert evaluate("s LIKE 'x%'", NULL_ROW) is None
    assert evaluate("a BETWEEN 1 AND 2", NULL_ROW) is None


def test_null_in_list_semantics():
    # 7 IN (1, NULL) is NULL (unknown); 7 IN (7, NULL) is TRUE.
    assert evaluate("a IN (1, NULL)") is None
    assert evaluate("a IN (7, NULL)") is True
    assert evaluate("a NOT IN (1, NULL)") is None


def test_predicate_treats_null_as_false():
    predicate = compile_predicate(parse_expression("a > 5"), SCHEMA)
    assert predicate(ROW) is True
    assert predicate(NULL_ROW) is False


def test_predicate_requires_boolean():
    with pytest.raises(TypeCheckError):
        compile_predicate(parse_expression("a + 1"), SCHEMA)


# -- scalar functions -------------------------------------------------------------


def test_scalar_functions():
    assert evaluate("UPPER(s)") == "HELLO"
    assert evaluate("LOWER('ABC')") == "abc"
    assert evaluate("LENGTH(s)") == 5
    assert evaluate("ABS(-3)") == 3
    assert evaluate("ROUND(b)") == 2.0
    assert evaluate("ROUND(2.345, 2)") == 2.35
    assert evaluate("COALESCE(NULL, a, 1)") == 7
    assert evaluate("SUBSTR(s, 2, 3)") == "ell"
    assert evaluate("CONCAT(s, '-', s)") == "hello-hello"


def test_functions_propagate_null():
    assert evaluate("UPPER(s)", NULL_ROW) is None
    assert evaluate("COALESCE(s, 'x')", NULL_ROW) == "x"


def test_unknown_function_raises():
    with pytest.raises(BindError):
        evaluate("FROBNICATE(a)")


def test_wrong_arity_raises():
    with pytest.raises(BindError):
        evaluate("LENGTH(s, s)")


def test_aggregate_in_scalar_context_raises():
    with pytest.raises(BindError):
        evaluate("SUM(a)")


# -- casts ----------------------------------------------------------------------


def test_casts():
    assert evaluate("CAST(b AS INTEGER)") == 2
    assert evaluate("CAST(a AS DOUBLE)") == 7.0
    assert evaluate("CAST(a AS VARCHAR(1))") == "7"
    assert evaluate("CAST('2020-05-06' AS DATE)") == datetime.date(2020, 5, 6)
    assert evaluate("CAST('true' AS BOOLEAN)") is True
    assert evaluate("CAST(0 AS BOOLEAN)") is False


def test_cast_failure_raises_execution_error():
    with pytest.raises(ExecutionError):
        evaluate("CAST('abc' AS INTEGER)")


# -- binding / typing errors ---------------------------------------------------------


def test_unknown_column():
    with pytest.raises(BindError):
        evaluate("nope")


def test_type_mismatch_comparison():
    with pytest.raises(TypeCheckError):
        evaluate("d > 5")


def test_arithmetic_on_text_rejected():
    with pytest.raises(TypeCheckError):
        evaluate("s + 1")


def test_interval_on_non_date_rejected():
    with pytest.raises(TypeCheckError):
        evaluate("a + INTERVAL '1' DAY")


def test_result_type_inference():
    compiled = compile_expression(parse_expression("a + 1"), SCHEMA)
    assert compiled.type.kind is TypeKind.INTEGER
    compiled = compile_expression(parse_expression("a / 2"), SCHEMA)
    assert compiled.type.kind is TypeKind.DOUBLE
    compiled = compile_expression(parse_expression("a > 1"), SCHEMA)
    assert compiled.type.kind is TypeKind.BOOLEAN


# -- property-based 3VL laws ------------------------------------------------------

TRI = st.sampled_from([True, False, None])


@given(TRI, TRI)
@settings(max_examples=100, deadline=None)
def test_de_morgan_holds_under_3vl(p, q):
    assert sql_not(sql_and(p, q)) == sql_or(sql_not(p), sql_not(q))
    assert sql_not(sql_or(p, q)) == sql_and(sql_not(p), sql_not(q))


@given(TRI, TRI, TRI)
@settings(max_examples=100, deadline=None)
def test_and_or_associativity(p, q, r):
    assert sql_and(p, sql_and(q, r)) == sql_and(sql_and(p, q), r)
    assert sql_or(p, sql_or(q, r)) == sql_or(sql_or(p, q), r)
