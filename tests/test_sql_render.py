"""Renderer tests, including the parse∘render round-trip invariant."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast
from repro.sql.parser import parse_expression, parse_statement
from repro.sql.render import render

ROUNDTRIP_STATEMENTS = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t WHERE a > 1 ORDER BY x DESC LIMIT 3",
    "SELECT t.a, s.b FROM t AS t, s AS s WHERE t.k = s.k",
    "SELECT a FROM t JOIN s ON t.k = s.k LEFT JOIN u ON s.x = u.x",
    "SELECT a FROM t CROSS JOIN s",
    "SELECT x.a FROM (SELECT a FROM t) AS x",
    "SELECT k, COUNT(*) AS n FROM t GROUP BY k HAVING COUNT(*) > 2",
    "SELECT SUM(a * (1 - b)) AS rev FROM t",
    "SELECT CASE WHEN a BETWEEN 1 AND 2 THEN 'lo' ELSE 'hi' END AS c FROM t",
    "SELECT EXTRACT(YEAR FROM d) AS y FROM t",
    "SELECT CAST(a AS DOUBLE) AS x FROM t",
    "SELECT a FROM t WHERE b IN (1, 2, 3) AND c NOT LIKE 'x%'",
    "SELECT a FROM t WHERE d = DATE '2020-02-29'",
    "SELECT a FROM t WHERE d < DATE '2020-01-01' + INTERVAL '3' MONTH",
    "SELECT COUNT(DISTINCT a) AS n FROM t",
    "CREATE VIEW v AS SELECT a FROM t",
    "CREATE OR REPLACE VIEW v AS SELECT a FROM t WHERE a IS NOT NULL",
    "CREATE TABLE t (a INTEGER, b VARCHAR(10), c DATE)",
    "CREATE TEMPORARY TABLE t AS SELECT a FROM s",
    "CREATE FOREIGN TABLE f (a INTEGER) SERVER srv "
    "OPTIONS (table_name 'obj')",
    "DROP TABLE IF EXISTS t",
    "DROP VIEW v",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y')",
    "EXPLAIN SELECT a FROM t WHERE a > 0",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
def test_statement_roundtrip(sql):
    first = parse_statement(sql)
    text = render(first)
    second = parse_statement(text)
    assert first == second, text


def test_identifier_quoting_only_when_needed():
    assert render(ast.ColumnRef("plain_name")) == "plain_name"
    assert render(ast.ColumnRef("weird name")) == '"weird name"'
    assert render(ast.ColumnRef("select")) == '"select"'
    assert render(ast.ColumnRef("1starts_with_digit")) == (
        '"1starts_with_digit"'
    )


def test_string_literal_escaping():
    assert render(ast.Literal("don't")) == "'don''t'"


def test_date_literal_rendering():
    assert render(ast.Literal(datetime.date(2021, 1, 2))) == (
        "DATE '2021-01-02'"
    )


def test_boolean_and_null_literals():
    assert render(ast.Literal(True)) == "TRUE"
    assert render(ast.Literal(None)) == "NULL"


def test_precedence_preserved_without_over_parenthesizing():
    text = render(parse_expression("a + b * c"))
    assert text == "a + b * c"
    text = render(parse_expression("(a + b) * c"))
    assert text == "(a + b) * c"


def test_right_associative_grouping_preserved():
    expr = parse_expression("a - (b - c)")
    assert parse_expression(render(expr)) == expr
    assert "(" in render(expr)


# -- property-based round-trips -------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "col1", "val"])


@st.composite
def expressions(draw, depth=3):
    if depth == 0:
        return draw(
            st.one_of(
                st.builds(ast.ColumnRef, _names),
                st.builds(
                    ast.Literal,
                    st.one_of(
                        st.integers(-1000, 1000),
                        st.text(
                            alphabet="abc xyz",
                            max_size=6,
                        ),
                        st.none(),
                        st.booleans(),
                    ),
                ),
            )
        )
    sub = expressions(depth=depth - 1)
    return draw(
        st.one_of(
            st.builds(
                ast.BinaryOp,
                st.sampled_from(["+", "-", "*", "=", "<", "AND", "OR"]),
                sub,
                sub,
            ),
            st.builds(ast.UnaryOp, st.just("NOT"), sub),
            st.builds(ast.IsNull, sub, st.booleans()),
            st.builds(
                ast.Between, sub, sub, sub, st.booleans()
            ),
            st.builds(
                ast.InList,
                sub,
                st.tuples(sub, sub),
                st.booleans(),
            ),
            sub,
        )
    )


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_expression_roundtrip_property(expr):
    # The parser normalizes NOT over negatable predicates, so round-trip
    # structural equality holds after one normalization pass: rendering
    # and re-parsing must be idempotent from the first re-parse onward.
    once = parse_expression(render(expr))
    twice = parse_expression(render(once))
    assert once == twice
