"""Logical algebra node tests: schemas, rewriting support, helpers."""

import pytest

from repro.errors import BindError, TypeCheckError
from repro.relational import algebra
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.sql.types import DOUBLE, INTEGER, TypeKind, varchar

T = Schema([Field("a", INTEGER), Field("b", DOUBLE), Field("s", varchar(8))])
U = Schema([Field("a", INTEGER), Field("w", INTEGER)])


def scan(table="t", binding=None, schema=T, db="DB"):
    return algebra.Scan(table, binding or table, schema, source_db=db)


def test_scan_requalifies_schema():
    node = scan(binding="x")
    assert all(f.relation == "x" for f in node.schema)


def test_scan_placeholder_keeps_qualifiers():
    mixed = Schema([Field("a", INTEGER, "t"), Field("w", INTEGER, "u")])
    node = algebra.Scan(
        "ph", "xin", mixed, placeholder=True, requalify=False
    )
    assert node.schema.fields[0].relation == "t"
    assert node.label().startswith("Scan[?")


def test_filter_type_checks_predicate():
    node = scan()
    algebra.Filter(node, parse_expression("t.a > 1"))
    with pytest.raises(TypeCheckError):
        algebra.Filter(node, parse_expression("t.a + 1"))


def test_filter_unknown_column():
    with pytest.raises(BindError):
        algebra.Filter(scan(), parse_expression("nope = 1"))


def test_project_schema_and_qualifiers():
    node = algebra.Project(
        scan(),
        [
            algebra.ProjectItem(parse_expression("t.a"), "a"),
            algebra.ProjectItem(parse_expression("t.a + t.b"), "total"),
        ],
    )
    assert node.schema[0].relation == "t"  # bare ref keeps qualifier
    assert node.schema[1].relation is None  # computed column does not
    assert node.schema[1].type.kind is TypeKind.DOUBLE


def test_join_schema_concat_and_equi_keys():
    left = scan("t", "t", T)
    right = scan("u", "u", U)
    node = algebra.Join(left, right, parse_expression("t.a = u.a"))
    assert len(node.schema) == len(T) + len(U)
    keys = node.equi_keys()
    assert keys is not None and len(keys) == 1
    left_key, right_key = keys[0]
    assert (left_key.table, right_key.table) == ("t", "u")


def test_equi_keys_normalizes_sides():
    node = algebra.Join(
        scan("t", "t", T), scan("u", "u", U),
        parse_expression("u.a = t.a"),
    )
    left_key, right_key = node.equi_keys()[0]
    assert left_key.table == "t" and right_key.table == "u"


def test_equi_keys_none_for_non_equi():
    node = algebra.Join(
        scan("t", "t", T), scan("u", "u", U),
        parse_expression("t.a < u.a"),
    )
    assert node.equi_keys() is None


def test_join_rejects_bad_kind():
    with pytest.raises(BindError):
        algebra.Join(scan(), scan("u", "u", U), None, "FULL")


def test_aggregate_schema_types():
    node = algebra.Aggregate(
        scan(),
        [algebra.ProjectItem(parse_expression("t.s"), "s")],
        [
            algebra.AggregateSpec("COUNT", None, "n"),
            algebra.AggregateSpec("AVG", parse_expression("t.b"), "m"),
            algebra.AggregateSpec("SUM", parse_expression("t.a"), "total"),
        ],
    )
    kinds = {f.name: f.type.kind for f in node.schema}
    assert kinds["n"] is TypeKind.BIGINT
    assert kinds["m"] is TypeKind.DOUBLE
    assert kinds["total"] is TypeKind.BIGINT


def test_aggregate_spec_requires_arg():
    with pytest.raises(BindError):
        algebra.AggregateSpec("SUM", None, "x").result_type(T)


def test_alias_rebinds():
    node = algebra.Alias(scan(binding="inner"), "outer")
    assert all(f.relation == "outer" for f in node.schema)
    assert node.label() == "Alias[outer]"


def test_with_children_rebuilds():
    original = algebra.Filter(scan(), parse_expression("t.a > 1"))
    replacement = scan()
    rebuilt = original.with_children([replacement])
    assert rebuilt.child is replacement
    assert rebuilt.predicate == original.predicate


def test_leaves_traversal():
    join = algebra.Join(
        algebra.Filter(scan(), parse_expression("t.a > 0")),
        scan("u", "u", U),
        parse_expression("t.a = u.a"),
    )
    assert [leaf.table for leaf in join.leaves()] == ["t", "u"]


def test_pretty_includes_all_nodes():
    node = algebra.Limit(
        algebra.Sort(
            algebra.Project(
                scan(), [algebra.ProjectItem(parse_expression("t.a"), "a")]
            ),
            [algebra.SortKey(parse_expression("a"), False)],
        ),
        5,
    )
    text = node.pretty()
    for token in ("Limit[5]", "Sort[", "Project[", "Scan["):
        assert token in text


def test_conjuncts_and_conjoin_helpers():
    expr = parse_expression("a = 1 AND b = 2 AND c = 3")
    parts = ast.conjuncts(expr)
    assert len(parts) == 3
    rebuilt = ast.conjoin(parts)
    assert ast.conjuncts(rebuilt) == parts
    assert ast.conjoin([]) is None
    assert ast.conjuncts(None) == []


def test_column_refs_and_referenced_tables():
    expr = parse_expression("t.a + u.w > t.b")
    refs = ast.column_refs(expr)
    assert [r.name for r in refs] == ["a", "w", "b"]
    assert ast.referenced_tables(expr) == ["t", "u"]
