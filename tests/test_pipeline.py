"""The re-enterable planning pipeline: stages, re-entry, labels.

``XDB.submit`` used to own a monolithic planning block; these tests pin
the extracted :class:`~repro.core.pipeline.PlanPipeline` — stage
sequencing, re-entry at every stage, label plumbing, and the phase /
span parity the reports were already asserting indirectly.
"""

import pytest

from repro.core.client import XDB, RecoveryReport
from repro.core.pipeline import STAGES, PlanPipeline, _stage_index
from repro.errors import OptimizerError
from repro.feedback import qerror
from repro.sql import ast
from repro.sql.parser import parse_statement

from conftest import assert_same_rows

JOIN_QUERY = """
    SELECT u.name, SUM(e.weight) AS total
    FROM users u, events e
    WHERE u.id = e.user_id AND e.kind = 'login'
    GROUP BY u.name
    ORDER BY total DESC, u.name
"""


def test_stage_order_is_the_paper_pipeline():
    assert STAGES == (
        "parse",
        "catalog",
        "optimize",
        "annotate",
        "finalize",
        "delegate",
        "execute",
    )
    assert _stage_index("parse") < _stage_index("optimize")
    assert _stage_index("annotate") < _stage_index("delegate")


def test_unknown_stage_raises_structured_error():
    with pytest.raises(OptimizerError, match="unknown pipeline stage"):
        _stage_index("reticulate")


def test_label_of_sql_text_is_identity():
    assert PlanPipeline.label_of(JOIN_QUERY) is JOIN_QUERY


def test_label_of_ast_renders_sql():
    select = parse_statement("SELECT u.id FROM users u")
    label = PlanPipeline.label_of(select)
    assert label != "<ast>"
    assert "users" in label.lower()


def test_ast_submission_context_carries_rendered_label(two_db_deployment):
    xdb = XDB(two_db_deployment)
    select = parse_statement(JOIN_QUERY)
    report = xdb.submit(select)
    assert report.context.label != "<ast>"
    assert "users" in report.context.label.lower()


def test_plan_offline_runs_every_stage(two_db_deployment):
    xdb = XDB(two_db_deployment)
    state = xdb.pipeline.new_state(JOIN_QUERY, budget=0)
    xdb.pipeline.plan_offline(state)
    assert state.select is not None
    assert state.logical_plan is not None
    assert state.annotation is not None
    assert state.dplan is not None
    assert state.stage == "delegate"


@pytest.mark.parametrize("entry", ["parse", "catalog", "optimize"])
def test_plan_offline_reenters_at_stage(two_db_deployment, entry):
    """Resetting ``state.stage`` re-runs that stage and everything after."""
    xdb = XDB(two_db_deployment)
    state = xdb.pipeline.new_state(JOIN_QUERY, budget=0)
    xdb.pipeline.plan_offline(state)
    first_plan = state.dplan
    state.stage = entry
    xdb.pipeline.plan_offline(state)
    assert state.stage == "delegate"
    assert state.dplan is not None
    assert state.dplan is not first_plan  # the suffix actually re-ran


def test_reentry_at_annotate_keeps_logical_plan(two_db_deployment):
    """Annotate-stage re-entry (outage repair, adaptation) must not
    re-run the optimizer."""
    xdb = XDB(two_db_deployment)
    state = xdb.pipeline.new_state(JOIN_QUERY, budget=0)
    xdb.pipeline.plan_offline(state)
    logical = state.logical_plan
    state.stage = "annotate"
    state.dplan = None
    xdb.pipeline.plan_offline(state)
    assert state.logical_plan is logical
    assert state.dplan is not None


def test_reentry_at_optimize_skips_catalog_refresh(two_db_deployment):
    """Prepared-query replans re-enter at ``optimize`` and must trust
    the (drift-refreshed) catalog rather than re-introspecting."""
    xdb = XDB(two_db_deployment)
    xdb.warm_metadata()
    state = xdb.pipeline.new_state(JOIN_QUERY, budget=0)
    xdb.pipeline.plan_offline(state)
    xdb.pipeline.metadata_fresh = False  # a refresh would flip this back
    state.stage = "optimize"
    xdb.pipeline.plan_offline(state)
    assert xdb.pipeline.metadata_fresh is False


def test_submit_reports_the_four_phases(two_db_deployment):
    xdb = XDB(two_db_deployment)
    report = xdb.submit(JOIN_QUERY)
    assert set(report.phases) == {"prep", "lopt", "ann", "exec"}
    assert all(seconds >= 0.0 for seconds in report.phases.values())
    assert report.phases["exec"] > 0.0


def test_submit_span_tree_has_the_stage_steps(two_db_deployment):
    xdb = XDB(two_db_deployment)
    report = xdb.submit(JOIN_QUERY)
    names = {span.name for span in report.context.root.iter_spans()}
    for expected in ("prep", "lopt", "ann", "exec", "parse", "optimize",
                     "annotate", "finalize", "delegate", "execute",
                     "schedule"):
        assert expected in names, f"missing {expected} span"


def test_submit_parity_with_plan_query(two_db_deployment):
    """The traced and offline planning paths build the same plan.

    Compared by scan placement and task shape — execution attributes
    per-edge movement stats that the offline plan cannot have.
    """
    xdb = XDB(two_db_deployment)
    offline = xdb.plan_query(JOIN_QUERY)
    report = xdb.submit(JOIN_QUERY)
    assert XDB._placement(report.plan) == XDB._placement(offline)
    assert report.plan.task_count() == offline.task_count()
    assert report.plan.root.annotation == offline.root.annotation


def test_recovery_report_reexported_from_client():
    from repro.core import pipeline

    assert RecoveryReport is pipeline.RecoveryReport


def test_recovery_report_describe_variants():
    quiet = RecoveryReport()
    assert quiet.describe() == "no repair needed"

    adapted = RecoveryReport(
        adaptations=1, blown_estimates=[(1, 42.0)], pinned_tasks=[1]
    )
    text = adapted.describe()
    assert "mid-query adaptation" in text
    assert "42.0" in text and "[1]" in text

    infinite = RecoveryReport(
        adaptations=1,
        blown_estimates=[(2, qerror.INFINITE)],
        pinned_tasks=[2],
    )
    assert "inf" in infinite.describe()

    replanned = RecoveryReport(adaptations=1)
    assert "feedback replan" in replanned.describe()


def test_prepared_query_label_is_the_source_sql(two_db_deployment):
    xdb = XDB(two_db_deployment)
    with xdb.prepare(JOIN_QUERY) as prepared:
        report = prepared.execute()
        assert report.context.label == JOIN_QUERY
        assert report.context.label != "prepared"


def test_pipeline_results_match_direct_submission(two_db_deployment):
    xdb = XDB(two_db_deployment)
    first = xdb.submit(JOIN_QUERY)
    second = xdb.submit(JOIN_QUERY)
    assert_same_rows(first.result.rows, second.result.rows)


def test_replace_subtree_identity_semantics():
    from repro.core.pipeline import _replace_subtree
    from repro.relational import algebra
    from repro.relational.schema import Field, Schema
    from repro.sql.types import INTEGER

    schema = Schema([Field("id", INTEGER)])
    left = algebra.Scan(table="t1", binding="t1", schema=schema)
    right = algebra.Scan(table="t2", binding="t2", schema=schema)
    stand_in = algebra.Scan(table="pin", binding="pin", schema=schema)

    replaced_root, hit = _replace_subtree(left, left, stand_in)
    assert hit and replaced_root is stand_in

    # By identity, not equality: an equal-but-distinct scan is not it.
    twin = algebra.Scan(table="t1", binding="t1", schema=schema)
    same_root, hit = _replace_subtree(left, twin, stand_in)
    assert not hit and same_root is left

    _unused = right
