"""Schema and field tests."""

import pytest

from repro.errors import BindError, CatalogError
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar


def make_schema():
    return Schema(
        [
            Field("id", INTEGER, "t"),
            Field("name", varchar(10), "t"),
            Field("id", INTEGER, "s"),
            Field("score", DOUBLE, "s"),
        ]
    )


def test_resolution_by_qualified_name():
    schema = make_schema()
    assert schema.resolve("id", "t") == 0
    assert schema.resolve("id", "s") == 2


def test_resolution_case_insensitive():
    schema = make_schema()
    assert schema.resolve("ID", "T") == 0
    assert schema.resolve("Name") == 1


def test_unqualified_ambiguity_raises():
    with pytest.raises(BindError, match="ambiguous"):
        make_schema().resolve("id")


def test_unknown_column_raises():
    with pytest.raises(BindError, match="unknown"):
        make_schema().resolve("nope")


def test_duplicate_fields_rejected():
    with pytest.raises(CatalogError):
        Schema([Field("x", INTEGER, "t"), Field("X", INTEGER, "t")])


def test_same_name_different_relations_allowed():
    Schema([Field("x", INTEGER, "a"), Field("x", INTEGER, "b")])


def test_concat_and_relations():
    left = Schema([Field("a", INTEGER, "l")])
    right = Schema([Field("b", INTEGER, "r")])
    joined = left.concat(right)
    assert joined.names == ["a", "b"]
    assert joined.relations() == ["l", "r"]


def test_fields_of_relation():
    schema = make_schema()
    assert [f.name for f in schema.fields_of_relation("s")] == [
        "id",
        "score",
    ]


def test_row_width():
    schema = make_schema()
    assert schema.row_width() == 4 + 10 + 4 + 8


def test_requalified_and_unqualified():
    schema = Schema([Field("a", INTEGER, "x"), Field("b", INTEGER, "x")])
    re = schema.requalified("y")
    assert all(f.relation == "y" for f in re)
    un = schema.unqualified()
    assert all(f.relation is None for f in un)


def test_field_helpers():
    field = Field("a", INTEGER, "t")
    assert field.qualified_name == "t.a"
    assert field.renamed("b").name == "b"
    assert field.requalified(None).relation is None


def test_equality_and_iteration():
    one, two = make_schema(), make_schema()
    assert one == two
    assert len(one) == 4
    assert [f.name for f in one] == ["id", "name", "id", "score"]
    assert one[3].name == "score"
