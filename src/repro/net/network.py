"""The simulated network substrate.

Nodes belong to *sites* (e.g. ``onprem``, ``cloud``, ``dc1``...); links
are resolved per node pair with site-pair defaults, so a topology is
described by a handful of :class:`LinkSpec` values.  Two presets mirror
the paper's environments:

* :meth:`Network.on_premise` — the testbed: DBMS nodes on a 1 Gbit LAN,
  a middleware/mediator node in the cloud behind a WAN uplink.
* :meth:`Network.geo_distributed` — every DBMS in a different data
  center; all inter-node traffic crosses the WAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError, NetworkPartitionedError
from repro.obs.runtime import current_context

#: 1 Gbit/s expressed in bytes per (simulated) second.
GBIT = 125_000_000.0
#: 100 Mbit/s WAN uplink.
WAN_100MBIT = 12_500_000.0

#: Default LAN link: 1 Gbit, 0.5 ms round trip.
LAN_LINK_BANDWIDTH = GBIT
LAN_LINK_LATENCY = 0.0005
#: Default WAN link: 100 Mbit, 25 ms.
WAN_LINK_BANDWIDTH = WAN_100MBIT
WAN_LINK_LATENCY = 0.025

#: Approximate size of one control message (a DDL or EXPLAIN request).
CONTROL_MESSAGE_BYTES = 512


@dataclass(frozen=True)
class LinkSpec:
    """Directed link characteristics."""

    bandwidth: float  # bytes per simulated second
    latency: float  # seconds per message

    def transfer_time(self, payload_bytes: int) -> float:
        return self.latency + payload_bytes / self.bandwidth


LAN = LinkSpec(LAN_LINK_BANDWIDTH, LAN_LINK_LATENCY)
WAN = LinkSpec(WAN_LINK_BANDWIDTH, WAN_LINK_LATENCY)
LOOPBACK = LinkSpec(4 * GBIT, 0.00001)


@dataclass(frozen=True)
class TransferRecord:
    """One recorded transfer (data or control)."""

    src: str
    dst: str
    payload_bytes: int
    rows: int
    tag: str
    protocol: str
    seconds: float


@dataclass
class _Node:
    name: str
    site: str


class Network:
    """Topology plus the transfer ledger."""

    def __init__(self, name: str = "net"):
        self.name = name
        self._nodes: Dict[str, _Node] = {}
        self._pair_links: Dict[Tuple[str, str], LinkSpec] = {}
        self._site_links: Dict[Tuple[str, str], LinkSpec] = {}
        self._forbidden: set = set()
        #: transiently unreachable links (fault injection); heal-able,
        #: unlike ``_forbidden`` which is a permanent topology constraint
        self._partitioned: set = set()
        #: (src, dst) -> (latency multiplier, bandwidth multiplier)
        self._degraded: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._default_link = LAN
        self.log: List[TransferRecord] = []

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str, site: str = "default") -> None:
        self._nodes[name] = _Node(name, site)

    def node_site(self, name: str) -> str:
        node = self._nodes.get(name)
        if node is None:
            raise NetworkError(f"unknown network node {name!r}")
        return node.site

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Override a specific directed node pair."""
        self._pair_links[(src, dst)] = spec

    def set_site_link(self, site_a: str, site_b: str, spec: LinkSpec) -> None:
        """Default link for traffic between two sites (symmetric)."""
        self._site_links[(site_a, site_b)] = spec
        self._site_links[(site_b, site_a)] = spec

    def set_default_link(self, spec: LinkSpec) -> None:
        self._default_link = spec

    def link_for(self, src: str, dst: str) -> LinkSpec:
        if src == dst:
            return LOOPBACK
        spec = self._base_link_for(src, dst)
        factors = self._degraded.get((src, dst))
        if factors is not None:
            latency_factor, bandwidth_factor = factors
            spec = LinkSpec(
                bandwidth=spec.bandwidth * bandwidth_factor,
                latency=spec.latency * latency_factor,
            )
        return spec

    def _base_link_for(self, src: str, dst: str) -> LinkSpec:
        pair = self._pair_links.get((src, dst))
        if pair is not None:
            return pair
        src_site = self.node_site(src)
        dst_site = self.node_site(dst)
        site = self._site_links.get((src_site, dst_site))
        if site is not None:
            return site
        if src_site != dst_site:
            return WAN
        return self._default_link

    def is_cross_site(self, src: str, dst: str) -> bool:
        return self.node_site(src) != self.node_site(dst)

    # -- topology constraints (non-fully-connected federations) ---------

    def forbid_link(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Declare that ``src`` cannot send data to ``dst``.

        The paper assumes fully inter-connected DBMSes and notes that
        other topologies "can be supported by constraining the possible
        values of set A" (§IV-B2) — this is that constraint's substrate:
        XDB's annotator drops placement candidates that moving inputs
        cannot reach.
        """
        self.node_site(src), self.node_site(dst)  # validate nodes
        self._forbidden.add((src, dst))
        if symmetric:
            self._forbidden.add((dst, src))

    def is_reachable(self, src: str, dst: str) -> bool:
        """Whether ``src`` may transfer data directly to ``dst``."""
        if src == dst:
            return True
        return (
            (src, dst) not in self._forbidden
            and (src, dst) not in self._partitioned
        )

    # -- fault injection (degraded / partitioned links) -----------------

    def degrade_link(
        self,
        src: str,
        dst: str,
        latency_factor: float = 1.0,
        bandwidth_factor: float = 1.0,
        symmetric: bool = True,
    ) -> None:
        """Slow a link: multiply its latency, scale its bandwidth.

        ``latency_factor > 1`` and ``bandwidth_factor < 1`` model a
        congested or flapping link; the connector layer's per-call
        timeout budget turns an extreme degradation into
        :class:`ConnectorTimeoutError`.
        """
        self.node_site(src), self.node_site(dst)  # validate nodes
        self._degraded[(src, dst)] = (latency_factor, bandwidth_factor)
        if symmetric:
            self._degraded[(dst, src)] = (latency_factor, bandwidth_factor)

    def restore_link(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Remove a degradation installed by :meth:`degrade_link`."""
        self._degraded.pop((src, dst), None)
        if symmetric:
            self._degraded.pop((dst, src), None)

    def partition_link(
        self, src: str, dst: str, symmetric: bool = True
    ) -> None:
        """Transiently cut a link; transfers raise until it heals."""
        self.node_site(src), self.node_site(dst)  # validate nodes
        self._partitioned.add((src, dst))
        if symmetric:
            self._partitioned.add((dst, src))

    def heal_link(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Heal a partition installed by :meth:`partition_link`."""
        self._partitioned.discard((src, dst))
        if symmetric:
            self._partitioned.discard((dst, src))

    def is_partitioned(self, src: str, dst: str) -> bool:
        return src != dst and (src, dst) in self._partitioned

    def clear_faults(self) -> None:
        """Heal every partition and restore every degraded link."""
        self._partitioned.clear()
        self._degraded.clear()

    # -- accounting -------------------------------------------------------------

    def record_transfer(
        self,
        src: str,
        dst: str,
        payload_bytes: int,
        rows: int = 0,
        tag: str = "data",
        protocol: str = "binary",
    ) -> TransferRecord:
        if src not in self._nodes or dst not in self._nodes:
            raise NetworkError(
                f"transfer between unknown nodes {src!r} -> {dst!r}"
            )
        if self.is_partitioned(src, dst):
            raise NetworkPartitionedError(
                f"link {src!r} -> {dst!r} is partitioned"
            )
        if not self.is_reachable(src, dst):
            raise NetworkError(
                f"no route from {src!r} to {dst!r} (link forbidden)"
            )
        seconds = self.link_for(src, dst).transfer_time(payload_bytes)
        record = TransferRecord(
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            rows=rows,
            tag=tag,
            protocol=protocol,
            seconds=seconds,
        )
        self.log.append(record)
        # Attribute the transfer to the active query's observation
        # context (span + simulated clock + metrics), if any.
        ctx = current_context()
        if ctx is not None:
            ctx.record_transfer(record)
        return record

    def record_control_message(
        self, src: str, dst: str, tag: str = "control"
    ) -> TransferRecord:
        """A small request/response pair (DDL, EXPLAIN consultation)."""
        return self.record_transfer(
            src, dst, CONTROL_MESSAGE_BYTES, rows=0, tag=tag
        )

    def transfer_time(self, src: str, dst: str, payload_bytes: int) -> float:
        return self.link_for(src, dst).transfer_time(payload_bytes)

    def reset_log(self) -> None:
        self.log.clear()

    # -- aggregate views -----------------------------------------------------------

    def total_bytes(self, tag_prefix: Optional[str] = None) -> int:
        return sum(
            record.payload_bytes
            for record in self.log
            if tag_prefix is None or record.tag.startswith(tag_prefix)
        )

    def bytes_into(self, node: str) -> int:
        """Total bytes received by ``node`` (cloud-ingress accounting)."""
        return sum(
            record.payload_bytes for record in self.log if record.dst == node
        )

    def bytes_into_site(self, site: str) -> int:
        """Bytes entering ``site`` from other sites."""
        return sum(
            record.payload_bytes
            for record in self.log
            if self.node_site(record.dst) == site
            and self.node_site(record.src) != site
        )

    def cross_site_bytes(self) -> int:
        """Bytes on links that cross site boundaries (WAN traffic)."""
        return sum(
            record.payload_bytes
            for record in self.log
            if self.is_cross_site(record.src, record.dst)
        )

    # -- factory topologies ----------------------------------------------------------

    @classmethod
    def on_premise(
        cls,
        db_nodes: Sequence[str],
        cloud_nodes: Sequence[str] = (),
        client_node: str = "client",
        middleware_nodes: Sequence[str] = (),
        middleware_site: str = "onprem",
    ) -> "Network":
        """The paper's testbed: DBMSes on one LAN; a cloud site for the
        client (and optionally the middleware, for the §VI-C managed-cloud
        scenario — ``middleware_site="cloud"``)."""
        network = cls("on-premise")
        for node in db_nodes:
            network.add_node(node, site="onprem")
        for node in cloud_nodes:
            network.add_node(node, site="cloud")
        for node in middleware_nodes:
            network.add_node(node, site=middleware_site)
        network.add_node(client_node, site="cloud")
        network.set_site_link("onprem", "onprem", LAN)
        network.set_site_link("onprem", "cloud", WAN)
        network.set_site_link("cloud", "cloud", LAN)
        return network

    @classmethod
    def geo_distributed(
        cls,
        db_nodes: Sequence[str],
        cloud_nodes: Sequence[str] = (),
        client_node: str = "client",
        middleware_nodes: Sequence[str] = (),
        middleware_site: str = "cloud",
    ) -> "Network":
        """Every DBMS in its own data center; all traffic is WAN."""
        network = cls("geo-distributed")
        for node in db_nodes:
            network.add_node(node, site=f"dc_{node}")
        for node in cloud_nodes:
            network.add_node(node, site="cloud")
        for node in middleware_nodes:
            network.add_node(node, site=middleware_site)
        network.add_node(client_node, site="cloud")
        network.set_site_link("cloud", "cloud", LAN)
        # All cross-site pairs default to WAN via link_for's fallback.
        return network
