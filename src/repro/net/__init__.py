"""Simulated network: nodes, links, and transfer accounting.

The network never moves real bytes — engines run in-process — but every
inter-DBMS fetch and every control message is recorded here, which is
what the paper's data-transfer experiments (Fig. 1 shading, Fig. 14)
measure, and what the schedule simulator uses to derive transfer times.
Links can be transiently degraded or partitioned (fault injection);
``metrics`` aggregates both the transfer ledger and the connectors'
resilience counters.
"""

from repro.net.network import LinkSpec, Network, TransferRecord
from repro.net.metrics import (
    ConnectorResilience,
    ResilienceSummary,
    TransferSummary,
    summarize,
    summarize_resilience,
)

__all__ = [
    "ConnectorResilience",
    "LinkSpec",
    "Network",
    "ResilienceSummary",
    "TransferRecord",
    "TransferSummary",
    "summarize",
    "summarize_resilience",
]
