"""Simulated network: nodes, links, and transfer accounting.

The network never moves real bytes — engines run in-process — but every
inter-DBMS fetch and every control message is recorded here, which is
what the paper's data-transfer experiments (Fig. 1 shading, Fig. 14)
measure, and what the schedule simulator uses to derive transfer times.
"""

from repro.net.network import LinkSpec, Network, TransferRecord
from repro.net.metrics import TransferSummary, summarize

__all__ = [
    "LinkSpec",
    "Network",
    "TransferRecord",
    "TransferSummary",
    "summarize",
]
