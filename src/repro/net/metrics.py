"""Aggregations over the network transfer ledger and the connectors'
resilience counters (retries, failures, give-ups, backoff)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.net.network import Network, TransferRecord


@dataclass
class TransferSummary:
    """Aggregate view over a slice of the transfer log."""

    total_bytes: int = 0
    total_rows: int = 0
    transfer_count: int = 0
    by_tag: Dict[str, int] = field(default_factory=dict)
    by_edge: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / 1_000_000.0

    def bytes_for_tag(self, tag_prefix: str) -> int:
        return sum(
            count
            for tag, count in self.by_tag.items()
            if tag.startswith(tag_prefix)
        )


def summarize(
    records: Iterable[TransferRecord],
    network: Optional[Network] = None,
    cross_site_only: bool = False,
) -> TransferSummary:
    """Aggregate ``records``; optionally keep only WAN-crossing traffic."""
    summary = TransferSummary()
    for record in records:
        if cross_site_only:
            if network is None:
                raise ValueError(
                    "cross_site_only summaries need the network topology"
                )
            if not network.is_cross_site(record.src, record.dst):
                continue
        summary.total_bytes += record.payload_bytes
        summary.total_rows += record.rows
        summary.transfer_count += 1
        summary.by_tag[record.tag] = (
            summary.by_tag.get(record.tag, 0) + record.payload_bytes
        )
        edge = (record.src, record.dst)
        summary.by_edge[edge] = (
            summary.by_edge.get(edge, 0) + record.payload_bytes
        )
    return summary


def site_breakdown(
    records: Iterable[TransferRecord],
    network: Network,
    cloud_site: str = "cloud",
) -> Tuple[int, int, int]:
    """Byte totals ``(total, to_cloud, cross_site)`` over ``records``.

    ``to_cloud`` counts bytes entering the cloud site from elsewhere
    (mediator/middleware ingress); ``cross_site`` counts all bytes on
    links crossing site boundaries (WAN traffic).  The records are the
    query's *attributed* transfers (a :class:`~repro.obs.context.
    QueryContext` stream), not a ledger index slice.
    """
    total = 0
    to_cloud = 0
    cross_site = 0
    for record in records:
        total += record.payload_bytes
        src_site = network.node_site(record.src)
        dst_site = network.node_site(record.dst)
        if dst_site == cloud_site and src_site != cloud_site:
            to_cloud += record.payload_bytes
        if src_site != dst_site:
            cross_site += record.payload_bytes
    return total, to_cloud, cross_site


# -- resilience counters ----------------------------------------------------


@dataclass(frozen=True)
class ConnectorResilience:
    """One connector's retry/failure counters (a snapshot or a delta)."""

    retries: int = 0
    failures: int = 0
    giveups: int = 0
    backoff_seconds: float = 0.0
    #: calls rejected up-front by an open circuit breaker
    fastfails: int = 0

    def __sub__(self, other: "ConnectorResilience") -> "ConnectorResilience":
        return ConnectorResilience(
            retries=self.retries - other.retries,
            failures=self.failures - other.failures,
            giveups=self.giveups - other.giveups,
            backoff_seconds=self.backoff_seconds - other.backoff_seconds,
            fastfails=self.fastfails - other.fastfails,
        )


@dataclass
class ResilienceSummary:
    """Per-connector and aggregate resilience counters for one window."""

    by_connector: Dict[str, ConnectorResilience] = field(default_factory=dict)
    #: outstanding leaked DDL objects in the client's ledger at report
    #: time — cumulative across submissions, paid down by the reaper
    leaked_objects: int = 0

    @property
    def retries(self) -> int:
        return sum(c.retries for c in self.by_connector.values())

    @property
    def failures(self) -> int:
        return sum(c.failures for c in self.by_connector.values())

    @property
    def giveups(self) -> int:
        return sum(c.giveups for c in self.by_connector.values())

    @property
    def backoff_seconds(self) -> float:
        return sum(c.backoff_seconds for c in self.by_connector.values())

    @property
    def fastfails(self) -> int:
        return sum(c.fastfails for c in self.by_connector.values())

    @property
    def degraded(self) -> bool:
        """Whether any fault was absorbed (or not) during the window."""
        return self.failures > 0 or self.fastfails > 0

    def describe(self) -> str:
        parts = [
            f"{self.retries} retries",
            f"{self.failures} failures",
            f"{self.giveups} give-ups",
            f"{self.backoff_seconds:.3f}s backoff",
        ]
        if self.fastfails:
            parts.append(f"{self.fastfails} breaker fast-fails")
        if self.leaked_objects:
            parts.append(f"{self.leaked_objects} leaked objects outstanding")
        noisy = {
            name: c
            for name, c in sorted(self.by_connector.items())
            if c.failures or c.retries or c.fastfails
        }
        if noisy:
            per = ", ".join(
                f"{name}: r={c.retries} f={c.failures}"
                for name, c in noisy.items()
            )
            parts.append(f"({per})")
        return " ".join(parts)


def snapshot_resilience(
    connectors: Mapping[str, "object"],
) -> Dict[str, ConnectorResilience]:
    """Capture every connector's current counters (for later deltas)."""
    return {
        name: ConnectorResilience(
            retries=connector.retries,
            failures=connector.failures,
            giveups=connector.giveups,
            backoff_seconds=connector.backoff_seconds,
            fastfails=getattr(connector, "breaker_fastfails", 0),
        )
        for name, connector in connectors.items()
    }


def summarize_resilience(
    connectors: Mapping[str, "object"],
    baseline: Optional[Dict[str, ConnectorResilience]] = None,
) -> ResilienceSummary:
    """Aggregate counters, optionally as a delta against ``baseline``."""
    current = snapshot_resilience(connectors)
    if baseline:
        current = {
            name: counters - baseline[name]
            if name in baseline
            else counters
            for name, counters in current.items()
        }
    return ResilienceSummary(by_connector=current)


def edge_rows(records: Iterable[TransferRecord]) -> Dict[Tuple[str, str], int]:
    """Rows moved per (src, dst) edge — feeds Table IV style analyses."""
    rows: Dict[Tuple[str, str], int] = {}
    for record in records:
        edge = (record.src, record.dst)
        rows[edge] = rows.get(edge, 0) + record.rows
    return rows
