"""Aggregations over the network transfer ledger."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.network import Network, TransferRecord


@dataclass
class TransferSummary:
    """Aggregate view over a slice of the transfer log."""

    total_bytes: int = 0
    total_rows: int = 0
    transfer_count: int = 0
    by_tag: Dict[str, int] = field(default_factory=dict)
    by_edge: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / 1_000_000.0

    def bytes_for_tag(self, tag_prefix: str) -> int:
        return sum(
            count
            for tag, count in self.by_tag.items()
            if tag.startswith(tag_prefix)
        )


def summarize(
    records: Iterable[TransferRecord],
    network: Optional[Network] = None,
    cross_site_only: bool = False,
) -> TransferSummary:
    """Aggregate ``records``; optionally keep only WAN-crossing traffic."""
    summary = TransferSummary()
    for record in records:
        if cross_site_only:
            if network is None:
                raise ValueError(
                    "cross_site_only summaries need the network topology"
                )
            if not network.is_cross_site(record.src, record.dst):
                continue
        summary.total_bytes += record.payload_bytes
        summary.total_rows += record.rows
        summary.transfer_count += 1
        summary.by_tag[record.tag] = (
            summary.by_tag.get(record.tag, 0) + record.payload_bytes
        )
        edge = (record.src, record.dst)
        summary.by_edge[edge] = (
            summary.by_edge.get(edge, 0) + record.payload_bytes
        )
    return summary


def edge_rows(records: Iterable[TransferRecord]) -> Dict[Tuple[str, str], int]:
    """Rows moved per (src, dst) edge — feeds Table IV style analyses."""
    rows: Dict[Tuple[str, str], int] = {}
    for record in records:
        edge = (record.src, record.dst)
        rows[edge] = rows.get(edge, 0) + record.rows
    return rows
