"""Nested spans over a dual clock: real wall time + simulated time.

Every span carries **two** intervals:

* a *wall-clock* interval (``wall_start``/``wall_end``, from
  :func:`repro.obs.clock.wall_now`) measuring real middleware CPU; and
* a *simulated-clock* interval (``sim_start``/``sim_end``) on the
  tracer's simulated clock, which advances only when simulated cost is
  attributed to the active span — network transfer seconds and retry
  backoff.  Nothing else moves it, so for any span
  ``sim_seconds == attributed network + backoff`` of its subtree.

The paper's phase breakdown (real optimizer CPU + simulated network
time) is therefore just ``span.wall_seconds + span.sim_seconds`` — the
same numbers the old mark-based slicing produced, now scoped to a span
tree instead of global ledger indices.

Spans also carry :class:`SpanEvent` point annotations (retries, DDL
statements, breaker transitions, transfers) and a list of attributed
:class:`~repro.net.network.TransferRecord` objects.  *Synthetic* spans
(``Tracer.record_span``) describe intervals on a foreign timebase —
the schedule simulator's task timeline, the executor's operator tree —
without touching the live span stack.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.clock import wall_now


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span."""

    name: str
    wall_at: float
    sim_at: float
    attributes: Dict[str, object] = field(default_factory=dict)


class Span:
    """One node of the trace tree."""

    __slots__ = (
        "name",
        "kind",
        "span_id",
        "parent",
        "children",
        "timebase",
        "wall_start",
        "wall_end",
        "sim_start",
        "sim_end",
        "attributes",
        "events",
        "records",
        "backoff_seconds",
        "status",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: int,
        parent: Optional["Span"],
        wall_start: float,
        sim_start: float,
        timebase: str = "query",
        attributes: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent = parent
        self.children: List[Span] = []
        self.timebase = timebase
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.sim_start = sim_start
        self.sim_end: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[SpanEvent] = []
        #: transfer records attributed to this span (not its subtree)
        self.records: List[object] = []
        #: simulated backoff seconds attributed directly to this span
        self.backoff_seconds = 0.0
        self.status = "ok"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, kind={self.kind!r})"

    # -- durations -----------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        end = self.wall_end if self.wall_end is not None else wall_now()
        return end - self.wall_start

    @property
    def sim_seconds(self) -> float:
        end = self.sim_end if self.sim_end is not None else self.sim_start
        return end - self.sim_start

    @property
    def seconds(self) -> float:
        """The combined duration: real CPU plus simulated time."""
        return self.wall_seconds + self.sim_seconds

    @property
    def finished(self) -> bool:
        return self.wall_end is not None

    # -- tree traversal ------------------------------------------------

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: Optional[str] = None, kind: Optional[str] = None):
        return [
            span
            for span in self.iter_spans()
            if (name is None or span.name == name)
            and (kind is None or span.kind == kind)
        ]

    # -- subtree aggregations ------------------------------------------

    def subtree_records(self) -> List[object]:
        """Transfer records attributed anywhere in this subtree."""
        out: List[object] = []
        for span in self.iter_spans():
            out.extend(span.records)
        return out

    def subtree_backoff_seconds(self) -> float:
        return sum(span.backoff_seconds for span in self.iter_spans())

    def subtree_events(self, name: Optional[str] = None) -> List[SpanEvent]:
        out: List[SpanEvent] = []
        for span in self.iter_spans():
            for event in span.events:
                if name is None or event.name == name:
                    out.append(event)
        return out


class Tracer:
    """Builds the span tree and owns the simulated clock.

    Thread-aware: each thread keeps its own stack of open spans, so
    worker-pool branches build disjoint subtrees concurrently.  A
    worker announces itself with :meth:`adopt` (seeding its stack under
    the span it works for) and cleans up with :meth:`release`.  Span-id
    allocation, child attachment, and the simulated clock share one
    lock; everything else is single-writer per thread.
    """

    def __init__(self, root_name: str = "query", **attributes: object):
        self._lock = threading.RLock()
        self._next_id = 0
        #: the simulated clock: network + backoff seconds attributed so far
        self.sim_now = 0.0
        self.root = self._new_span(
            root_name, kind="query", parent=None, attributes=attributes
        )
        self._home_thread = threading.get_ident()
        self._stacks: Dict[int, List[Span]] = {
            self._home_thread: [self.root]
        }

    # -- span lifecycle ------------------------------------------------

    def _new_span(
        self,
        name: str,
        kind: str,
        parent: Optional[Span],
        timebase: str = "query",
        sim_start: Optional[float] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Span:
        with self._lock:
            span = Span(
                name,
                kind=kind,
                span_id=self._next_id,
                parent=parent,
                wall_start=wall_now(),
                sim_start=self.sim_now if sim_start is None else sim_start,
                timebase=timebase,
                attributes=attributes,
            )
            self._next_id += 1
            if parent is not None:
                parent.children.append(span)
        return span

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's stack (un-adopted threads see the root)."""
        return self._stacks.setdefault(threading.get_ident(), [self.root])

    @property
    def current(self) -> Span:
        """The innermost open span (the attribution target)."""
        return self._stack[-1]

    def adopt(self, parent: Span) -> None:
        """Seed the calling worker thread's span stack under ``parent``.

        Spans the worker opens become children of ``parent`` instead of
        landing on some other thread's stack.
        """
        self._stacks[threading.get_ident()] = [parent]

    def release(self, parent: Span) -> None:
        """Drop the calling worker thread's stack (closes stragglers)."""
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            return
        while len(stack) > 1:
            self.end_span(stack[-1])
        if ident != self._home_thread:
            del self._stacks[ident]

    def start_span(self, name: str, kind: str = "span", **attributes) -> Span:
        span = self._new_span(
            name, kind=kind, parent=self.current, attributes=attributes
        )
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        if self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} ended out of order (innermost open "
                f"span is {self._stack[-1].name!r})"
            )
        span.wall_end = wall_now()
        span.sim_end = self.sim_now
        self._stack.pop()

    @contextmanager
    def span(self, name: str, kind: str = "span", **attributes):
        """Open a child span of the current span for the ``with`` body."""
        span = self.start_span(name, kind=kind, **attributes)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self.end_span(span)

    def finish(self) -> Span:
        """Close the root span (idempotent); returns it."""
        with self._lock:
            for ident, stack in list(self._stacks.items()):
                while len(stack) > 1:  # defensive: close stragglers
                    span = stack.pop()
                    span.wall_end = wall_now()
                    span.sim_end = self.sim_now
                if ident != self._home_thread:
                    del self._stacks[ident]
            if self.root.wall_end is None:
                self.root.wall_end = wall_now()
                self.root.sim_end = self.sim_now
        return self.root

    # -- synthetic spans (foreign timebases) ---------------------------

    def record_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        kind: str = "span",
        timebase: str = "query",
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        **attributes: object,
    ) -> Span:
        """Attach an already-timed span without opening it on the stack.

        Used for intervals measured elsewhere: schedule-simulation task
        timings (``timebase="schedule"``) and executor operator trees.
        """
        span = self._new_span(
            name,
            kind=kind,
            parent=parent or self.current,
            timebase=timebase,
            sim_start=sim_start,
            attributes=attributes,
        )
        span.wall_end = span.wall_start
        span.sim_end = span.sim_start if sim_end is None else sim_end
        return span

    # -- attribution ---------------------------------------------------

    def advance(self, seconds: float) -> float:
        """Advance the simulated clock (simulated cost was incurred)."""
        if seconds < 0:
            raise ValueError("the simulated clock cannot run backwards")
        with self._lock:
            self.sim_now += seconds
            return self.sim_now

    def add_event(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
        **kw: object,
    ) -> SpanEvent:
        """Annotate the current span with a point event."""
        attrs = dict(attributes or {})
        attrs.update(kw)
        event = SpanEvent(
            name=name,
            wall_at=wall_now(),
            sim_at=self.sim_now,
            attributes=attrs,
        )
        self.current.events.append(event)
        return event
