"""``repro.obs`` — the observability spine.

One :class:`QueryContext` per query submission carries a
:class:`Tracer` (nested spans over the wall/simulated clock duality),
a :class:`MetricsRegistry` (context-scoped counters), and the
attribution streams every layer feeds while the context is active.
See DESIGN.md §8.

Attribute access is lazy (PEP 562): low-level layers (the network
substrate, the health registry) import ``repro.obs.runtime`` while
they are themselves being imported by :mod:`repro.obs.context`, so the
package initializer must not eagerly re-import the high-level modules.
"""

from repro.obs.clock import wall_now
from repro.obs.runtime import current_context

__all__ = [
    "CONTROL_TAGS",
    "Histogram",
    "MetricsRegistry",
    "QueryContext",
    "Span",
    "SpanEvent",
    "Tracer",
    "add_event",
    "current_context",
    "validate_chrome_trace",
    "wall_now",
]

_LAZY = {
    "CONTROL_TAGS": "repro.obs.context",
    "QueryContext": "repro.obs.context",
    "add_event": "repro.obs.context",
    "validate_chrome_trace": "repro.obs.context",
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "Span": "repro.obs.tracer",
    "SpanEvent": "repro.obs.tracer",
    "Tracer": "repro.obs.tracer",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
