"""A small labelled metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` lives on each
:class:`~repro.obs.context.QueryContext`, so every number it holds is
scoped to exactly one query submission — the registry replaces the
module/instance-level counter silos (connector counters sliced by
snapshot deltas, ledger index marks) that leaked across queries.

Metrics are identified by a name plus a label set, Prometheus-style:
``registry.inc("connector.retries", db="db2")``.  Values are plain
floats; histograms keep count/sum/min/max, which is all the report
views need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Histogram:
    """Streaming summary of observed values."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Counters, gauges, and histograms for one observation scope."""

    def __init__(self) -> None:
        # Worker-pool branches of one query share the registry, so the
        # read-modify-write paths must be atomic.
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- counters ------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> float:
        """Add ``value`` to a counter; returns the new total."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        key = (name, _label_key(labels))
        with self._lock:
            total = self._counters.get(key, 0.0) + value
            self._counters[key] = total
        return total

    def value(self, name: str, **labels: object) -> float:
        """Current counter value (0.0 when never incremented)."""
        return self._counters.get((name, _label_key(labels)), 0.0)

    def counters(self, name: str) -> Dict[LabelKey, float]:
        """Every label set recorded under counter ``name``."""
        return {
            labels: value
            for (metric, labels), value in self._counters.items()
            if metric == name
        }

    def label_values(self, name: str, label: str) -> Dict[str, float]:
        """Counter totals keyed by one label's value (summing the rest)."""
        out: Dict[str, float] = {}
        for labels, value in self.counters(name).items():
            for key, label_value in labels:
                if key == label:
                    out[label_value] = out.get(label_value, 0.0) + value
        return out

    # -- gauges --------------------------------------------------------

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self._gauges[(name, _label_key(labels))] = value

    def gauge(self, name: str, **labels: object) -> float:
        return self._gauges.get((name, _label_key(labels)), 0.0)

    # -- histograms ----------------------------------------------------

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._histograms.get(
            (name, _label_key(labels)), Histogram()
        )

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flat, JSON-friendly dump (metric{labels} → value)."""

        def fmt(name: str, labels: LabelKey) -> str:
            if not labels:
                return name
            body = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{body}}}"

        out: Dict[str, Dict[str, float]] = {
            "counters": {
                fmt(name, labels): value
                for (name, labels), value in sorted(self._counters.items())
            },
            "gauges": {
                fmt(name, labels): value
                for (name, labels), value in sorted(self._gauges.items())
            },
            "histograms": {
                fmt(name, labels): hist.mean
                for (name, labels), hist in sorted(self._histograms.items())
            },
        }
        return out
