"""The per-query observation context: one spine for all instrumentation.

A :class:`QueryContext` owns

* a query id,
* a :class:`~repro.obs.tracer.Tracer` (the span tree over the
  wall/simulated clock duality), and
* a :class:`~repro.obs.metrics.MetricsRegistry` (context-scoped
  counters — nothing leaks across queries),

plus the raw observation streams every layer feeds it while it is
active: attributed :class:`~repro.net.network.TransferRecord` objects,
connector retry/backoff counters, and circuit-breaker transitions.

The client activates the context for the duration of one submission
(``with ctx:``); layers reached indirectly find it through
:func:`repro.obs.runtime.current_context`.  Every number the
:class:`~repro.core.client.XDBReport` used to assemble from counter
snapshots and ledger index marks is re-derived as a *view* over this
context — same values, one source of truth.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.metrics import (
    ConnectorResilience,
    ResilienceSummary,
    TransferSummary,
    summarize,
)
from repro.net.network import TransferRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_context, pop_context, push_context
from repro.obs.tracer import Span, Tracer

#: transfer tags that ride the execution critical path as control
#: messages (DDL cascade, consultations, probes) rather than data flow
CONTROL_TAGS = ("delegation", "control", "consult", "probe")

_QUERY_IDS = itertools.count(1)


class QueryContext:
    """Tracer + metrics + attribution streams for one query submission."""

    def __init__(
        self,
        query_id: Optional[str] = None,
        label: str = "",
        qos: Optional[object] = None,
    ) -> None:
        self.query_id = query_id or f"q{next(_QUERY_IDS)}"
        self.label = label
        self.tracer = Tracer(
            root_name=self.query_id, query_id=self.query_id, label=label
        )
        self.metrics = MetricsRegistry()
        #: every transfer attributed to this context, in ledger order
        self.transfers: List[TransferRecord] = []
        #: circuit-breaker transitions observed while active
        self.breaker_events: List[object] = []
        #: the submission's QoS contract (a ``repro.qos.QoSPolicy``,
        #: duck-typed so the observability spine stays QoS-agnostic)
        self.qos = qos
        #: the armed per-query deadline budget, drawing down the
        #: tracer's simulated clock (None without a deadline)
        self.deadline = None
        if qos is not None:
            deadline = qos.make_deadline()
            if deadline is not None:
                deadline.arm(lambda: self.tracer.sim_now)
            self.deadline = deadline
        #: coarse phase label for structured DeadlineExceeded errors
        self.current_phase = ""
        #: straggler-hedging contract for this submission: the QoS
        #: latency multiple (None = hedging disabled) and whether the
        #: admission gate's capacity probe permits speculative
        #: duplicates right now — both stamped by the pipeline, read by
        #: the parallel executor's worker pool
        self.hedge_multiplier: Optional[float] = None
        self.hedging_allowed = True
        #: real + simulated admission-gate spend (report views)
        self.admission_wait_seconds = 0.0
        self.admission_sim_seconds = 0.0
        self._jitter_rngs: Dict[str, random.Random] = {}

    # -- activation ----------------------------------------------------

    def __enter__(self) -> "QueryContext":
        push_context(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_context(self)
        self.tracer.finish()

    @property
    def root(self) -> Span:
        return self.tracer.root

    # -- recording (called by the layers) ------------------------------

    def record_transfer(self, record: TransferRecord) -> None:
        """Attribute one transfer to the active span, advancing the
        simulated clock by its link time."""
        span = self.tracer.current
        self.transfers.append(record)
        span.records.append(record)
        self.tracer.advance(record.seconds)
        self.tracer.add_event(
            "transfer",
            src=record.src,
            dst=record.dst,
            tag=record.tag,
            payload_bytes=record.payload_bytes,
            rows=record.rows,
            seconds=record.seconds,
        )
        self.metrics.inc("net.transfers", tag=record.tag)
        self.metrics.inc("net.bytes", record.payload_bytes, tag=record.tag)
        self.metrics.inc("net.rows", record.rows, tag=record.tag)

    def add_backoff(self, db: str, seconds: float) -> None:
        """Attribute simulated retry backoff to the active span."""
        self.tracer.current.backoff_seconds += seconds
        self.tracer.advance(seconds)
        self.metrics.inc("connector.backoff_seconds", seconds, db=db)

    def enter_phase(self, name: str) -> None:
        """Mark the submission's coarse phase and enforce the deadline.

        The phase label lands in any
        :class:`~repro.errors.DeadlineExceeded` raised afterwards, so a
        caller can tell *where* the budget ran out (``"admission"``,
        ``"plan"``, ``"delegate"``, ``"execute"``, ``"cleanup"``).
        """
        self.current_phase = name
        if self.deadline is not None:
            self.deadline.check(name)

    def record_admission(self, lease: object) -> None:
        """Attribute one admission-gate lease to this query.

        The lease's real queue wait was already charged against the
        deadline by the gate itself; here we fold it into the report
        views and advance the simulated clock by the gate's
        deterministic queue penalty (attributed to the active span,
        i.e. the ``admit`` step).
        """
        waited = getattr(lease, "waited_seconds", 0.0)
        penalty = getattr(lease, "sim_penalty_seconds", 0.0)
        self.admission_wait_seconds += waited
        self.admission_sim_seconds += penalty
        self.metrics.inc("qos.admissions")
        if waited:
            self.metrics.inc("qos.admission_wait_seconds", waited)
        if penalty:
            self.tracer.advance(penalty)
            if self.deadline is not None:
                # The penalty advanced the armed clock; nothing extra
                # to consume — the draw-down is automatic.
                pass
        self.tracer.add_event(
            "admitted",
            engines=",".join(getattr(lease, "engines", [])),
            waited_seconds=waited,
            sim_penalty_seconds=penalty,
            priority=getattr(lease, "priority", 0),
        )

    def backoff_rng(self, db: str) -> random.Random:
        """Per-query deterministic jitter stream for ``db``'s backoff.

        Seeded by the query label rather than shared process-wide, so
        concurrent queries against one engine do not synchronize their
        retry storms, while two runs of the same labelled workload
        still backoff identically.
        """
        rng = self._jitter_rngs.get(db)
        if rng is None:
            rng = self._jitter_rngs[db] = random.Random(
                f"backoff:{db}:{self.label}"
            )
        return rng

    def record_breaker_event(self, event: object) -> None:
        """Collect a circuit-breaker state transition."""
        self.breaker_events.append(event)
        self.metrics.inc("breaker.transitions", db=getattr(event, "db", ""))
        self.tracer.add_event(
            "breaker",
            db=getattr(event, "db", ""),
            old=str(getattr(event, "old_state", "")),
            new=str(getattr(event, "new_state", "")),
            reason=getattr(event, "reason", ""),
        )

    def record_operator_tree(self, plan: object, db: str = "") -> None:
        """Mirror an executed physical-operator tree as child spans.

        ``plan`` duck-types the executor's :class:`PhysicalPlan`
        (``label()``, ``children()``, ``rows_out``); each operator
        becomes a synthetic span carrying its observed cardinality.
        """

        def build(node: object, parent: Span) -> None:
            extra = {}
            if getattr(node, "_instrumented", False):
                # Measured inclusive wall seconds (see
                # repro.engine.instrument) — the calibration harness
                # reads these off the span tree.
                extra["exec_seconds"] = getattr(node, "exec_seconds", 0.0)
            span = self.tracer.record_span(
                node.label(),
                parent=parent,
                kind="operator",
                db=db,
                rows_out=getattr(node, "rows_out", 0),
                **extra,
            )
            for child in node.children():
                build(child, span)

        build(plan, self.tracer.current)
        self.metrics.inc("engine.queries", db=db)

    def record_schedule(self, schedule: object) -> Span:
        """Mirror a simulated schedule as spans on the schedule timebase.

        Task spans carry the exact :class:`TaskTiming` intervals —
        ``sim_start``/``sim_end`` equal the simulator's ``start`` and
        ``finish`` — so trace consumers see the same critical path the
        report's ``schedule`` field describes.
        """
        parent = self.tracer.record_span(
            "schedule-sim",
            kind="schedule",
            timebase="schedule",
            sim_start=0.0,
            sim_end=schedule.total_seconds,
            execution_seconds=schedule.execution_seconds,
            result_transfer_seconds=schedule.result_transfer_seconds,
        )
        for timing in schedule.tasks.values():
            self.tracer.record_span(
                f"task-{timing.task_id}@{timing.db}",
                parent=parent,
                kind="task",
                timebase="schedule",
                sim_start=timing.start,
                sim_end=timing.finish,
                task_id=timing.task_id,
                db=timing.db,
                proc_seconds=timing.proc_seconds,
            )
        self.tracer.record_span(
            "result-transfer",
            parent=parent,
            kind="task",
            timebase="schedule",
            sim_start=schedule.execution_seconds,
            sim_end=schedule.total_seconds,
        )
        return parent

    # -- report views --------------------------------------------------

    def phase_seconds(self, span: Span) -> float:
        """The paper's phase currency: real CPU + simulated time."""
        return span.wall_seconds + span.sim_seconds

    def control_seconds(
        self, span: Span, tags: Tuple[str, ...] = CONTROL_TAGS
    ) -> float:
        """Simulated seconds of control messages in ``span``'s subtree."""
        return sum(
            record.seconds
            for record in span.subtree_records()
            if record.tag in tags
        )

    def backoff_in(self, span: Span) -> float:
        return span.subtree_backoff_seconds()

    def transfer_summary(
        self, span: Optional[Span] = None
    ) -> TransferSummary:
        """Aggregate the transfers attributed to ``span``'s subtree
        (default: the whole context)."""
        records = (
            self.transfers if span is None else span.subtree_records()
        )
        return summarize(records)

    def resilience_summary(
        self, connector_names: Iterable[str] = ()
    ) -> ResilienceSummary:
        """Context-scoped retry/failure counters, per connector.

        ``connector_names`` seeds the per-connector map (so quiet
        connectors appear with zero counters, as the snapshot-delta
        view always did); any connector that recorded activity is
        included regardless.
        """
        names = list(connector_names)
        seen = set(names)
        for counter in (
            "connector.retries",
            "connector.failures",
            "connector.giveups",
            "connector.breaker_fastfails",
            "connector.backoff_seconds",
        ):
            for db in self.metrics.label_values(counter, "db"):
                if db not in seen:
                    seen.add(db)
                    names.append(db)
        by_connector = {
            db: ConnectorResilience(
                retries=int(self.metrics.value("connector.retries", db=db)),
                failures=int(
                    self.metrics.value("connector.failures", db=db)
                ),
                giveups=int(self.metrics.value("connector.giveups", db=db)),
                backoff_seconds=self.metrics.value(
                    "connector.backoff_seconds", db=db
                ),
                fastfails=int(
                    self.metrics.value("connector.breaker_fastfails", db=db)
                ),
            )
            for db in names
        }
        return ResilienceSummary(by_connector=by_connector)

    def trace_summary(self) -> Dict[str, float]:
        """Flat numbers for the bench harness's :class:`RunRecord`."""
        root = self.root
        spans = list(root.iter_spans())
        return {
            "spans": float(len(spans)),
            "events": float(sum(len(s.events) for s in spans)),
            "transfers": float(len(self.transfers)),
            "wall_seconds": root.wall_seconds,
            "sim_seconds": root.sim_seconds,
            "net_seconds": sum(r.seconds for r in self.transfers),
            "backoff_seconds": root.subtree_backoff_seconds(),
        }

    # -- textual export ------------------------------------------------

    def explain_tree(self) -> str:
        """EXPLAIN ANALYZE-style rendering of the span tree."""
        lines: List[str] = []

        def describe(span: Span) -> str:
            if span.timebase == "schedule":
                timing = (
                    f"sim {span.sim_start:.3f}s -> {span.sim_end:.3f}s"
                )
            elif span.kind == "operator":
                timing = f"rows_out={span.attributes.get('rows_out', 0)}"
            else:
                timing = (
                    f"{span.seconds:.4f}s "
                    f"(wall {span.wall_seconds:.4f}s "
                    f"+ sim {span.sim_seconds:.4f}s)"
                )
            extras = []
            if span.records:
                moved = sum(r.payload_bytes for r in span.records)
                extras.append(
                    f"{len(span.records)} transfer(s), {moved} B"
                )
            if span.backoff_seconds:
                extras.append(f"backoff {span.backoff_seconds:.3f}s")
            named = [e.name for e in span.events if e.name != "transfer"]
            if named:
                extras.append(f"events: {', '.join(named[:6])}")
            if span.status != "ok":
                extras.append(f"status={span.status}")
            tail = f"  [{'; '.join(extras)}]" if extras else ""
            return f"{span.name} ({span.kind}): {timing}{tail}"

        def walk(span: Span, depth: int) -> None:
            lines.append("  " * depth + describe(span))
            for child in span.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    # -- Chrome trace-event export -------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """Export the span tree as Chrome trace-event JSON.

        Two tracks: ``tid=1`` carries the middleware timeline (spans on
        the combined wall+sim clock, plus instant events for transfers,
        DDL, retries, and breaker transitions); ``tid=2`` carries the
        schedule-simulation timebase (per-task intervals).  Load the
        file in ``chrome://tracing`` or Perfetto.
        """
        root = self.root
        wall0 = root.wall_start
        scale = 1_000_000.0  # seconds → microseconds

        def us(value: float) -> float:
            return round(value * scale, 3)

        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"xdb query {self.query_id}"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "ts": 0,
                "args": {"name": "middleware (wall+sim)"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 2,
                "ts": 0,
                "args": {"name": "schedule simulation"},
            },
        ]
        for span in root.iter_spans():
            if span.timebase == "schedule":
                ts = us(span.sim_start)
                dur = us(max(span.sim_seconds, 0.0))
                tid = 2
            else:
                ts = us((span.wall_start - wall0) + span.sim_start)
                dur = us(max(span.wall_seconds + span.sim_seconds, 0.0))
                tid = 1
            args: Dict[str, object] = dict(span.attributes)
            args["status"] = span.status
            if span.records:
                args["transfers"] = len(span.records)
            if span.backoff_seconds:
                args["backoff_seconds"] = span.backoff_seconds
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
            for event in span.events:
                events.append(
                    {
                        "name": event.name,
                        "cat": "event",
                        "ph": "i",
                        "ts": us((event.wall_at - wall0) + event.sim_at),
                        "pid": 1,
                        "tid": tid,
                        "s": "t",
                        "args": dict(event.attributes),
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "query_id": self.query_id,
                "label": self.label,
                "metrics": self.metrics.snapshot(),
            },
        }


def validate_chrome_trace(payload: object) -> int:
    """Validate Chrome trace-event JSON structure; returns event count.

    Enforces the subset of the trace-event format this exporter emits:
    a ``traceEvents`` list whose entries carry ``name``/``ph``/``ts``/
    ``pid``/``tid``, with a non-negative ``dur`` on complete (``X``)
    events.  Raises :class:`ValueError` on the first violation.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace payload needs a non-empty traceEvents list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"traceEvents[{index}].name must be a string")
        if event["ph"] not in ("X", "i", "M", "B", "E", "C"):
            raise ValueError(
                f"traceEvents[{index}].ph {event['ph']!r} not a known phase"
            )
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"traceEvents[{index}].ts must be numeric")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{index}] is 'X' but has no valid dur"
                )
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{index}].args must be an object")
    return len(events)


def add_event(name: str, **attributes: object) -> None:
    """Annotate the active context's current span (no-op without one)."""
    ctx = current_context()
    if ctx is not None:
        ctx.tracer.add_event(name, **attributes)
