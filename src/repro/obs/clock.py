"""The wall-clock source for the observability spine.

This module is the **only** place in the codebase allowed to touch
``time.perf_counter`` (enforced by a ruff ``flake8-tidy-imports``
banned-API rule): every other layer measures real time through
:func:`wall_now`, so wall-clock reads always flow into the tracer's
span intervals instead of ad-hoc module-level timing.

The *simulated* clock is the other half of the clock duality and lives
on the :class:`~repro.obs.tracer.Tracer` — it advances only when
simulated cost is attributed (network transfers, retry backoff), never
by itself.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``)."""
    return time.perf_counter()


def thread_cpu_now() -> float:
    """CPU seconds consumed by the *calling thread* (``time.thread_time``).

    The worker pool measures each branch's busy time with this clock so
    GIL contention between sibling branches does not inflate per-branch
    work — the numbers stay comparable to a single-threaded run, which
    is what the derived pool-makespan model needs.
    """
    return time.thread_time()
