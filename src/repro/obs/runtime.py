"""Ambient query-context propagation.

The middleware threads its :class:`~repro.obs.context.QueryContext`
explicitly through the layers it owns (client → delegation engine →
connectors), but some producers of observations are reached *through*
an autonomous component — the network substrate records a transfer from
inside an engine's FDW fetch, a circuit breaker transitions from deep
inside the guarded call path.  Those layers look up the **active**
context here instead of growing a context parameter on every call
signature (the OpenTelemetry "current span" pattern).

The stack is a plain module-level list: the whole federation is a
single-threaded simulation, and a deterministic LIFO keeps re-entrant
activations (a prepared query executed while another context is live)
well-defined.  This module deliberately imports nothing from the rest
of ``repro`` so every layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import List, Optional

_STACK: List[object] = []


def push_context(ctx: object) -> None:
    """Make ``ctx`` the active observation context."""
    _STACK.append(ctx)


def pop_context(ctx: object) -> None:
    """Deactivate ``ctx``; it must be the innermost active context."""
    if not _STACK or _STACK[-1] is not ctx:
        raise RuntimeError(
            "observation context stack corrupted: popped context is not "
            "the innermost active one"
        )
    _STACK.pop()


def current_context() -> Optional[object]:
    """The innermost active context, or ``None`` outside any query."""
    return _STACK[-1] if _STACK else None
