"""Ambient query-context propagation.

The middleware threads its :class:`~repro.obs.context.QueryContext`
explicitly through the layers it owns (client → delegation engine →
connectors), but some producers of observations are reached *through*
an autonomous component — the network substrate records a transfer from
inside an engine's FDW fetch, a circuit breaker transitions from deep
inside the guarded call path.  Those layers look up the **active**
context here instead of growing a context parameter on every call
signature (the OpenTelemetry "current span" pattern).

The stack is **thread-local**: each submission runs start-to-finish on
one thread, and the overload benchmark drives many concurrent client
threads over one shared deployment — a per-thread LIFO keeps every
thread's observations attributed to its own query while re-entrant
activations on the same thread (a prepared query executed while
another context is live) stay well-defined.  This module deliberately
imports nothing from the rest of ``repro`` so every layer can depend
on it without cycles.
"""

from __future__ import annotations

import threading
from typing import List, Optional

_LOCAL = threading.local()


def _stack() -> List[object]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def push_context(ctx: object) -> None:
    """Make ``ctx`` the active observation context on this thread."""
    _stack().append(ctx)


def pop_context(ctx: object) -> None:
    """Deactivate ``ctx``; it must be the innermost active context."""
    stack = _stack()
    if not stack or stack[-1] is not ctx:
        raise RuntimeError(
            "observation context stack corrupted: popped context is not "
            "the innermost active one"
        )
    stack.pop()


def current_context() -> Optional[object]:
    """This thread's innermost active context (None outside queries)."""
    stack = _stack()
    return stack[-1] if stack else None
