"""Benchmark harness: scenario builders, runners, and paper-style
reporting for every table and figure of the evaluation (§VI)."""

from repro.bench.scenarios import (
    HETEROGENEOUS_PROFILES,
    build_tpch_deployment,
    sf_label,
)
from repro.bench.harness import (
    RunRecord,
    SystemSet,
    build_systems,
    run_garlic,
    run_presto,
    run_sclera,
    run_xdb,
    verify_equivalence,
)
from repro.bench.reporting import format_table, print_banner

__all__ = [
    "HETEROGENEOUS_PROFILES",
    "RunRecord",
    "SystemSet",
    "build_systems",
    "build_tpch_deployment",
    "format_table",
    "print_banner",
    "run_garlic",
    "run_presto",
    "run_sclera",
    "run_xdb",
    "sf_label",
    "verify_equivalence",
]
