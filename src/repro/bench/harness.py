"""Runners: execute one query on one system and normalize the metrics.

Every run executes under a :class:`~repro.obs.context.QueryContext`
(XDB creates its own; baselines are wrapped here), so each
:class:`RunRecord` isolates exactly one query execution — runtime,
data-transfer decomposition (intra-federation vs. to-the-cloud), and
plan statistics where applicable — from the transfers *attributed to
that context*, never from ledger index marks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.garlic import GarlicSystem
from repro.baselines.presto import PrestoSystem
from repro.baselines.sclera import ScleraSystem
from repro.core.client import XDB
from repro.engine.profiles import load_calibrated
from repro.engine.result import Result
from repro.errors import ReproError
from repro.federation.deployment import Deployment
from repro.net.metrics import site_breakdown
from repro.obs.context import QueryContext

#: default calibrated engine-profile overlay, emitted by
#: ``python -m repro.calibrate`` (repo-relative)
_DEFAULT_CALIBRATED_PROFILES = os.path.join(
    os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    ),
    "benchmarks",
    "results",
    "calibrated_profiles.json",
)


def apply_calibrated_profiles(path: Optional[str] = None) -> bool:
    """Install the calibrated engine-profile overlay, if one exists.

    Resolution order: explicit ``path`` argument, the
    ``XDB_CALIBRATED_PROFILES`` environment variable, then the
    repository's ``benchmarks/results/calibrated_profiles.json``.
    Returns True when an overlay was loaded.
    """
    candidate = (
        path
        or os.environ.get("XDB_CALIBRATED_PROFILES")
        or _DEFAULT_CALIBRATED_PROFILES
    )
    if not os.path.exists(candidate):
        return False
    load_calibrated(candidate)
    return True


@dataclass
class RunRecord:
    """Normalized metrics for one (system, query) execution."""

    system: str
    query: str
    total_seconds: float
    transfer_seconds: float
    processing_seconds: float
    #: bytes moved over the network, total
    bytes_total: int
    #: bytes entering the cloud site (mediator/middleware ingress)
    bytes_to_cloud: int
    #: bytes crossing site boundaries (geo scenario accounting)
    bytes_cross_site: int
    rows_returned: int
    result: Optional[Result] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: flat span/transfer totals from the run's observation context
    trace_summary: Optional[Dict[str, float]] = None

    @property
    def megabytes_total(self) -> float:
        return self.bytes_total / 1_000_000.0

    @property
    def megabytes_to_cloud(self) -> float:
        return self.bytes_to_cloud / 1_000_000.0

    @property
    def megabytes_cross_site(self) -> float:
        return self.bytes_cross_site / 1_000_000.0


def run_xdb(
    deployment: Deployment,
    query: str,
    query_name: str = "query",
    xdb: Optional[XDB] = None,
    keep_result: bool = True,
    qos=None,
) -> RunRecord:
    """Execute ``query`` through XDB and collect normalized metrics.

    ``qos`` (a :class:`~repro.qos.QoSPolicy`) opts the run into
    admission control and a per-query deadline; the resulting
    admission/deadline numbers land in ``record.extra``.
    """
    system = xdb or XDB(deployment)
    report = system.submit(query, qos=qos)
    ctx = report.context
    total, to_cloud, cross_site = site_breakdown(
        ctx.transfers, deployment.network
    )
    processing = sum(
        timing.proc_seconds for timing in report.schedule.tasks.values()
    )
    record = RunRecord(
        system="XDB",
        query=query_name,
        total_seconds=report.total_seconds,
        transfer_seconds=max(
            report.schedule.total_seconds - processing, 0.0
        ),
        processing_seconds=processing,
        bytes_total=total,
        bytes_to_cloud=to_cloud,
        bytes_cross_site=cross_site,
        rows_returned=len(report.result),
        result=report.result if keep_result else None,
        extra={
            "prep": report.phases["prep"],
            "lopt": report.phases["lopt"],
            "ann": report.phases["ann"],
            "exec": report.phases["exec"],
            "consultations": float(report.consultations),
            "tasks": float(report.plan.task_count()),
        },
        trace_summary=ctx.trace_summary(),
    )
    if report.qos is not None:
        record.extra["admission_wait_seconds"] = (
            report.qos.admission_wait_seconds
            + report.qos.admission_sim_seconds
        )
        if report.qos.deadline_remaining_seconds is not None:
            record.extra["deadline_remaining_seconds"] = (
                report.qos.deadline_remaining_seconds
            )
    return record


def _run_baseline(
    system,
    deployment: Deployment,
    query: str,
    query_name: str,
    keep_result: bool,
) -> RunRecord:
    # Baselines have no context of their own: wrap the run so their
    # transfers are attributed to (and sliced from) a fresh one.
    with QueryContext(label=f"{query_name}:{type(system).__name__}") as ctx:
        report = system.run(query)
    total, to_cloud, cross_site = site_breakdown(
        ctx.transfers, deployment.network
    )
    return RunRecord(
        system=report.system,
        query=query_name,
        total_seconds=report.total_seconds,
        transfer_seconds=report.transfer_seconds,
        processing_seconds=report.processing_seconds,
        bytes_total=total,
        bytes_to_cloud=to_cloud,
        bytes_cross_site=cross_site,
        rows_returned=len(report.result),
        result=report.result if keep_result else None,
        extra=dict(report.details)
        if hasattr(report, "details")
        else {},
        trace_summary=ctx.trace_summary(),
    )


def run_garlic(
    deployment: Deployment,
    query: str,
    query_name: str = "query",
    system: Optional[GarlicSystem] = None,
    keep_result: bool = True,
) -> RunRecord:
    system = system or GarlicSystem(deployment)
    return _run_baseline(system, deployment, query, query_name, keep_result)


def run_presto(
    deployment: Deployment,
    query: str,
    query_name: str = "query",
    workers: int = 4,
    system: Optional[PrestoSystem] = None,
    keep_result: bool = True,
) -> RunRecord:
    system = system or PrestoSystem(deployment, workers=workers)
    return _run_baseline(system, deployment, query, query_name, keep_result)


def run_sclera(
    deployment: Deployment,
    query: str,
    query_name: str = "query",
    system: Optional[ScleraSystem] = None,
    keep_result: bool = True,
) -> RunRecord:
    system = system or ScleraSystem(deployment)
    return _run_baseline(system, deployment, query, query_name, keep_result)


@dataclass
class SystemSet:
    """All four systems over one deployment, with warm metadata.

    Building the systems once per scenario (and pre-gathering catalog
    metadata) keeps per-query measurements free of one-time setup —
    matching the paper's methodology of reporting per-query averages
    over repeated runs.
    """

    deployment: Deployment
    xdb: XDB
    garlic: GarlicSystem
    presto: PrestoSystem
    sclera: ScleraSystem

    def run_all(
        self, query: str, query_name: str, check: bool = True
    ) -> Dict[str, RunRecord]:
        records = {
            "XDB": run_xdb(self.deployment, query, query_name, xdb=self.xdb),
            "Garlic": run_garlic(
                self.deployment, query, query_name, system=self.garlic
            ),
            "Presto": run_presto(
                self.deployment, query, query_name, system=self.presto
            ),
            "Sclera": run_sclera(
                self.deployment, query, query_name, system=self.sclera
            ),
        }
        if check:
            verify_equivalence(list(records.values()))
        return records


def build_systems(
    deployment: Deployment,
    presto_workers: int = 4,
    calibrated: Optional[bool] = None,
) -> SystemSet:
    """Construct and warm all four systems over ``deployment``.

    The fidelity benchmarks cost with the hand-set *testbed* profile
    constants by default: the paper's figures are defined by the
    emulated testbed (Hive's multi-second startup, per-engine
    per-tuple costs), and the calibration harness fits constants to
    this repository's real in-memory executor instead — applying that
    overlay collapses the emulated mediator baselines and inverts the
    micro-scale comparisons (see EXPERIMENTS.md, "Calibrated
    profiles").  Opt in to the calibrated overlay with
    ``calibrated=True``, the ``--calibrated`` flag of
    ``repro.bench.run``, or the ``XDB_CALIBRATED`` environment
    variable; the overlay itself is resolved by
    :func:`apply_calibrated_profiles`.
    """
    if calibrated is None:
        calibrated = bool(os.environ.get("XDB_CALIBRATED"))
    if calibrated:
        apply_calibrated_profiles()
    xdb = XDB(deployment)
    garlic = GarlicSystem(deployment)
    presto = PrestoSystem(deployment, workers=presto_workers)
    sclera = ScleraSystem(deployment)
    # Warm the metadata caches so measurements isolate query work.
    xdb.warm_metadata()
    garlic.catalog.refresh()
    presto.catalog.refresh()
    sclera.catalog.refresh()
    deployment.reset_metrics()
    return SystemSet(deployment, xdb, garlic, presto, sclera)


def verify_equivalence(records: List[RunRecord], places: int = 2) -> None:
    """Assert all runs returned the same multiset of rows (rounded)."""

    def normalize(result: Result):
        rows = []
        for row in result.rows:
            rows.append(
                tuple(
                    round(value, places) if isinstance(value, float) else value
                    for value in row
                )
            )
        return sorted(map(repr, rows))

    keeper = [r for r in records if r.result is not None]
    if len(keeper) < 2:
        return
    reference = normalize(keeper[0].result)
    for record in keeper[1:]:
        candidate = normalize(record.result)
        if candidate != reference:
            raise ReproError(
                f"result mismatch between {keeper[0].system} and "
                f"{record.system} on {record.query}: "
                f"{len(reference)} vs {len(candidate)} normalized rows"
            )
