"""Scenario builders for the evaluation experiments.

The paper's testbed is reproduced as: one deployment per (table
distribution × topology × engine mix), loaded with TPC-H data at a
micro scale factor.  ``MICRO_SF`` maps the paper's sf 1/10/50/100 onto
laptop-scale equivalents with identical relative scaling.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.federation.deployment import Deployment
from repro.workloads.tpch.distributions import databases_for, distribution
from repro.workloads.tpch.generator import TPCHData, generate_cached

#: paper scale factor -> micro scale factor used by the benchmarks
MICRO_SF: Dict[int, float] = {1: 0.002, 10: 0.02, 50: 0.1, 100: 0.2}

#: The heterogeneous mix of Fig. 10: MariaDB for db2, Hive for db3,
#: PostgreSQL everywhere else.
HETEROGENEOUS_PROFILES: Dict[str, str] = {"db2": "mariadb", "db3": "hive"}


def sf_label(micro_sf: float) -> str:
    """Human label mapping a micro sf back to the paper's scale."""
    for paper_sf, micro in MICRO_SF.items():
        if abs(micro - micro_sf) < 1e-12:
            return f"sf{paper_sf}"
    return f"micro-sf {micro_sf}"


def build_tpch_deployment(
    td: str = "TD1",
    scale_factor: float = 0.002,
    topology: str = "onprem",
    profiles: Optional[Dict[str, str]] = None,
    seed: int = 19921,
    middleware_site: Optional[str] = None,
) -> Tuple[Deployment, TPCHData]:
    """Create a deployment for table distribution ``td`` and load data.

    ``profiles`` overrides engine vendors per database name (default:
    PostgreSQL everywhere, the paper's homogeneous setup).
    ``middleware_site="cloud"`` reproduces the §VI-C managed-cloud
    scenario for the data-transfer experiments.
    """
    placement = distribution(td)
    db_names = databases_for(td)
    vendor = {name: "postgres" for name in db_names}
    if profiles:
        vendor.update(
            {k: v for k, v in profiles.items() if k in vendor}
        )
    deployment = Deployment(
        vendor, topology=topology, middleware_site=middleware_site
    )
    data = generate_cached(scale_factor, seed)
    deployment.load_distribution(placement, data.tables)
    return deployment, data
