"""Standalone experiment runner: ``python -m repro.bench.run``.

Runs a (systems × queries × distribution) grid without pytest and
prints paper-style tables — handy for quick exploration at custom
scale factors.

Usage::

    python -m repro.bench.run [--td TD1] [--sf 0.005] [--topology onprem]
                              [--queries Q3,Q5] [--systems xdb,garlic]
                              [--hetero] [--presto-workers 4]
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.bench.harness import (
    RunRecord,
    build_systems,
    run_garlic,
    run_presto,
    run_sclera,
    run_xdb,
)
from repro.bench.reporting import format_table, print_banner
from repro.bench.scenarios import (
    HETEROGENEOUS_PROFILES,
    build_tpch_deployment,
)
from repro.workloads.tpch import QUERIES, query

SYSTEM_CHOICES = ("xdb", "garlic", "presto", "sclera")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.run",
        description="Run the cross-database evaluation grid.",
    )
    parser.add_argument("--td", default="TD1", help="table distribution")
    parser.add_argument(
        "--sf", type=float, default=0.005, help="micro scale factor"
    )
    parser.add_argument(
        "--topology", default="onprem", choices=("onprem", "geo")
    )
    parser.add_argument(
        "--queries",
        default=",".join(sorted(QUERIES, key=lambda q: int(q[1:]))),
        help="comma-separated query names (e.g. Q3,Q5)",
    )
    parser.add_argument(
        "--systems",
        default="xdb,garlic,presto,sclera",
        help=f"comma-separated subset of {SYSTEM_CHOICES}",
    )
    parser.add_argument(
        "--hetero",
        action="store_true",
        help="use the Fig. 10 heterogeneous engine mix",
    )
    parser.add_argument("--presto-workers", type=int, default=4)
    parser.add_argument(
        "--calibrated",
        action="store_true",
        help="apply the executor-fitted profile overlay "
        "(benchmarks/results/calibrated_profiles.json) instead of the "
        "default testbed constants; see EXPERIMENTS.md for the deltas",
    )
    return parser.parse_args(argv)


def run_grid(args: argparse.Namespace) -> List[List[object]]:
    """Execute the grid; returns printable table rows."""
    systems_wanted = [
        name.strip().lower() for name in args.systems.split(",") if name
    ]
    unknown = set(systems_wanted) - set(SYSTEM_CHOICES)
    if unknown:
        raise SystemExit(f"unknown systems: {sorted(unknown)}")

    deployment, data = build_tpch_deployment(
        args.td,
        args.sf,
        topology=args.topology,
        profiles=HETEROGENEOUS_PROFILES if args.hetero else None,
    )
    systems = build_systems(
        deployment,
        presto_workers=args.presto_workers,
        calibrated=getattr(args, "calibrated", False),
    )

    runners = {
        "xdb": lambda sql, name: run_xdb(
            deployment, sql, name, xdb=systems.xdb
        ),
        "garlic": lambda sql, name: run_garlic(
            deployment, sql, name, system=systems.garlic
        ),
        "presto": lambda sql, name: run_presto(
            deployment, sql, name, system=systems.presto
        ),
        "sclera": lambda sql, name: run_sclera(
            deployment, sql, name, system=systems.sclera
        ),
    }

    rows: List[List[object]] = []
    for query_name in (q.strip().upper() for q in args.queries.split(",")):
        sql = query(query_name)
        records: Dict[str, RunRecord] = {}
        for system_name in systems_wanted:
            records[system_name] = runners[system_name](sql, query_name)
        baseline = records.get("xdb")
        for system_name, record in records.items():
            relative = (
                f"{record.total_seconds / baseline.total_seconds:.1f}x"
                if baseline and baseline.total_seconds
                else "-"
            )
            rows.append(
                [
                    query_name,
                    record.system,
                    record.total_seconds,
                    record.transfer_seconds,
                    record.megabytes_total,
                    relative,
                ]
            )
    return rows


def main(argv=None) -> int:
    args = parse_args(argv)
    print_banner(
        f"{args.td} @ micro-sf {args.sf} ({args.topology}"
        f"{', heterogeneous' if args.hetero else ''})"
    )
    rows = run_grid(args)
    print(
        format_table(
            ["query", "system", "total_s", "xfer_s", "moved_MB", "vs XDB"],
            rows,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
