"""Terminal reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_banner(title: str) -> None:
    rule = "=" * max(len(title), 8)
    print(f"\n{rule}\n{title}\n{rule}")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table rendering for paper-style outputs."""
    rendered: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
