"""Admission control: per-engine concurrency tokens + bounded queues.

XDB is a middleware with no execution engine of its own, so the only
resource it can protect is the autonomous DBMSes it delegates to.  The
:class:`WorkloadGate` is that protection: every engine gets
``max_concurrent`` concurrency tokens and a bounded waiting room of
``max_queue`` slots.  A submission acquires one token per engine its
delegation plan touches — in globally sorted engine order, so
concurrent multi-engine acquisitions cannot deadlock — holds them
through delegation, execution, and cleanup, then releases.

**Load shedding.**  When an engine's waiting room is full the gate
sheds work instead of letting it time out silently:

* an arrival with *higher* priority than the lowest-priority waiter
  evicts that waiter (the waiter's ``acquire`` raises
  :class:`~repro.errors.OverloadError`) and takes its queue slot;
* otherwise the arrival itself is shed with an ``OverloadError``
  carrying a ``retry_after_seconds`` hint scaled by the queue depth.

A waiter whose deadline or ``max_wait_seconds`` runs out while queued
leaves with :class:`~repro.errors.DeadlineExceeded` (phase
``"admission"``) or ``OverloadError`` — never a bare timeout.

**Clocks.**  Queue waiting is real (``threading`` primitives — the
overload benchmark drives the gate from genuinely concurrent client
threads) and is charged against the waiter's deadline 1:1.  On top of
that, ``queue_slot_sim_seconds`` charges a *simulated* penalty per
queue position ahead at enqueue time, modelling the service time of
the queue ahead on the deterministic clock the rest of the federation
uses; the client attributes it to the query's ``admit`` span.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import OverloadError
from repro.obs.clock import wall_now
from repro.qos.deadline import Deadline
from repro.qos.policy import PRIORITY_NORMAL

_WAITER_SEQ = itertools.count(1)


@dataclass(frozen=True)
class GateConfig:
    """Capacity limits every engine under a gate shares."""

    #: concurrency tokens per engine (admitted queries holding one)
    max_concurrent: int = 4
    #: bounded waiting-room slots per engine (0 = shed immediately)
    max_queue: int = 16
    #: longest real wait in the queue before a deadline-less caller is
    #: shed (deadline-bound callers are bounded by their own budget)
    max_wait_seconds: float = 30.0
    #: base of the ``retry_after_seconds`` hint on shed (scaled by the
    #: shedding engine's queue depth)
    retry_after_seconds: float = 0.25
    #: simulated seconds charged per queue position ahead at enqueue —
    #: the deterministic model of queueing delay (0 disables)
    queue_slot_sim_seconds: float = 0.0


class _Waiter:
    """One queued acquisition attempt for one engine."""

    __slots__ = ("priority", "seq", "event", "granted", "shed")

    def __init__(self, priority: int):
        self.priority = priority
        self.seq = next(_WAITER_SEQ)
        self.event = threading.Event()
        self.granted = False
        self.shed = False


@dataclass
class _EngineState:
    active: int = 0
    waiters: List[_Waiter] = field(default_factory=list)


class AdmissionLease:
    """Tokens held by one admitted query; release exactly once."""

    def __init__(
        self,
        gate: "WorkloadGate",
        engines: Sequence[str],
        waited_seconds: float,
        sim_penalty_seconds: float,
        priority: int,
    ):
        self._gate = gate
        self.engines = list(engines)
        #: real seconds spent queued across all engine acquisitions
        self.waited_seconds = waited_seconds
        #: simulated queue penalty to attribute to the admit span
        self.sim_penalty_seconds = sim_penalty_seconds
        self.priority = priority
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            for db in self.engines:
                self._gate._release_one(db)

    def __enter__(self) -> "AdmissionLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class WorkloadGate:
    """Per-engine admission control shared by every client of a
    deployment (thread-safe)."""

    def __init__(self, config: Optional[GateConfig] = None):
        self.config = config or GateConfig()
        self._lock = threading.Lock()
        self._engines: Dict[str, _EngineState] = {}
        #: lifetime counters (the overload benchmark reads these)
        self.admitted = 0
        self.sheds = 0
        self.evictions = 0
        self.wait_timeouts = 0
        self.total_wait_seconds = 0.0

    # -- introspection -------------------------------------------------

    def _state(self, db: str) -> _EngineState:
        state = self._engines.get(db)
        if state is None:
            state = self._engines[db] = _EngineState()
        return state

    def saturated(self, db: str) -> bool:
        """No free token for ``db`` right now (callers would queue)."""
        with self._lock:
            state = self._engines.get(db)
            return (
                state is not None
                and state.active >= self.config.max_concurrent
            )

    def allow_hedge(self, engines) -> bool:
        """Whether speculative (hedged) duplicates may launch right now.

        A hedge is pure extra load; it only helps when there is spare
        capacity to absorb it.  The probe is advisory — no token is
        taken — and denies hedging as soon as any engine the query was
        admitted on is saturated.
        """
        return not any(self.saturated(db) for db in engines)

    def depth(self, db: str) -> int:
        with self._lock:
            state = self._engines.get(db)
            return len(state.waiters) if state is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                db: {"active": s.active, "queued": len(s.waiters)}
                for db, s in sorted(self._engines.items())
            }

    # -- acquisition ---------------------------------------------------

    def acquire(
        self,
        engines: Sequence[str],
        priority: int = PRIORITY_NORMAL,
        deadline: Optional[Deadline] = None,
        block: bool = True,
    ) -> AdmissionLease:
        """Take one token per engine (sorted order; all or nothing).

        Raises :class:`OverloadError` when shed and
        :class:`DeadlineExceeded` when the caller's budget expires in
        the queue; either way every token already taken is returned.
        """
        wanted = sorted(set(engines))
        granted: List[str] = []
        waited = 0.0
        sim_penalty = 0.0
        try:
            for db in wanted:
                db_waited, db_penalty = self._acquire_one(
                    db, priority, deadline, block
                )
                granted.append(db)
                waited += db_waited
                sim_penalty += db_penalty
        except BaseException:
            for db in granted:
                self._release_one(db)
            raise
        with self._lock:
            self.admitted += 1
            self.total_wait_seconds += waited
        return AdmissionLease(self, granted, waited, sim_penalty, priority)

    def _retry_after(self, queue_depth: int) -> float:
        return self.config.retry_after_seconds * (queue_depth + 1)

    def _acquire_one(
        self,
        db: str,
        priority: int,
        deadline: Optional[Deadline],
        block: bool,
    ):
        cfg = self.config
        with self._lock:
            state = self._state(db)
            # A free token is taken straight away even past waiters:
            # release() hands tokens to waiters directly, so a waiter
            # can only be pending while every token is held.
            if state.active < cfg.max_concurrent:
                state.active += 1
                return 0.0, 0.0
            if not block:
                self.sheds += 1
                raise self._overload(db, priority, len(state.waiters))
            if len(state.waiters) >= cfg.max_queue:
                victim = self._evictable(state, priority)
                if victim is None:
                    # The arrival is (one of) the lowest priority here:
                    # shed it, not an older equal-priority waiter.
                    self.sheds += 1
                    raise self._overload(db, priority, len(state.waiters))
                state.waiters.remove(victim)
                victim.shed = True
                victim.event.set()
                self.evictions += 1
            penalty = len(state.waiters) * cfg.queue_slot_sim_seconds
            waiter = _Waiter(priority)
            state.waiters.append(waiter)

        timeout = cfg.max_wait_seconds
        if deadline is not None:
            timeout = min(timeout, max(deadline.remaining_seconds, 0.0))
        start = wall_now()
        waiter.event.wait(timeout)
        waited = wall_now() - start
        if deadline is not None:
            deadline.consume(waited)

        with self._lock:
            state = self._state(db)
            if waiter.granted:
                return waited, penalty
            if waiter.shed:
                self.sheds += 1
                raise self._overload(
                    db, priority, len(state.waiters), evicted=True
                )
            # Timed out (or the deadline ran dry) while queued.
            if waiter in state.waiters:
                state.waiters.remove(waiter)
            queue_depth = len(state.waiters)
            self.wait_timeouts += 1
        if deadline is not None and deadline.expired:
            raise deadline.exceeded("admission", detail=f"queue@{db}")
        self.sheds += 1
        raise OverloadError(
            f"admission wait for engine {db!r} exceeded "
            f"{timeout:.3f}s (queue depth {queue_depth})",
            db=db,
            retry_after_seconds=self._retry_after(queue_depth),
            priority=priority,
        )

    @staticmethod
    def _evictable(
        state: _EngineState, priority: int
    ) -> Optional[_Waiter]:
        """The waiter a strictly higher-priority arrival may evict:
        the youngest of the lowest-priority waiters (older waiters of
        equal priority keep their accumulated progress)."""
        if not state.waiters:
            return None
        victim = min(state.waiters, key=lambda w: (w.priority, -w.seq))
        return victim if victim.priority < priority else None

    def _overload(
        self, db: str, priority: int, queue_depth: int, evicted: bool = False
    ) -> OverloadError:
        why = (
            "evicted by a higher-priority query"
            if evicted
            else f"waiting room is full ({queue_depth} queued)"
        )
        return OverloadError(
            f"engine {db!r} is overloaded: {why}",
            db=db,
            retry_after_seconds=self._retry_after(queue_depth),
            priority=priority,
        )

    # -- release -------------------------------------------------------

    def _release_one(self, db: str) -> None:
        with self._lock:
            state = self._state(db)
            if state.waiters:
                # Hand the token to the highest-priority, oldest waiter
                # directly: active count is unchanged.
                winner = min(
                    state.waiters, key=lambda w: (-w.priority, w.seq)
                )
                state.waiters.remove(winner)
                winner.granted = True
                winner.event.set()
            elif state.active > 0:
                state.active -= 1
