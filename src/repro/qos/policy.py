"""Per-query QoS: what one submission is allowed to cost and to shed.

A :class:`QoSPolicy` travels with one query submission (``XDB.submit``
/ ``PreparedQuery.execute``) and declares

* its **deadline** — the consumable budget of
  :class:`~repro.qos.deadline.Deadline` seconds, with an optional
  per-call cap and a rollback grace budget;
* its **priority** — what the admission gate sheds first under
  overload (``PRIORITY_LOW`` waiters go before ``PRIORITY_NORMAL``,
  which go before ``PRIORITY_HIGH``);
* its **staleness bound** — an opt-in contract for graceful
  degradation: a prepared query with ``max_staleness_seconds`` set may
  be answered from its existing materialization snapshots (skipping
  the refresh) when an authoritative engine is saturated or its
  breaker is open, provided the snapshots are no older than the bound
  on the federation's simulated clock.  The served staleness is
  recorded in ``XDBReport.qos``.

The :class:`QoSReport` is the submission-side receipt: admission wait,
deadline spend, and whether (and how stale) a degraded answer was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.qos.deadline import DEFAULT_GRACE_SECONDS, Deadline

#: Priority levels the admission gate sheds between (higher survives).
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2


@dataclass(frozen=True)
class QoSPolicy:
    """One query's quality-of-service contract."""

    #: total deadline budget (None = no deadline, legacy behavior)
    deadline_seconds: Optional[float] = None
    #: per-call ceiling below the remaining deadline (the tentpole's
    #: ``min(remaining_deadline, per_call_cap)`` rule)
    per_call_cap_seconds: Optional[float] = None
    #: cleanup budget once the deadline has expired mid-delegation
    grace_seconds: float = DEFAULT_GRACE_SECONDS
    #: admission priority (shed lowest first)
    priority: int = PRIORITY_NORMAL
    #: opt-in staleness bound for degraded (snapshot) answers; None
    #: means the query insists on authoritative data
    max_staleness_seconds: Optional[float] = None
    #: opt-in *partial results*: when a partition shard has lost every
    #: healthy holder, answer from the surviving shards instead of
    #: failing, provided the row-weighted completeness stays at or
    #: above ``completeness_floor``
    allow_partial: bool = False
    #: minimum acceptable completeness (fraction of partitioned rows
    #: still reachable) for a partial answer; only consulted when
    #: ``allow_partial`` is set
    completeness_floor: float = 0.0
    #: opt-in straggler hedging: a parallel-union branch running longer
    #: than ``hedge_multiplier`` × the median of its finished siblings
    #: gets a speculative duplicate; first result wins, the loser is
    #: cooperatively cancelled.  None disables hedging.
    hedge_multiplier: Optional[float] = None

    def make_deadline(self) -> Optional[Deadline]:
        """Build this policy's :class:`Deadline` (None without one)."""
        if self.deadline_seconds is None:
            return None
        return Deadline(
            self.deadline_seconds,
            per_call_cap_seconds=self.per_call_cap_seconds,
            grace_seconds=self.grace_seconds,
        )


@dataclass
class QoSReport:
    """What one submission's QoS machinery actually did."""

    priority: int = PRIORITY_NORMAL
    #: the submitted deadline budget (None = no deadline)
    deadline_seconds: Optional[float] = None
    #: budget left when the result came back
    deadline_remaining_seconds: Optional[float] = None
    #: real seconds spent queued at the admission gate
    admission_wait_seconds: float = 0.0
    #: simulated queue penalty charged by the gate
    admission_sim_seconds: float = 0.0
    #: engines the submission held concurrency tokens for
    admitted_engines: List[str] = field(default_factory=list)
    #: True when the answer was served from materialization snapshots
    #: instead of refreshing against the authoritative engines
    stale_read: bool = False
    #: snapshot age (simulated seconds) when ``stale_read`` is True
    staleness_seconds: Optional[float] = None
    #: why the read degraded: "overload", "breaker-open", or "drift"
    stale_reason: str = ""
    #: True when the answer omits partition shards that lost every
    #: healthy holder (policy-bounded degradation, ``allow_partial``)
    partial: bool = False
    #: row-weighted fraction of the partitioned data the answer covers
    #: (1.0 for a complete answer)
    completeness: float = 1.0
    #: shard tables the partial answer is missing
    missing_partitions: List[str] = field(default_factory=list)

    def describe(self) -> str:
        parts = [f"priority={self.priority}"]
        if self.deadline_seconds is not None:
            parts.append(
                f"deadline {self.deadline_seconds:.3f}s "
                f"(remaining {self.deadline_remaining_seconds:.3f}s)"
            )
        if self.admission_wait_seconds or self.admission_sim_seconds:
            parts.append(
                "admission wait "
                f"{self.admission_wait_seconds + self.admission_sim_seconds:.3f}s"
            )
        if self.stale_read:
            reason = f", {self.stale_reason}" if self.stale_reason else ""
            parts.append(
                f"stale read ({self.staleness_seconds:.3f}s behind{reason})"
            )
        if self.partial:
            missing = ", ".join(self.missing_partitions)
            parts.append(
                f"partial answer ({self.completeness:.1%} complete"
                + (f"; missing {missing}" if missing else "")
                + ")"
            )
        return ", ".join(parts)
