"""Overload robustness: admission control, deadlines, degradation.

The QoS layer protects the autonomous engines from *overload* the way
:mod:`repro.health` protects the federation from *outages*:

* :class:`WorkloadGate` — per-engine concurrency tokens and bounded
  admission queues with priority-aware load shedding
  (:class:`~repro.errors.OverloadError`);
* :class:`Deadline` — per-query consumable time budgets that replace
  the flat per-call timeout as the source of truth
  (:class:`~repro.errors.DeadlineExceeded`), with a bounded grace
  budget for cancellation rollback;
* :class:`QoSPolicy` / :class:`QoSReport` — the per-query contract
  (deadline, priority, staleness bound) and its receipt on the
  :class:`~repro.core.client.XDBReport`.

See ``DESIGN.md`` §6 "Overload & admission control".
"""

from repro.qos.deadline import DEFAULT_GRACE_SECONDS, Deadline
from repro.qos.gate import AdmissionLease, GateConfig, WorkloadGate
from repro.qos.policy import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    QoSPolicy,
    QoSReport,
)

__all__ = [
    "AdmissionLease",
    "DEFAULT_GRACE_SECONDS",
    "Deadline",
    "GateConfig",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "QoSPolicy",
    "QoSReport",
    "WorkloadGate",
]
