"""Per-query deadline budgets: the source of truth for call timeouts.

A :class:`Deadline` is one query's time budget.  It replaces the flat
``RetryPolicy.call_timeout_seconds`` as the authority on how long any
single engine call may take: each guarded connector call gets
``min(remaining_deadline, per_call_cap, policy_cap)``, and retries,
backoff, and admission-queue waits all draw down the *same* budget —
a query cannot spend more than its deadline by splitting the spend
across retries.

**Deadline algebra.**  The budget is measured in *deadline seconds*:

* the query's simulated spend — network transfer time and retry
  backoff attributed to its :class:`~repro.obs.context.QueryContext`
  (read off the tracer's simulated clock via the armed ``clock``
  callable); plus
* explicitly :meth:`consume`-d seconds — real admission-queue waits
  and the gate's simulated queue penalty.

Wall-clock CPU is deliberately *not* charged: middleware CPU at these
scales is microseconds, and charging it would make every expiry test
machine-speed dependent.  The budget is therefore deterministic for a
fixed fault seed, like the rest of the resilience machinery.

**Cancellation grace.**  When a deadline expires mid-delegation the
in-flight DDL must still be rolled back — an expired budget is not a
license to leak catalog objects.  :meth:`grace` opens a bounded side
budget (``grace_seconds``) for exactly that cleanup work; if even the
grace budget runs out, the remaining drops fail fast with
:class:`~repro.errors.DeadlineExceeded` and the rollback accounting
reports them as leaked (never silently dropped).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceeded

#: Default side budget for cancellation rollback (deadline seconds).
DEFAULT_GRACE_SECONDS = 30.0


class Deadline:
    """One query's consumable time budget (deadline seconds)."""

    def __init__(
        self,
        budget_seconds: float,
        per_call_cap_seconds: Optional[float] = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
    ):
        if budget_seconds < 0:
            raise ValueError("deadline budget cannot be negative")
        self.budget_seconds = float(budget_seconds)
        #: optional per-call ceiling below the remaining budget
        self.per_call_cap_seconds = per_call_cap_seconds
        self.grace_seconds = float(grace_seconds)
        self._clock: Optional[Callable[[], float]] = None
        self._anchor = 0.0
        self._consumed = 0.0
        self._grace_anchor: Optional[float] = None

    # -- lifecycle -----------------------------------------------------

    def arm(self, clock: Callable[[], float]) -> "Deadline":
        """Anchor the budget to ``clock`` (the query's simulated time).

        Everything the clock advances by *after* arming counts against
        the budget; :class:`~repro.obs.context.QueryContext` arms the
        deadline with its tracer's ``sim_now`` on construction.
        """
        self._clock = clock
        self._anchor = clock()
        return self

    # -- accounting ----------------------------------------------------

    def consume(self, seconds: float) -> None:
        """Charge ``seconds`` spent outside the armed clock (e.g. real
        admission-queue waiting)."""
        if seconds > 0:
            self._consumed += seconds

    @property
    def elapsed_seconds(self) -> float:
        clocked = (self._clock() - self._anchor) if self._clock else 0.0
        return clocked + self._consumed

    @property
    def remaining_seconds(self) -> float:
        """Budget left; inside :meth:`grace` this is the grace budget."""
        if self._grace_anchor is not None:
            return max(
                0.0,
                self.grace_seconds
                - (self.elapsed_seconds - self._grace_anchor),
            )
        return self.budget_seconds - self.elapsed_seconds

    @property
    def expired(self) -> bool:
        return self.remaining_seconds <= 0.0

    @property
    def in_grace(self) -> bool:
        return self._grace_anchor is not None

    # -- the call-budget rule ------------------------------------------

    def call_cap(self, policy_cap: Optional[float]) -> float:
        """Per-call budget: ``min(remaining, per_call_cap, policy_cap)``.

        The tentpole rule — no single engine call may outlive the
        query, and an explicit per-call cap keeps one slow call from
        eating the whole budget when the query still has retries and
        other calls ahead of it.
        """
        cap = max(self.remaining_seconds, 0.0)
        if self.per_call_cap_seconds is not None:
            cap = min(cap, self.per_call_cap_seconds)
        if policy_cap is not None:
            cap = min(cap, policy_cap)
        return cap

    # -- expiry --------------------------------------------------------

    def exceeded(self, phase: str, detail: str = "") -> DeadlineExceeded:
        """Build the structured expiry error for ``phase``."""
        where = f" during {detail}" if detail else ""
        budget = (
            self.grace_seconds if self._grace_anchor is not None
            else self.budget_seconds
        )
        kind = "grace budget" if self._grace_anchor is not None else "deadline"
        return DeadlineExceeded(
            f"{kind} of {budget:.3f}s exceeded in phase {phase!r}{where} "
            f"({self.elapsed_seconds:.3f}s consumed)",
            phase=phase,
            detail=detail,
            budget_seconds=budget,
            elapsed_seconds=self.elapsed_seconds,
        )

    def check(self, phase: str, detail: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            raise self.exceeded(phase, detail)

    # -- cancellation grace --------------------------------------------

    @contextmanager
    def grace(self) -> Iterator["Deadline"]:
        """Open the bounded cleanup budget for cancellation rollback.

        Nested grace windows share the outermost anchor: rollback of a
        rollback does not mint fresh budget.
        """
        opened = self._grace_anchor is None
        if opened:
            self._grace_anchor = self.elapsed_seconds
        try:
            yield self
        finally:
            if opened:
                self._grace_anchor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline({self.budget_seconds}s, "
            f"remaining={self.remaining_seconds:.3f}s)"
        )
