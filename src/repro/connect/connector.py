"""The DBMS connector: XDB's only handle on an underlying database.

Responsibilities (paper §III–§V):

* metadata — list relations, schemas, and statistics for the global
  catalog (the "prep" phase of the breakdown experiment);
* costing — wrap EXPLAIN-like statements into calibrated costing
  functions for the annotator's consulting approach (§IV-B2); every
  call counts as one consultation round-trip;
* delegation — render DDL in the DBMS's own dialect and ship it as a
  control message;
* execution — submit the final XDB query (or, for the mediator
  baselines, fetch subquery results into the mediator node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.catalog import BaseTable
from repro.engine.database import Database
from repro.engine.fdw import PROTOCOL_FACTORS
from repro.engine.result import Result
from repro.engine.stats import TableStats
from repro.errors import ConnectorError
from repro.net.network import Network
from repro.relational.schema import Schema
from repro.sql import ast
from repro.sql.render import render


@dataclass(frozen=True)
class CalibratedExplain:
    """A remote cost estimate aligned to the common currency (seconds)."""

    estimated_rows: float
    cost_seconds: float
    row_width: int
    plan_text: str


class DBMSConnector:
    """Connector between the middleware node and one database."""

    def __init__(
        self,
        database: Database,
        network: Network,
        middleware_node: str,
        protocol: str = "binary",
    ):
        if protocol not in PROTOCOL_FACTORS:
            raise ConnectorError(f"unknown wire protocol {protocol!r}")
        self.database = database
        self.network = network
        self.middleware_node = middleware_node
        self.protocol = protocol
        #: EXPLAIN consulting round-trips (paper's ann-phase metric)
        self.consultations = 0
        #: delegation / metadata control messages
        self.control_messages = 0

    @property
    def name(self) -> str:
        return self.database.name

    @property
    def node(self) -> str:
        return self.database.node

    @property
    def profile(self):
        return self.database.profile

    def reset_counters(self) -> None:
        self.consultations = 0
        self.control_messages = 0

    # -- metadata ---------------------------------------------------------------

    def _control(self, tag: str) -> None:
        self.control_messages += 1
        self.network.record_control_message(
            self.middleware_node, self.node, tag=tag
        )
        self.network.record_control_message(
            self.node, self.middleware_node, tag=tag
        )

    def list_tables(self) -> Dict[str, Schema]:
        """Names and schemas of the database's stored tables."""
        self._control("metadata")
        return {
            table.name: table.schema
            for table in self.database.catalog.tables()
            if not table.temporary
        }

    def table_stats(self, name: str) -> Optional[TableStats]:
        self._control("metadata")
        return self.database.table_stats(name)

    def table_rows(self, name: str) -> float:
        stats = self.database.table_stats(name)
        if stats is None:
            raise ConnectorError(
                f"no statistics for table {name!r} on {self.name}"
            )
        return float(stats.row_count)

    # -- costing (the consulting approach) ---------------------------------------

    def explain(self, query: ast.Select) -> CalibratedExplain:
        """One consultation round-trip: remote EXPLAIN, calibrated."""
        self.consultations += 1
        self._control("consult")
        info = self.database.explain_select(query)
        return CalibratedExplain(
            estimated_rows=info.estimated_rows,
            cost_seconds=self.profile.cost_to_seconds(info.total_cost),
            row_width=info.row_width,
            plan_text=info.plan_text,
        )

    def estimate_join_cost(
        self,
        local_rows: float,
        moved_rows: float,
        output_rows: float,
        materialized: bool,
    ) -> float:
        """Costing function for a cross-database join at this DBMS.

        This is the connector-provided costing function of §IV-B2 (the
        "consulting approach", wrapping the engine's EXPLAIN machinery):
        one call = one consultation round-trip.

        With an *implicit* (pipelined) input the DBMS cannot hash the
        stream — it must build on its local input and probe with the
        arriving tuples.  With an *explicit* (materialized) input it
        pays fetch + load + rescan but can build the hash table on the
        smaller side (the paper's "DBMS-specific optimizations").
        Returns calibrated seconds.
        """
        self.consultations += 1
        self._control("consult")
        profile = self.profile
        fetch = moved_rows * profile.foreign_fetch_cost_per_row
        if materialized:
            load = moved_rows * profile.seq_scan_cost_per_row
            rescan = moved_rows * profile.seq_scan_cost_per_row
            build = min(local_rows, moved_rows) * (
                profile.hash_build_cost_per_row
            )
            probe = max(local_rows, moved_rows) * profile.cpu_tuple_cost
            setup = profile.startup_cost * 5 + 200.0
            units = fetch + load + rescan + build + probe + setup
        else:
            build = local_rows * profile.hash_build_cost_per_row
            probe = moved_rows * profile.cpu_tuple_cost
            units = fetch + build + probe
        units += output_rows * profile.cpu_tuple_cost
        return profile.cost_to_seconds(units)

    # -- delegation ----------------------------------------------------------------

    def execute_ddl(self, statement: ast.Statement) -> Result:
        """Render ``statement`` in the DBMS's dialect and execute it."""
        sql = render(statement, self.database.dialect)
        self._control("delegation")
        return self.database.execute(sql)

    def execute_sql(self, sql: str) -> Result:
        self._control("delegation")
        return self.database.execute(sql)

    # -- execution / data movement ----------------------------------------------------

    def run_query(self, query: ast.Select, client_node: str) -> Result:
        """Run a final query; the result travels DBMS → client."""
        result = self.database.execute_select(query)
        self.network.record_transfer(
            src=self.node,
            dst=client_node,
            payload_bytes=int(
                result.byte_size() * PROTOCOL_FACTORS[self.protocol]
            ),
            rows=len(result),
            tag="result",
            protocol=self.protocol,
        )
        return result

    def fetch(self, query: ast.Select, tag: str = "mediator-fetch") -> Result:
        """Fetch a subquery result into the middleware node (MW path)."""
        result = self.database.execute_select(query)
        self.network.record_transfer(
            src=self.node,
            dst=self.middleware_node,
            payload_bytes=int(
                result.byte_size() * PROTOCOL_FACTORS[self.protocol]
            ),
            rows=len(result),
            tag=tag,
            protocol=self.protocol,
        )
        return result

    def push_rows(
        self,
        table_name: str,
        schema: Schema,
        rows: List[tuple],
        tag: str = "mediator-ship",
    ) -> None:
        """Ship rows from the middleware into a (temp) table (MW path)."""
        self.network.record_transfer(
            src=self.middleware_node,
            dst=self.node,
            payload_bytes=int(
                schema.row_width()
                * len(rows)
                * PROTOCOL_FACTORS[self.protocol]
            ),
            rows=len(rows),
            tag=tag,
            protocol=self.protocol,
        )
        self.database.create_table(table_name, schema, rows, replace=True)
