"""The DBMS connector: XDB's only handle on an underlying database.

Responsibilities (paper §III–§V):

* metadata — list relations, schemas, and statistics for the global
  catalog (the "prep" phase of the breakdown experiment);
* costing — wrap EXPLAIN-like statements into calibrated costing
  functions for the annotator's consulting approach (§IV-B2); every
  call counts as one consultation round-trip;
* delegation — render DDL in the DBMS's own dialect and ship it as a
  control message;
* execution — submit the final XDB query (or, for the mediator
  baselines, fetch subquery results into the mediator node);
* resilience — every control/DDL/fetch path runs through a guarded
  retry loop: transient faults (injected or environmental) back off
  exponentially in *simulated* seconds, slow links trip a per-call
  timeout budget, and engine outages fail fast so the optimizer can
  re-plan around the dead engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.engine.database import Database
from repro.engine.fdw import PROTOCOL_FACTORS
from repro.engine.result import Result
from repro.engine.stats import TableStats
from repro.errors import (
    CircuitOpenError,
    ConnectorError,
    ConnectorTimeoutError,
    EngineUnavailableError,
    NetworkError,
    NetworkPartitionedError,
    TransientConnectorError,
)
from repro.health import HealthRegistry
from repro.net.network import CONTROL_MESSAGE_BYTES, Network
from repro.obs.runtime import current_context
from repro.relational.schema import Schema
from repro.sql import ast
from repro.sql.render import render

T = TypeVar("T")

#: Errors the guarded retry loop may retry; anything else fails fast.
RETRYABLE_ERRORS = (TransientConnectorError, NetworkPartitionedError)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout configuration for one connector.

    Backoff is exponential — ``base_backoff_seconds * multiplier**k``,
    capped at ``max_backoff_seconds``, then jittered ±``jitter_ratio``
    from the connector's seeded RNG so concurrent callers hitting the
    same degraded link do not back off in lockstep (no thundering herd
    on retry) — and accrues in *simulated* seconds (the connector's
    ``backoff_seconds`` counter), so phase breakdowns price retries
    without real sleeps.  The jitter RNG is seeded per connector name,
    so two identically-seeded runs accrue identical backoff.
    ``call_timeout_seconds`` is the per-call budget: a control round
    trip whose simulated time would exceed it raises
    :class:`ConnectorTimeoutError` (retryable — the link may recover).
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    call_timeout_seconds: Optional[float] = 30.0
    jitter_ratio: float = 0.5

    def backoff_for(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Backoff after the ``attempt``-th (1-based) failed attempt.

        Without ``rng`` the value is the pure capped exponential; with
        ``rng`` it is jittered uniformly in ``±jitter_ratio`` of that.
        """
        raw = self.base_backoff_seconds * (
            self.backoff_multiplier ** (attempt - 1)
        )
        capped = min(raw, self.max_backoff_seconds)
        if rng is not None and self.jitter_ratio > 0.0:
            capped *= 1.0 + self.jitter_ratio * (2.0 * rng.random() - 1.0)
        return capped


@dataclass(frozen=True)
class CalibratedExplain:
    """A remote cost estimate aligned to the common currency (seconds)."""

    estimated_rows: float
    cost_seconds: float
    row_width: int
    plan_text: str


class DBMSConnector:
    """Connector between the middleware node and one database."""

    def __init__(
        self,
        database: Database,
        network: Network,
        middleware_node: str,
        protocol: str = "binary",
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if protocol not in PROTOCOL_FACTORS:
            raise ConnectorError(f"unknown wire protocol {protocol!r}")
        self.database = database
        self.network = network
        self.middleware_node = middleware_node
        self.protocol = protocol
        self.retry_policy = retry_policy or RetryPolicy()
        #: fault-injection hook (see :mod:`repro.faults`); ``None`` in
        #: production — the guard path then adds no overhead beyond a
        #: timeout precheck
        self.fault_injector = None
        #: shared circuit-breaker registry (see :mod:`repro.health`);
        #: ``None`` disables breaker gating entirely
        self.health: Optional[HealthRegistry] = None
        #: per-connector seeded RNG for deterministic backoff jitter
        self._backoff_rng = random.Random(f"backoff:{database.name}")
        #: EXPLAIN consulting round-trips (paper's ann-phase metric)
        self.consultations = 0
        #: delegation / metadata control messages
        self.control_messages = 0
        #: retried attempts (after a retryable failure)
        self.retries = 0
        #: retryable failures observed (injected or environmental)
        self.failures = 0
        #: calls abandoned after exhausting ``retry_policy.max_attempts``
        self.giveups = 0
        #: calls rejected instantly by an open circuit breaker
        self.breaker_fastfails = 0
        #: simulated seconds spent backing off between attempts
        self.backoff_seconds = 0.0

    @property
    def name(self) -> str:
        return self.database.name

    @property
    def node(self) -> str:
        return self.database.node

    @property
    def profile(self):
        return self.database.profile

    def reset_counters(self) -> None:
        self.consultations = 0
        self.control_messages = 0
        self.retries = 0
        self.failures = 0
        self.giveups = 0
        self.breaker_fastfails = 0
        self.backoff_seconds = 0.0

    def _bump(self, counter: str, value: float = 1.0) -> None:
        """Increment a lifetime instance counter and mirror it into the
        active query's context-scoped metrics (if one is active)."""
        setattr(self, counter, getattr(self, counter) + value)
        ctx = current_context()
        if ctx is not None:
            ctx.metrics.inc(f"connector.{counter}", value, db=self.name)

    # -- resilience -------------------------------------------------------------

    def _guarded(
        self, op: str, fn: Callable[[], T], detail: Optional[str] = None
    ) -> T:
        """Run ``fn`` with breaker gating, faults, timeout, and retry.

        One tracer span covers the whole engine call (all attempts);
        retries, backoff, breaker fast-fails, and give-ups surface as
        span events on it.  ``detail`` is the call's payload (rendered
        SQL, a table name) when the call site has one cheaply — the
        fault injector matches shard-scoped outages against it.
        """
        ctx = current_context()
        if ctx is None:
            return self._guarded_attempts(op, fn, None, detail)
        with ctx.tracer.span(
            f"{op}@{self.name}", kind="call", db=self.name, op=op
        ):
            return self._guarded_attempts(op, fn, ctx, detail)

    def _guarded_attempts(
        self,
        op: str,
        fn: Callable[[], T],
        ctx,
        detail: Optional[str] = None,
    ) -> T:
        """The guarded retry loop behind :meth:`_guarded`.

        An open circuit breaker fails the call fast with
        :class:`CircuitOpenError` before the retry loop or the fault
        injector sees it — the federation already knows the engine is
        down.  Otherwise the loop retries :data:`RETRYABLE_ERRORS` up
        to ``retry_policy.max_attempts`` total attempts, accruing
        jittered exponential backoff into ``backoff_seconds``
        (simulated time — no real sleeping).  Non-retryable errors,
        e.g. an engine outage, propagate immediately so callers can
        re-plan; every call outcome is reported to the health registry
        so breakers trip on failure streaks and close on recovery.
        """
        policy = self.retry_policy
        registry = self.health
        deadline = getattr(ctx, "deadline", None) if ctx is not None else None
        phase = ""
        if ctx is not None:
            phase = getattr(ctx, "current_phase", "") or op
        probe = False
        if registry is not None:
            gate = registry.gate(self.name)
            if gate == "blocked":
                self._bump("breaker_fastfails")
                if ctx is not None:
                    ctx.tracer.add_event(
                        "breaker-fastfail", db=self.name, op=op
                    )
                raise CircuitOpenError(
                    f"circuit breaker for DBMS {self.name!r} is open; "
                    f"failing {op!r} fast until the cool-down elapses",
                    db=self.name,
                )
            probe = gate == "probe"
        try:
            attempt = 0
            while True:
                attempt += 1
                try:
                    if deadline is not None:
                        deadline.check(phase, detail=f"{op}@{self.name}")
                    if self.fault_injector is not None:
                        self.fault_injector.before_call(
                            self.name, op, detail
                        )
                    self._check_timeout(op, deadline=deadline, phase=phase)
                    result = fn()
                except RETRYABLE_ERRORS:
                    self._bump("failures")
                    if attempt >= policy.max_attempts:
                        self._bump("giveups")
                        if ctx is not None:
                            ctx.tracer.add_event(
                                "giveup",
                                db=self.name,
                                op=op,
                                attempts=attempt,
                            )
                        if registry is not None:
                            registry.record_failure(
                                self.name, f"retry budget exhausted ({op})"
                            )
                            probe = False
                        raise
                    self._bump("retries")
                    rng = (
                        ctx.backoff_rng(self.name)
                        if ctx is not None
                        else self._backoff_rng
                    )
                    backoff = policy.backoff_for(attempt, rng=rng)
                    self.backoff_seconds += backoff
                    if ctx is not None:
                        ctx.add_backoff(self.name, backoff)
                        ctx.tracer.add_event(
                            "retry",
                            db=self.name,
                            op=op,
                            attempt=attempt,
                            backoff_seconds=backoff,
                        )
                except EngineUnavailableError as exc:
                    if exc.db is None:
                        exc.db = self.name
                    if ctx is not None:
                        ctx.tracer.add_event(
                            "engine-unavailable", db=self.name, op=op
                        )
                    if registry is not None:
                        registry.record_failure(
                            self.name, f"engine unavailable ({op})"
                        )
                        probe = False
                    raise
                else:
                    if registry is not None:
                        registry.record_success(self.name)
                        probe = False
                    return result
        finally:
            # A probe that never reached an outcome (deadline expiry,
            # timeout, non-retryable execution error) must hand the
            # half-open probe slot back, or the breaker deadlocks.
            if probe and registry is not None:
                registry.finish_probe(self.name)

    def _check_timeout(
        self, op: str, deadline=None, phase: str = ""
    ) -> None:
        """Enforce the per-call budget against the current link state.

        The precheck prices a control round trip middleware ↔ DBMS on
        the (possibly degraded) link *before* executing, so a timed-out
        call has no partial server-side effect and is safe to retry.

        With an armed per-query ``deadline`` the budget is the tentpole
        rule ``min(remaining_deadline, per_call_cap, policy_cap)``.
        When the *deadline* is what the call cannot fit into, the error
        is a non-retryable :class:`~repro.errors.DeadlineExceeded` —
        retrying cannot mint new budget; when only a static cap binds,
        the retryable :class:`ConnectorTimeoutError` is kept (the link
        may recover).
        """
        policy_budget = self.retry_policy.call_timeout_seconds
        if policy_budget is None and deadline is None:
            return
        round_trip = 2 * self.network.transfer_time(
            self.middleware_node, self.node, CONTROL_MESSAGE_BYTES
        )
        if deadline is not None:
            remaining = max(deadline.remaining_seconds, 0.0)
            budget = deadline.call_cap(policy_budget)
            if round_trip > budget:
                if round_trip > remaining:
                    raise deadline.exceeded(
                        phase or op, detail=f"{op}@{self.name}"
                    )
                raise ConnectorTimeoutError(
                    f"control round trip to {self.name!r} would take "
                    f"{round_trip:.3f}s, exceeding the {budget:.3f}s "
                    f"per-call budget ({op})"
                )
        elif round_trip > policy_budget:
            raise ConnectorTimeoutError(
                f"control round trip to {self.name!r} would take "
                f"{round_trip:.3f}s, exceeding the {policy_budget:.3f}s "
                f"per-call budget ({op})"
            )

    def is_available(self) -> bool:
        """Placement-time health check, circuit-breaker aware.

        Used by the annotator's degradation-aware placement: an engine
        that is down, partitioned away from the middleware, or behind a
        link too slow for the call budget is excluded from the
        candidate set ``A`` (§IV-B2 topology-constraint machinery).

        With a health registry attached, an *open* breaker answers
        ``False`` instantly — no per-query re-probing of a known-dead
        engine.  Once the simulated-clock cool-down elapses the check
        becomes the half-open probe: one real control round trip (it
        consumes the fault schedule like any call) that re-admits the
        engine on success and re-opens the breaker on failure.
        Without a registry (or while the breaker is closed) the checks
        below are pure probes that consume nothing.
        """
        if self.health is not None:
            gate = self.health.gate(self.name)
            if gate == "blocked":
                return False
            if gate == "probe":
                return self._half_open_probe()
        if self.fault_injector is not None and self.fault_injector.engine_down(
            self.name
        ):
            return False
        if self.network.is_partitioned(self.middleware_node, self.node):
            return False
        try:
            self._check_timeout("probe")
        except ConnectorTimeoutError:
            return False
        return True

    def _half_open_probe(self) -> bool:
        """One real probe through a half-open breaker.

        Unlike the closed-state availability checks this is a genuine
        call: it consumes the fault injector's schedule and counts a
        control round trip, because the whole point is to test whether
        the engine answers again.  Success closes the breaker
        (re-admission), any failure re-opens it for another cool-down.
        """
        try:
            try:
                if self.fault_injector is not None:
                    self.fault_injector.before_call(self.name, "probe")
                if self.network.is_partitioned(
                    self.middleware_node, self.node
                ):
                    raise NetworkPartitionedError(
                        f"probe: link {self.middleware_node} <-> "
                        f"{self.node} is partitioned"
                    )
                self._check_timeout("probe")
            except (ConnectorError, NetworkError):
                self.health.record_failure(
                    self.name, "half-open probe failed"
                )
                return False
            self._control("probe")
            self.health.record_success(self.name)
            return True
        finally:
            # Whatever happened, the single half-open probe slot this
            # availability check consumed is handed back (no-op when a
            # recorded outcome already released it).
            self.health.finish_probe(self.name)

    # -- metadata ---------------------------------------------------------------

    def _control(self, tag: str) -> None:
        self._bump("control_messages")
        self.network.record_control_message(
            self.middleware_node, self.node, tag=tag
        )
        self.network.record_control_message(
            self.node, self.middleware_node, tag=tag
        )

    def list_tables(self) -> Dict[str, Schema]:
        """Names and schemas of the database's stored tables."""

        def call() -> Dict[str, Schema]:
            self._control("metadata")
            return {
                table.name: table.schema
                for table in self.database.catalog.tables()
                if not table.temporary
            }

        return self._guarded("metadata", call)

    def table_stats(self, name: str) -> Optional[TableStats]:
        def call() -> Optional[TableStats]:
            self._control("metadata")
            return self.database.table_stats(name)

        return self._guarded("metadata", call, detail=name)

    def table_schema(self, name: str) -> Optional[Schema]:
        """The *live* schema of one stored table (None when dropped).

        The global catalog's fingerprint verification calls this — one
        guarded metadata round-trip per verified table — to compare
        the engine's current truth against its recorded snapshot.
        """

        def call() -> Optional[Schema]:
            self._control("metadata")
            obj = self.database.catalog.get(name)
            if obj is None or obj.kind != "TABLE" or obj.temporary:
                return None
            return obj.schema

        return self._guarded("metadata", call, detail=name)

    def list_objects(self, prefixes=()) -> List[Tuple[str, str]]:
        """(kind, name) of every catalog object matching ``prefixes``.

        The orphan reaper's reconciliation primitive: what does this
        engine actually hold right now?  Matching is case-insensitive;
        empty ``prefixes`` lists everything.
        """

        def call() -> List[Tuple[str, str]]:
            self._control("metadata")
            lowered = tuple(p.lower() for p in prefixes)
            return [
                (obj.kind, obj.name)
                for obj in self.database.catalog.objects()
                if not lowered or obj.name.lower().startswith(lowered)
            ]

        return self._guarded("metadata", call)

    def table_rows(self, name: str) -> float:
        # Routed through the guarded metadata path (table_stats), so
        # fault injection, breaker gating, and control-message
        # accounting all see it — previously the one connector path
        # faults could not reach.
        stats = self.table_stats(name)
        if stats is None:
            raise ConnectorError(
                f"no statistics for table {name!r} on {self.name}"
            )
        return float(stats.row_count)

    # -- costing (the consulting approach) ---------------------------------------

    def explain(self, query: ast.Select) -> CalibratedExplain:
        """One consultation round-trip: remote EXPLAIN, calibrated."""

        def call() -> CalibratedExplain:
            self._bump("consultations")
            self._control("consult")
            info = self.database.explain_select(query)
            return CalibratedExplain(
                estimated_rows=info.estimated_rows,
                cost_seconds=self.profile.cost_to_seconds(info.total_cost),
                row_width=info.row_width,
                plan_text=info.plan_text,
            )

        return self._guarded("consult", call)

    def estimate_join_cost(
        self,
        local_rows: float,
        moved_rows: float,
        output_rows: float,
        materialized: bool,
    ) -> float:
        """Costing function for a cross-database join at this DBMS.

        This is the connector-provided costing function of §IV-B2 (the
        "consulting approach", wrapping the engine's EXPLAIN machinery):
        one call = one consultation round-trip.

        With an *implicit* (pipelined) input the DBMS cannot hash the
        stream — it must build on its local input and probe with the
        arriving tuples.  With an *explicit* (materialized) input it
        pays fetch + load + rescan but can build the hash table on the
        smaller side (the paper's "DBMS-specific optimizations").
        Returns calibrated seconds.
        """

        def call() -> None:
            self._bump("consultations")
            self._control("consult")

        self._guarded("consult", call)
        profile = self.profile
        fetch = moved_rows * profile.foreign_fetch_cost_per_row
        if materialized:
            load = moved_rows * profile.seq_scan_cost_per_row
            rescan = moved_rows * profile.seq_scan_cost_per_row
            build = min(local_rows, moved_rows) * (
                profile.hash_build_cost_per_row
            )
            probe = max(local_rows, moved_rows) * profile.cpu_tuple_cost
            setup = profile.startup_cost * 5 + 200.0
            units = fetch + load + rescan + build + probe + setup
        else:
            build = local_rows * profile.hash_build_cost_per_row
            probe = moved_rows * profile.cpu_tuple_cost
            units = fetch + build + probe
        units += output_rows * profile.cpu_tuple_cost
        return profile.cost_to_seconds(units)

    # -- delegation ----------------------------------------------------------------

    def execute_ddl(self, statement: ast.Statement) -> Result:
        """Render ``statement`` in the DBMS's dialect and execute it."""
        sql = render(statement, self.database.dialect)

        def call() -> Result:
            self._control("delegation")
            return self.database.execute(sql)

        return self._guarded("ddl", call, detail=sql)

    def execute_sql(self, sql: str) -> Result:
        def call() -> Result:
            self._control("delegation")
            return self.database.execute(sql)

        return self._guarded("ddl", call, detail=sql)

    # -- execution / data movement ----------------------------------------------------

    def run_query(self, query: ast.Select, client_node: str) -> Result:
        """Run a final query; the result travels DBMS → client.

        Failure accounting: the transfer is recorded only after the
        remote execution succeeds (same ordering as :meth:`fetch` and
        :meth:`push_rows`) — a failed call must not inflate the
        ledger with bytes that never moved.
        """

        def call() -> Result:
            result = self.database.execute_select(query)
            self.network.record_transfer(
                src=self.node,
                dst=client_node,
                payload_bytes=int(
                    result.byte_size() * PROTOCOL_FACTORS[self.protocol]
                ),
                rows=len(result),
                tag="result",
                protocol=self.protocol,
            )
            return result

        return self._guarded(
            "query", call, detail=self._injector_detail(query)
        )

    def _injector_detail(self, query: ast.Select) -> Optional[str]:
        """Render a query payload for shard-scoped fault matching.

        Only paid when an injector is installed — production runs skip
        the render entirely.
        """
        if self.fault_injector is None:
            return None
        return render(query, self.database.dialect)

    def fetch(self, query: ast.Select, tag: str = "mediator-fetch") -> Result:
        """Fetch a subquery result into the middleware node (MW path)."""

        def call() -> Result:
            result = self.database.execute_select(query)
            self.network.record_transfer(
                src=self.node,
                dst=self.middleware_node,
                payload_bytes=int(
                    result.byte_size() * PROTOCOL_FACTORS[self.protocol]
                ),
                rows=len(result),
                tag=tag,
                protocol=self.protocol,
            )
            return result

        return self._guarded(
            "fetch", call, detail=self._injector_detail(query)
        )

    def push_rows(
        self,
        table_name: str,
        schema: Schema,
        rows: List[tuple],
        tag: str = "mediator-ship",
    ) -> None:
        """Ship rows from the middleware into a (temp) table (MW path).

        The transfer is recorded only *after* the table lands: an
        engine outage between shipping and creating must not credit
        ``net.metrics`` with bytes that never arrived.
        """

        def call() -> None:
            self.database.create_table(table_name, schema, rows, replace=True)
            self.network.record_transfer(
                src=self.middleware_node,
                dst=self.node,
                payload_bytes=int(
                    schema.row_width()
                    * len(rows)
                    * PROTOCOL_FACTORS[self.protocol]
                ),
                rows=len(rows),
                tag=tag,
                protocol=self.protocol,
            )

        return self._guarded("fetch", call)
