"""DBMS connectors (the paper's "DCs").

Connectors are the only channel between the XDB middleware (and the
mediator baselines) and the underlying databases: they render statements
in each DBMS's dialect, ship them as control messages over the simulated
network, and wrap EXPLAIN into calibrated costing functions for the
optimizer's consulting step.  Every control, DDL, and fetch path runs
under a :class:`RetryPolicy` that absorbs transient faults.
"""

from repro.connect.connector import (
    CalibratedExplain,
    DBMSConnector,
    RetryPolicy,
)

__all__ = ["CalibratedExplain", "DBMSConnector", "RetryPolicy"]
