"""Table and column statistics used by the cost-based planners.

Statistics are computed exactly (the simulated tables are small enough);
real engines would sample.  They feed selectivity estimation in
:mod:`repro.engine.cost` and, via EXPLAIN consulting, XDB's annotator.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.relational.schema import Schema


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    ndv: int
    null_count: int
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    avg_width: float = 8.0

    def null_fraction(self, row_count: int) -> float:
        return self.null_count / row_count if row_count else 0.0


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics for a stored relation."""

    row_count: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())


def _value_width(value: object) -> float:
    if value is None:
        return 1.0
    if isinstance(value, str):
        return float(len(value))
    if isinstance(value, (int, bool)):
        return 4.0
    return 8.0


def _orderable(values: Sequence[object]) -> bool:
    """Min/max only make sense for homogeneous orderable values."""
    return all(
        isinstance(value, (int, float, str, datetime.date))
        and not isinstance(value, bool)
        for value in values
    ) and (
        len({type(v) is str for v in values}) <= 1
        and len({isinstance(v, datetime.date) for v in values}) <= 1
        # date and datetime pass the check above together (datetime
        # subclasses date) but are mutually non-comparable: a column
        # mixing them would make min()/max() raise TypeError.
        and len({isinstance(v, datetime.datetime) for v in values}) <= 1
    )


#: ANALYZE-style sampling bound: larger tables are profiled on a sample.
DEFAULT_SAMPLE_SIZE = 20_000


def compute_stats(
    schema: Schema,
    rows: List[tuple],
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> TableStats:
    """Statistics over ``rows`` (sampled above ``sample_size``, like a
    real engine's ANALYZE).  Sampled NDVs are extrapolated: a column
    that looks distinct in the sample is assumed key-like."""
    row_count = len(rows)
    if row_count > sample_size:
        # Seeded random sample: stride sampling would alias with any
        # periodicity in the data (e.g. generated categorical columns).
        rng = random.Random(0xA11A5)
        sample = [rows[i] for i in rng.sample(range(row_count), sample_size)]
        scale = row_count / len(sample)
    else:
        sample = rows
        scale = 1.0

    columns: Dict[str, ColumnStats] = {}
    for index, field in enumerate(schema):
        non_null = [row[index] for row in sample if row[index] is not None]
        null_count = int((len(sample) - len(non_null)) * scale)
        distinct = len(set(non_null))
        if scale > 1.0 and non_null:
            if distinct >= 0.85 * len(non_null):
                # Near-unique in the sample: extrapolate to key-like.
                ndv = int(distinct * scale)
            else:
                ndv = distinct
        else:
            ndv = distinct
        if non_null and _orderable(non_null):
            min_value: Optional[object] = min(non_null)
            max_value: Optional[object] = max(non_null)
        else:
            min_value = max_value = None
        avg_width = (
            sum(_value_width(v) for v in non_null) / len(non_null)
            if non_null
            else float(field.type.byte_width())
        )
        columns[field.name.lower()] = ColumnStats(
            ndv=ndv,
            null_count=null_count,
            min_value=min_value,
            max_value=max_value,
            avg_width=avg_width,
        )
    return TableStats(row_count=row_count, columns=columns)


EMPTY_STATS = TableStats(row_count=0, columns={})
