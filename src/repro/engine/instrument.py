"""Per-operator wall-clock instrumentation for physical plans.

The calibration harness (:mod:`repro.calibrate`) needs *measured*
per-operator timings to regress the engine profiles' cost constants
against.  :func:`instrument_plan` wraps every operator's ``rows()`` /
``batches()`` entry points so each node accumulates the wall seconds
spent producing its output — including the time its children spend
inside the node's pulls.  :func:`self_seconds` subtracts the children's
inclusive time back out, yielding the operator's own contribution.

Timing granularity is one ``next()`` call: in batch mode (the default
executor) that is one 1024-row batch, so timer overhead is negligible
relative to the work measured.  All clock reads go through
:func:`repro.obs.clock.wall_now`, the repo's single sanctioned
wall-clock site.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.physical import PhysicalPlan
from repro.obs.clock import wall_now


def instrument_plan(plan: PhysicalPlan) -> PhysicalPlan:
    """Attach timing wrappers to every operator in ``plan`` (in place)."""
    for node in plan.walk():
        if getattr(node, "_instrumented", False):
            continue
        node._instrumented = True  # type: ignore[attr-defined]
        node.exec_seconds = 0.0  # type: ignore[attr-defined]
        node.rows = _timed(node, node.rows)  # type: ignore[method-assign]
        node.batches = _timed(node, node.batches)  # type: ignore[method-assign]
    return plan


def self_seconds(node: PhysicalPlan) -> float:
    """``node``'s own measured seconds, excluding its children.

    Inclusive timings nest (a parent's pull contains its children's
    pulls), so self time is inclusive minus the children's inclusive.
    """
    inclusive = getattr(node, "exec_seconds", 0.0)
    children = sum(
        getattr(child, "exec_seconds", 0.0) for child in node.children()
    )
    return max(inclusive - children, 0.0)


def _timed(node: PhysicalPlan, method):
    """Wrap an iterator-returning method, charging time to ``node``.

    The initial call is timed too: some operators (e.g. ``ForeignScan``)
    do their work eagerly and return a plain iterator rather than a lazy
    generator.
    """

    def wrapper(*args, **kwargs) -> Iterator:
        start = wall_now()
        iterator = iter(method(*args, **kwargs))
        node.exec_seconds += wall_now() - start  # type: ignore[attr-defined]
        while True:
            start = wall_now()
            try:
                item = next(iterator)
            except StopIteration:
                node.exec_seconds += wall_now() - start  # type: ignore[attr-defined]
                return
            node.exec_seconds += wall_now() - start  # type: ignore[attr-defined]
            yield item

    return wrapper
