"""A from-scratch single-node relational DBMS.

Each :class:`~repro.engine.database.Database` instance plays the role of
one autonomous DBMS in the paper's testbed (PostgreSQL / MariaDB / Hive
flavoured via :mod:`repro.engine.profiles`).  It exposes exactly what the
paper assumes of a black-box DBMS:

* a declarative SQL interface (``execute``),
* EXPLAIN-style cost estimates (``explain``),
* SQL/MED foreign tables whose wrappers fetch from other databases
  through registered servers (:mod:`repro.engine.fdw`).
"""

from repro.engine.database import Database
from repro.engine.profiles import EngineProfile, profile_for
from repro.engine.result import Result
from repro.engine.vector import BATCH_SIZE, ColumnBatch

__all__ = [
    "BATCH_SIZE",
    "ColumnBatch",
    "Database",
    "EngineProfile",
    "Result",
    "profile_for",
]
