"""Per-vendor engine profiles.

A profile captures everything that differs between the simulated
PostgreSQL, MariaDB, and Hive instances of the paper's testbed:

* the SQL dialect used at their declarative interface;
* wrapper (SQL/MED) pushdown capabilities — the source of the
  "undesirable executions" of §V that XDB's virtual relations avoid;
* cost-model constants and processing throughput, which drive both
  EXPLAIN estimates and the schedule simulator.  The ``calibration``
  factor converts engine-local cost units into seconds, implementing
  the paper's simple cross-DBMS cost alignment (§IV footnote 6).

Throughputs are loosely modeled after the paper's observations: MariaDB
is not an OLAP engine (slow joins/aggregations), Hive has high startup
latency and is built for clusters but runs on one node here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError


@dataclass(frozen=True)
class EngineProfile:
    """Behavioural description of one DBMS vendor."""

    name: str
    dialect: str
    # --- wrapper (SQL/MED) capabilities -------------------------------
    #: wrapper pushes WHERE clauses on foreign tables to the remote side
    pushdown_filters: bool
    #: wrapper pushes column projections to the remote side
    pushdown_projections: bool
    # --- cost model (engine-local units) -------------------------------
    seq_scan_cost_per_row: float
    cpu_tuple_cost: float
    hash_build_cost_per_row: float
    sort_cost_factor: float
    foreign_fetch_cost_per_row: float
    startup_cost: float
    #: engine cost units per simulated second (the calibration factor)
    calibration: float
    # --- runtime throughput (rows per simulated second) ----------------
    process_rows_per_sec: float
    #: fixed per-statement startup latency in simulated seconds
    startup_latency: float

    def cost_to_seconds(self, cost_units: float) -> float:
        """Calibrate engine-local cost units into simulated seconds."""
        return cost_units / self.calibration


_PROFILES = {
    "postgres": EngineProfile(
        name="postgres",
        dialect="postgres",
        pushdown_filters=True,
        pushdown_projections=True,
        seq_scan_cost_per_row=1.0,
        cpu_tuple_cost=0.01,
        hash_build_cost_per_row=0.02,
        sort_cost_factor=0.01,
        foreign_fetch_cost_per_row=20.0,
        startup_cost=10.0,
        calibration=2_000_000.0,
        process_rows_per_sec=2_000_000.0,
        startup_latency=0.02,
    ),
    # MariaDB: row store tuned for OLTP; federated wrapper pushes nothing,
    # joins/aggregations considerably slower than PostgreSQL for OLAP.
    "mariadb": EngineProfile(
        name="mariadb",
        dialect="mariadb",
        pushdown_filters=False,
        pushdown_projections=True,
        seq_scan_cost_per_row=1.2,
        cpu_tuple_cost=0.02,
        hash_build_cost_per_row=0.05,
        sort_cost_factor=0.02,
        foreign_fetch_cost_per_row=30.0,
        startup_cost=5.0,
        calibration=800_000.0,
        process_rows_per_sec=800_000.0,
        startup_latency=0.01,
    ),
    # Hive: designed for distributed filesystems; huge startup latency on
    # a single node, moderate scan throughput, JDBC storage handler that
    # pushes only projections.
    "hive": EngineProfile(
        name="hive",
        dialect="hive",
        pushdown_filters=False,
        pushdown_projections=True,
        seq_scan_cost_per_row=0.9,
        cpu_tuple_cost=0.015,
        hash_build_cost_per_row=0.03,
        sort_cost_factor=0.015,
        foreign_fetch_cost_per_row=25.0,
        startup_cost=500.0,
        calibration=1_200_000.0,
        process_rows_per_sec=1_200_000.0,
        startup_latency=2.0,
    ),
}


def profile_for(name: str) -> EngineProfile:
    """Look up a vendor profile by name (postgres / mariadb / hive)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise CatalogError(
            f"unknown engine profile {name!r}; "
            f"expected one of {sorted(_PROFILES)}"
        )


def available_profiles() -> list:
    """Names of all registered vendor profiles."""
    return sorted(_PROFILES)
