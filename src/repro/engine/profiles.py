"""Per-vendor engine profiles.

A profile captures everything that differs between the simulated
PostgreSQL, MariaDB, and Hive instances of the paper's testbed:

* the SQL dialect used at their declarative interface;
* wrapper (SQL/MED) pushdown capabilities — the source of the
  "undesirable executions" of §V that XDB's virtual relations avoid;
* cost-model constants and processing throughput, which drive both
  EXPLAIN estimates and the schedule simulator.  The ``calibration``
  factor converts engine-local cost units into seconds, implementing
  the paper's simple cross-DBMS cost alignment (§IV footnote 6).

Throughputs are loosely modeled after the paper's observations: MariaDB
is not an OLAP engine (slow joins/aggregations), Hive has high startup
latency and is built for clusters but runs on one node here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Mapping

from repro.errors import CatalogError

#: The per-row cost constants the calibration harness
#: (``repro.calibrate``) regresses against measured executor timings.
#: ``calibration`` stays fixed: it *defines* the units-to-seconds
#: currency the fit solves in.
CALIBRATABLE_CONSTANTS = (
    "seq_scan_cost_per_row",
    "cpu_tuple_cost",
    "hash_build_cost_per_row",
    "sort_cost_factor",
    "foreign_fetch_cost_per_row",
)

#: The per-statement startup constants, fitted separately as per-query
#: intercepts (whatever measured time the per-row constants cannot
#: explain): ``startup_cost`` is the intercept in engine cost units,
#: ``startup_latency`` the same intercept in seconds.
STARTUP_CONSTANTS = ("startup_cost", "startup_latency")


@dataclass(frozen=True)
class EngineProfile:
    """Behavioural description of one DBMS vendor."""

    name: str
    dialect: str
    # --- wrapper (SQL/MED) capabilities -------------------------------
    #: wrapper pushes WHERE clauses on foreign tables to the remote side
    pushdown_filters: bool
    #: wrapper pushes column projections to the remote side
    pushdown_projections: bool
    # --- cost model (engine-local units) -------------------------------
    seq_scan_cost_per_row: float
    cpu_tuple_cost: float
    hash_build_cost_per_row: float
    sort_cost_factor: float
    foreign_fetch_cost_per_row: float
    startup_cost: float
    #: engine cost units per simulated second (the calibration factor)
    calibration: float
    # --- runtime throughput (rows per simulated second) ----------------
    process_rows_per_sec: float
    #: fixed per-statement startup latency in simulated seconds
    startup_latency: float

    def cost_to_seconds(self, cost_units: float) -> float:
        """Calibrate engine-local cost units into simulated seconds."""
        return cost_units / self.calibration

    def constants(self) -> Dict[str, float]:
        """The calibratable cost constants as a plain mapping."""
        return {
            name: getattr(self, name)
            for name in CALIBRATABLE_CONSTANTS + STARTUP_CONSTANTS
        }

    def with_constants(self, **constants: float) -> "EngineProfile":
        """A copy of this profile with some cost constants replaced."""
        allowed = CALIBRATABLE_CONSTANTS + STARTUP_CONSTANTS
        unknown = set(constants) - set(allowed)
        if unknown:
            raise CatalogError(
                f"cannot calibrate constants {sorted(unknown)}; "
                f"expected a subset of {list(allowed)}"
            )
        return replace(self, **constants)


_PROFILES = {
    "postgres": EngineProfile(
        name="postgres",
        dialect="postgres",
        pushdown_filters=True,
        pushdown_projections=True,
        seq_scan_cost_per_row=1.0,
        cpu_tuple_cost=0.01,
        hash_build_cost_per_row=0.02,
        sort_cost_factor=0.01,
        foreign_fetch_cost_per_row=20.0,
        startup_cost=10.0,
        calibration=2_000_000.0,
        process_rows_per_sec=2_000_000.0,
        startup_latency=0.02,
    ),
    # MariaDB: row store tuned for OLTP; federated wrapper pushes nothing,
    # joins/aggregations considerably slower than PostgreSQL for OLAP.
    "mariadb": EngineProfile(
        name="mariadb",
        dialect="mariadb",
        pushdown_filters=False,
        pushdown_projections=True,
        seq_scan_cost_per_row=1.2,
        cpu_tuple_cost=0.02,
        hash_build_cost_per_row=0.05,
        sort_cost_factor=0.02,
        foreign_fetch_cost_per_row=30.0,
        startup_cost=5.0,
        calibration=800_000.0,
        process_rows_per_sec=800_000.0,
        startup_latency=0.01,
    ),
    # Hive: designed for distributed filesystems; huge startup latency on
    # a single node, moderate scan throughput, JDBC storage handler that
    # pushes only projections.
    "hive": EngineProfile(
        name="hive",
        dialect="hive",
        pushdown_filters=False,
        pushdown_projections=True,
        seq_scan_cost_per_row=0.9,
        cpu_tuple_cost=0.015,
        hash_build_cost_per_row=0.03,
        sort_cost_factor=0.015,
        foreign_fetch_cost_per_row=25.0,
        startup_cost=500.0,
        calibration=1_200_000.0,
        process_rows_per_sec=1_200_000.0,
        startup_latency=2.0,
    ),
}


#: Calibrated overlay: when populated (see :func:`set_calibrated` /
#: :func:`load_calibrated`), :func:`profile_for` serves these instead of
#: the seed constants — every consumer downstream of a profile lookup
#: (``CostModel``, EXPLAIN, the Rule-4 annotator's connector costing)
#: picks them up with no further wiring.
_CALIBRATED: Dict[str, EngineProfile] = {}


def profile_for(name: str) -> EngineProfile:
    """Look up a vendor profile by name (postgres / mariadb / hive).

    A calibrated profile registered under the same name shadows the
    seed constants.
    """
    key = name.lower()
    if key in _CALIBRATED:
        return _CALIBRATED[key]
    try:
        return _PROFILES[key]
    except KeyError:
        raise CatalogError(
            f"unknown engine profile {name!r}; "
            f"expected one of {sorted(_PROFILES)}"
        )


def available_profiles() -> list:
    """Names of all registered vendor profiles."""
    return sorted(_PROFILES)


# -- calibrated profile sets (produced by ``python -m repro.calibrate``) ----


def set_calibrated(profiles: Iterable[EngineProfile]) -> None:
    """Register calibrated profiles so :func:`profile_for` serves them."""
    for profile in profiles:
        key = profile.name.lower()
        if key not in _PROFILES:
            raise CatalogError(
                f"cannot calibrate unknown profile {profile.name!r}"
            )
        _CALIBRATED[key] = profile


def clear_calibrated() -> None:
    """Drop every calibrated override (back to the seed constants)."""
    _CALIBRATED.clear()


def dump_calibrated(profiles: Iterable[EngineProfile]) -> Dict[str, object]:
    """Serialize a calibrated profile set to a JSON-friendly mapping."""
    return {
        "profiles": {
            profile.name: profile.constants() for profile in profiles
        }
    }


def load_calibrated(path: str, register: bool = True) -> list:
    """Load a calibrated profile set emitted by ``repro.calibrate``.

    Returns the :class:`EngineProfile` list; with ``register`` (the
    default) it also installs them as the active overlay.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    mapping: Mapping[str, Mapping[str, float]] = payload.get("profiles", {})
    profiles = [
        profile_base(name).with_constants(
            **{key: float(value) for key, value in constants.items()}
        )
        for name, constants in mapping.items()
    ]
    if register:
        set_calibrated(profiles)
    return profiles


def profile_base(name: str) -> EngineProfile:
    """The seed (un-calibrated) profile, ignoring any overlay."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise CatalogError(
            f"unknown engine profile {name!r}; "
            f"expected one of {sorted(_PROFILES)}"
        )
