"""The Database: one autonomous, black-box DBMS instance.

A database is driven exclusively through its declarative interface
(``execute``), mirroring the paper's execution-autonomy assumption: the
caller never controls physical operators or plan shapes, only submits
SQL (queries *and* the SQL/MED DDL the delegation engine emits) and
reads results or EXPLAIN estimates back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.catalog import BaseTable, Catalog, ForeignTable, View
from repro.engine.cost import CostModel, ExplainInfo
from repro.engine.planner import LocalPlanner
from repro.engine.profiles import EngineProfile, profile_for
from repro.engine.result import Result
from repro.engine.stats import TableStats
from repro.errors import CatalogError, ExecutionError
from repro.obs.runtime import current_context
from repro.relational.builder import build_plan
from repro.relational.expressions import compile_expression
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.dialects import dialect_for
from repro.sql.parser import parse_statement
from repro.sql.render import Renderer


@dataclass
class ExecutionTrace:
    """Bookkeeping for the most recent statements (tests & simulator)."""

    statements: int = 0
    rows_processed: int = 0
    rows_returned: int = 0
    last_plan_text: str = ""
    statement_log: List[str] = field(default_factory=list)

    def reset(self) -> None:
        self.statements = 0
        self.rows_processed = 0
        self.rows_returned = 0
        self.last_plan_text = ""
        self.statement_log.clear()


class Database:
    """A single simulated DBMS (PostgreSQL / MariaDB / Hive flavoured)."""

    #: Supported executor modes: ``"batch"`` (vectorized, the default)
    #: and ``"row"`` (the reference tuple-at-a-time interpreter).
    EXECUTION_MODES = ("row", "batch")

    def __init__(
        self,
        name: str,
        profile: str = "postgres",
        node: Optional[str] = None,
        execution_mode: str = "batch",
        parallel_workers: int = 1,
    ):
        self.name = name
        self.profile: EngineProfile = (
            profile_for(profile) if isinstance(profile, str) else profile
        )
        #: name of the network node hosting this DBMS
        self.node = node or name
        if execution_mode not in self.EXECUTION_MODES:
            raise ExecutionError(
                f"unknown execution mode {execution_mode!r}; "
                f"expected one of {self.EXECUTION_MODES}"
            )
        self.execution_mode = execution_mode
        #: worker threads for intra-query parallelism (> 1 makes the
        #: planner lower UNION ALL chains — notably gathered partition
        #: branches — to a pool-fed parallel operator)
        self.parallel_workers = max(int(parallel_workers), 1)
        self.catalog = Catalog(name)
        self.dialect: Renderer = dialect_for(self.profile.dialect)
        self.planner = LocalPlanner(self)
        self.cost_model = CostModel(self.profile)
        self.trace = ExecutionTrace()
        #: when True, physical plans are wrapped with per-operator
        #: timers (see :mod:`repro.engine.instrument`) and the operator
        #: spans mirrored into the observability context carry measured
        #: ``exec_seconds`` — the calibration harness's data source.
        self.instrument_execution = False
        self._servers: Dict[str, object] = {}

    def __repr__(self) -> str:
        return f"Database({self.name!r}, profile={self.profile.name!r})"

    # -- setup helpers ----------------------------------------------------------

    def create_table(
        self, name: str, schema: Schema, rows=None, replace: bool = False
    ) -> BaseTable:
        """Directly register a stored table (bulk-load path)."""
        table = BaseTable(name, schema, rows)
        self.catalog.add(table, replace=replace)
        return table

    def register_server(self, name: str, server) -> None:
        """Register a SQL/MED server (a :class:`RemoteServer`)."""
        self._servers[name.lower()] = server

    def server(self, name: str):
        server = self._servers.get(name.lower())
        if server is None:
            raise CatalogError(
                f"unknown server {name!r} on database {self.name!r}"
            )
        return server

    def server_names(self) -> List[str]:
        return sorted(self._servers)

    def table_stats(self, name: str) -> Optional[TableStats]:
        obj = self.catalog.get(name)
        if isinstance(obj, BaseTable):
            return obj.stats
        return None

    # -- the declarative interface -----------------------------------------------

    def execute(self, sql: str) -> Result:
        """Parse and execute one SQL statement (query or DDL)."""
        self.trace.statements += 1
        self.trace.statement_log.append(sql)
        ctx = current_context()
        if ctx is not None:
            ctx.tracer.add_event("sql", db=self.name, sql=sql)
            ctx.metrics.inc("engine.statements", db=self.name)
        statement = parse_statement(sql)
        return self._dispatch(statement)

    def _dispatch(self, statement: ast.Statement) -> Result:
        if isinstance(statement, ast.QUERY_STATEMENTS):
            return self.execute_select(statement)
        if isinstance(statement, ast.Explain):
            info = self.explain_select(statement.query)
            schema = Schema(
                [Field("QUERY PLAN", _text_type())]
            )
            rows = [(line,) for line in info.plan_text.splitlines()]
            result = Result(schema, rows, command="EXPLAIN")
            result.explain_info = info  # type: ignore[attr-defined]
            return result
        if isinstance(statement, ast.CreateView):
            return self._create_view(statement)
        if isinstance(statement, ast.CreateForeignTable):
            return self._create_foreign_table(statement)
        if isinstance(statement, ast.CreateTable):
            return self._create_table_ddl(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, ast.DropObject):
            return self._drop(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement)
        raise ExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )

    # -- queries -------------------------------------------------------------------

    def execute_select(self, select) -> Result:
        """Execute a query AST (SELECT or UNION ALL)."""
        plan = build_plan(select, self.catalog)
        plan = self.planner.optimize(plan)
        physical_plan = self.planner.to_physical(plan)
        if self.instrument_execution:
            from repro.engine.instrument import instrument_plan

            instrument_plan(physical_plan)
        if self.execution_mode == "batch":
            rows: List[tuple] = []
            for batch in physical_plan.batches():
                rows.extend(batch.rows())
        else:
            rows = list(physical_plan.rows())
        self.trace.rows_processed += physical_plan.total_rows_processed()
        self.trace.rows_returned += len(rows)
        self.trace.last_plan_text = physical_plan.pretty()
        ctx = current_context()
        if ctx is not None:
            ctx.record_operator_tree(physical_plan, db=self.name)
        return Result(plan.schema.unqualified(), rows)

    def explain_select(self, select) -> ExplainInfo:
        """Plan + cost a query without executing it (EXPLAIN)."""
        plan = build_plan(select, self.catalog)
        plan = self.planner.optimize(plan)
        estimator = self.planner.make_estimator()
        cost = self.cost_model.plan_cost(plan, estimator)
        rows = estimator.estimate_rows(plan)
        text = (
            f"{plan.pretty()}\n"
            f"  (rows={rows:.0f} cost={cost:.2f} engine={self.name})"
        )
        return ExplainInfo(
            estimated_rows=rows,
            total_cost=cost,
            row_width=plan.schema.row_width(),
            plan_text=text,
        )

    # -- DDL ------------------------------------------------------------------------

    def _create_view(self, statement: ast.CreateView) -> Result:
        # Validate eagerly: the defining query must bind.
        build_plan(statement.query, self.catalog)
        view = View(statement.name, statement.query)
        self.catalog.add(view, replace=statement.or_replace)
        return Result(Schema([]), [], command="CREATE VIEW")

    def _create_foreign_table(
        self, statement: ast.CreateForeignTable
    ) -> Result:
        self.server(statement.server)  # must exist
        schema = Schema(
            [Field(col.name, col.type) for col in statement.columns]
        )
        table = ForeignTable(
            statement.name, schema, statement.server, statement.remote_object
        )
        self.catalog.add(table)
        return Result(Schema([]), [], command="CREATE FOREIGN TABLE")

    def _create_table_ddl(self, statement: ast.CreateTable) -> Result:
        schema = Schema(
            [Field(col.name, col.type) for col in statement.columns]
        )
        table = BaseTable(
            statement.name, schema, temporary=statement.temporary
        )
        self.catalog.add(table)
        return Result(Schema([]), [], command="CREATE TABLE")

    def _create_table_as(self, statement: ast.CreateTableAs) -> Result:
        # Compute before swapping: with OR REPLACE, a failing defining
        # query must leave the previous snapshot intact.
        result = self.execute_select(statement.query)
        table = BaseTable(
            statement.name,
            result.schema,
            result.rows,
            temporary=statement.temporary,
        )
        self.catalog.add(table, replace=statement.or_replace)
        return Result(Schema([]), [], command="CREATE TABLE AS")

    def _drop(self, statement: ast.DropObject) -> Result:
        obj = self.catalog.get(statement.name)
        if obj is None:
            if statement.if_exists:
                return Result(Schema([]), [], command="DROP")
            raise CatalogError(
                f"object {statement.name!r} does not exist in database "
                f"{self.name!r}"
            )
        self.catalog.drop(statement.name, statement.kind)
        return Result(Schema([]), [], command="DROP")

    def _insert(self, statement: ast.Insert) -> Result:
        obj = self.catalog.require(statement.table)
        if not isinstance(obj, BaseTable):
            raise ExecutionError(
                f"cannot INSERT into {obj.kind} {statement.table!r}"
            )
        if statement.columns:
            indices = [
                obj.schema.resolve(name) for name in statement.columns
            ]
        else:
            indices = list(range(len(obj.schema)))
        empty = Schema([])
        rows = []
        for value_exprs in statement.rows:
            if len(value_exprs) != len(indices):
                raise ExecutionError(
                    f"INSERT row arity {len(value_exprs)} does not match "
                    f"{len(indices)} target columns"
                )
            row: List[object] = [None] * len(obj.schema)
            for index, expr in zip(indices, value_exprs):
                row[index] = compile_expression(expr, empty).fn(())
            rows.append(tuple(row))
        count = obj.insert(rows)
        return Result(Schema([]), [], command=f"INSERT {count}")


def _text_type():
    from repro.sql.types import varchar

    return varchar()
