"""The engine-local planner: logical plan → physical plan.

Runs the shared logical rewrites (filter pushdown, join reordering,
projection pruning) with the engine's own statistics, then lowers the
plan to physical operators, choosing hash joins for equi conditions and
pushing work into foreign wrappers according to the vendor profile's
capabilities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.engine import physical, vector
from repro.engine.catalog import BaseTable, ForeignTable
from repro.engine.cost import CardinalityEstimator, ScanStats
from repro.engine.fdw import ForeignScan, build_remote_query, strip_qualifiers
from repro.errors import CatalogError, ExecutionError
from repro.relational import algebra
from repro.relational.expressions import compile_expression, compile_predicate
from repro.relational.optimizer import (
    prune_columns,
    push_filters,
    reorder_joins,
)
from repro.sql import ast
from repro.sql.render import render

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class LocalPlanner:
    """Plans and lowers queries for one :class:`Database`."""

    def __init__(self, database: "Database"):
        self._db = database

    # -- logical optimization ----------------------------------------------

    def scan_stats(self, scan: algebra.Scan) -> ScanStats:
        """Statistics provider backing the cardinality estimator."""
        obj = self._db.catalog.get(scan.table)
        if isinstance(obj, BaseTable):
            stats = obj.stats
            return ScanStats(
                row_count=float(stats.row_count), columns=stats.columns
            )
        if isinstance(obj, ForeignTable):
            server = self._db.server(obj.server)
            remote_stats = server.remote_table_stats(obj.remote_object)
            if remote_stats is not None:
                return ScanStats(
                    row_count=float(remote_stats.row_count),
                    columns=remote_stats.columns,
                )
            rows = server.remote_row_estimate(obj.remote_object)
            return ScanStats(row_count=rows, columns={})
        if scan.placeholder:
            rows = scan.estimated_rows if scan.estimated_rows else 1000.0
            return ScanStats(row_count=rows, columns={})
        raise CatalogError(f"cannot scan object {scan.table!r}")

    def make_estimator(self) -> CardinalityEstimator:
        return CardinalityEstimator(self.scan_stats)

    def optimize(self, plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
        """Run the logical rewrite pipeline with local statistics."""
        plan = push_filters(plan)
        estimator = self.make_estimator()
        plan = reorder_joins(
            plan,
            cardinality=estimator.estimate_rows,
            ndv=estimator.estimate_ndv,
        )
        plan = prune_columns(plan)
        return plan

    # -- physical lowering -----------------------------------------------------

    def to_physical(self, plan: algebra.LogicalPlan) -> physical.PhysicalPlan:
        pushed = self._try_foreign_pushdown(plan)
        if pushed is not None:
            return pushed

        if isinstance(plan, algebra.Scan):
            return self._plan_scan(plan)

        if isinstance(plan, algebra.Filter):
            child = self.to_physical(plan.child)
            predicate = compile_predicate(plan.predicate, plan.child.schema)
            return physical.FilterOp(
                child,
                predicate,
                text=render(plan.predicate),
                kernel=vector.compile_filter_kernel(
                    plan.predicate, plan.child.schema
                ),
            )

        if isinstance(plan, algebra.Project):
            child = self.to_physical(plan.child)
            fns = [
                compile_expression(item.expr, plan.child.schema).fn
                for item in plan.items
            ]
            kernels = [
                vector.compile_kernel(item.expr, plan.child.schema)
                for item in plan.items
            ]
            return physical.ProjectOp(child, fns, plan.schema, kernels)

        if isinstance(plan, algebra.Alias):
            # Pure renaming: execution is the child's.
            child = self.to_physical(plan.child)
            return _Rebind(child, plan.schema)

        if isinstance(plan, algebra.Join):
            return self._plan_join(plan)

        if isinstance(plan, algebra.Union):
            if self._db.parallel_workers > 1:
                # Flatten the left-deep UNION ALL chain (how partition
                # gathers arrive) and drain every branch through the
                # engine's worker pool.
                branches = [
                    self.to_physical(branch)
                    for branch in _union_branches(plan)
                ]
                return physical.ParallelUnionAllOp(
                    branches, plan.schema, self._db.parallel_workers
                )
            return physical.UnionAllOp(
                self.to_physical(plan.left),
                self.to_physical(plan.right),
                plan.schema,
            )

        if isinstance(plan, algebra.Aggregate):
            child = self.to_physical(plan.child)
            key_fns = [
                compile_expression(key.expr, plan.child.schema).fn
                for key in plan.keys
            ]
            key_kernels = [
                vector.compile_kernel(key.expr, plan.child.schema)
                for key in plan.keys
            ]
            specs = []
            spec_kernels = []
            for spec in plan.aggregates:
                arg_fn = (
                    compile_expression(spec.arg, plan.child.schema).fn
                    if spec.arg is not None
                    else None
                )
                specs.append((spec, arg_fn))
                spec_kernels.append(
                    vector.compile_kernel(spec.arg, plan.child.schema)
                    if spec.arg is not None
                    else None
                )
            return physical.HashAggregate(
                child,
                key_fns,
                specs,
                plan.schema,
                key_kernels=key_kernels,
                spec_kernels=spec_kernels,
            )

        if isinstance(plan, algebra.Sort):
            child = self.to_physical(plan.child)
            keys = [
                (
                    compile_expression(key.expr, plan.child.schema).fn,
                    key.ascending,
                )
                for key in plan.keys
            ]
            return physical.SortOp(child, keys)

        if isinstance(plan, algebra.Limit):
            return physical.LimitOp(self.to_physical(plan.child), plan.count)

        if isinstance(plan, algebra.Distinct):
            return physical.DistinctOp(self.to_physical(plan.child))

        raise ExecutionError(
            f"cannot lower logical node {type(plan).__name__}"
        )

    # -- scans ----------------------------------------------------------------

    def _plan_scan(self, scan: algebra.Scan) -> physical.PhysicalPlan:
        if scan.placeholder:
            raise ExecutionError(
                f"placeholder scan {scan.table!r} reached the local "
                "executor; delegation must resolve placeholders first"
            )
        obj = self._db.catalog.require(scan.table)
        if isinstance(obj, BaseTable):
            return physical.SeqScan(obj.name, scan.schema, obj.rows)
        if isinstance(obj, ForeignTable):
            server = self._db.server(obj.server)
            remote_query = build_remote_query(obj.remote_object)
            return ForeignScan(
                server,
                remote_query,
                scan.schema,
                tag=f"fdw:{obj.remote_object.lower()}",
            )
        raise CatalogError(f"cannot scan object {scan.table!r}")

    def _try_foreign_pushdown(
        self, plan: algebra.LogicalPlan
    ) -> Optional[physical.PhysicalPlan]:
        """Lower Project/Filter-over-foreign-scan with wrapper pushdown.

        Which pieces execute remotely depends on the engine profile —
        this is exactly the vendor variance the paper's virtual-relation
        technique (§V, "Preventing Undesirable Executions") sidesteps.
        """
        project: Optional[algebra.Project] = None
        filter_node: Optional[algebra.Filter] = None
        node = plan
        if isinstance(node, algebra.Project):
            project = node
            node = node.child
        if isinstance(node, algebra.Filter):
            filter_node = node
            node = node.child
        # The column pruner inserts a pass-through projection directly over
        # scans; see through it (its narrowing is recomputed below).
        if isinstance(node, algebra.Project) and all(
            isinstance(item.expr, ast.ColumnRef)
            and item.expr.name == item.name
            for item in node.items
        ):
            if project is None:
                project = node
            node = node.child
        if not isinstance(node, algebra.Scan) or node.placeholder:
            return None
        if project is None and filter_node is None:
            return None
        obj = self._db.catalog.get(node.table)
        if not isinstance(obj, ForeignTable):
            return None

        profile = self._db.profile
        server = self._db.server(obj.server)

        remote_where: Optional[ast.Expression] = None
        local_filter: Optional[algebra.Filter] = filter_node
        if filter_node is not None and profile.pushdown_filters:
            remote_where = strip_qualifiers(filter_node.predicate)
            local_filter = None

        remote_columns: Optional[List[str]] = None
        fetched_fields = list(node.schema.fields)
        if profile.pushdown_projections:
            needed = []
            if project is not None:
                for item in project.items:
                    for ref in ast.column_refs(item.expr):
                        index = node.schema.resolve(ref.name, ref.table)
                        if index not in needed:
                            needed.append(index)
            else:
                needed = list(range(len(node.schema)))
            if local_filter is not None:
                for ref in ast.column_refs(local_filter.predicate):
                    index = node.schema.resolve(ref.name, ref.table)
                    if index not in needed:
                        needed.append(index)
            if project is not None and len(needed) < len(node.schema):
                needed.sort()
                fetched_fields = [node.schema[i] for i in needed]
                remote_columns = [field.name for field in fetched_fields]

        from repro.relational.schema import Schema

        fetched_schema = Schema(fetched_fields)
        remote_query = build_remote_query(
            obj.remote_object, remote_columns, remote_where
        )
        result: physical.PhysicalPlan = ForeignScan(
            server,
            remote_query,
            fetched_schema,
            tag=f"fdw:{obj.remote_object.lower()}",
        )

        if local_filter is not None:
            predicate = compile_predicate(
                local_filter.predicate, fetched_schema
            )
            result = physical.FilterOp(
                result,
                predicate,
                text=render(local_filter.predicate),
                kernel=vector.compile_filter_kernel(
                    local_filter.predicate, fetched_schema
                ),
            )
        if project is not None:
            fns = [
                compile_expression(item.expr, fetched_schema).fn
                for item in project.items
            ]
            kernels = [
                vector.compile_kernel(item.expr, fetched_schema)
                for item in project.items
            ]
            result = physical.ProjectOp(
                result, fns, project.schema, kernels
            )
        return result

    # -- joins ----------------------------------------------------------------

    def _plan_join(self, plan: algebra.Join) -> physical.PhysicalPlan:
        left = self.to_physical(plan.left)
        right = self.to_physical(plan.right)

        if plan.condition is None:
            return physical.NestedLoopJoin(
                left, right, plan.schema, None, plan.kind
            )

        keys = plan.equi_keys()
        if keys is None:
            condition = compile_predicate(plan.condition, plan.schema)
            return physical.NestedLoopJoin(
                left, right, plan.schema, condition, plan.kind
            )

        left_fns = [
            compile_expression(left_ref, plan.left.schema).fn
            for left_ref, _ in keys
        ]
        right_fns = [
            compile_expression(right_ref, plan.right.schema).fn
            for _, right_ref in keys
        ]
        left_kernels = [
            vector.compile_kernel(left_ref, plan.left.schema)
            for left_ref, _ in keys
        ]
        right_kernels = [
            vector.compile_kernel(right_ref, plan.right.schema)
            for _, right_ref in keys
        ]
        return physical.HashJoin(
            left,
            right,
            left_fns,
            right_fns,
            plan.schema,
            kind="INNER" if plan.kind == "INNER" else plan.kind,
            left_key_kernels=left_kernels,
            right_key_kernels=right_kernels,
        )


def _union_branches(plan: algebra.Union) -> List[algebra.LogicalPlan]:
    """The leaves of a left-deep UNION ALL chain, in branch order."""
    branches: List[algebra.LogicalPlan] = []

    def walk(node: algebra.LogicalPlan) -> None:
        if isinstance(node, algebra.Union):
            walk(node.left)
            walk(node.right)
        else:
            branches.append(node)

    walk(plan)
    return branches


class _Rebind(physical.PhysicalPlan):
    """Schema-only wrapper implementing logical Alias at runtime."""

    def __init__(self, child: physical.PhysicalPlan, schema):
        super().__init__()
        self.child = child
        self.schema = schema

    def children(self) -> List[physical.PhysicalPlan]:
        return [self.child]

    def _produce(self):
        return self.child.rows()

    def _produce_batches(self, hint):
        return self.child.batches(hint)

    def label(self) -> str:
        return "Rebind"
