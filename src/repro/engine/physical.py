"""Physical operators: a pull-based (iterator) query executor.

Operators compile their expressions once at construction and stream
rows in one of two interchangeable modes:

* **row mode** (``rows()``) pulls one tuple at a time through the
  operator tree — simple, and the reference for semantics;
* **batch mode** (``batches()``) pulls :class:`~repro.engine.vector.
  ColumnBatch` runs of rows and evaluates expressions through compiled
  column kernels, amortizing the per-tuple interpreter overhead.

Every operator counts the rows it produces (``rows_out``) identically
in both modes, which feeds the execution statistics the schedule
simulator consumes (see DESIGN.md §7 for the cardinality-parity
contract and its one batch-granularity caveat under LIMIT).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.parallel import HedgePolicy, WorkerPool, check_cancelled
from repro.engine.vector import (
    BATCH_SIZE,
    ColumnBatch,
    GroupedAggregator,
    batches_from_rows,
)
from repro.errors import ExecutionError
from repro.obs.runtime import current_context
from repro.relational.algebra import AggregateSpec
from repro.relational.schema import Schema

RowFn = Callable[[tuple], object]


class PhysicalPlan:
    """Base class for physical operators."""

    schema: Schema

    def __init__(self) -> None:
        self.rows_out = 0

    def rows(self) -> Iterator[tuple]:
        """Stream output rows, counting them as a side effect."""
        for row in self._produce():
            self.rows_out += 1
            yield row

    def batches(self, hint: Optional[int] = None) -> Iterator[ColumnBatch]:
        """Stream output batches, counting rows as a side effect.

        ``hint`` is an upper bound on the rows the consumer will use
        (propagated down from LIMIT).  Operators that can honor it
        exactly do; for the rest it is advisory and the consumer
        truncates.
        """
        for batch in self._produce_batches(hint):
            self.rows_out += batch.length
            yield batch

    def _produce(self) -> Iterator[tuple]:
        raise NotImplementedError

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        """Fallback batch path: chunk the operator's own row stream.

        Subtrees without a native batch implementation run their
        row-mode ``_produce`` (children are pulled row-wise), so
        semantics and per-operator counts are preserved exactly.
        """
        width = len(self.schema)
        buffer: List[tuple] = []
        produced = 0
        for row in self._produce():
            buffer.append(row)
            produced += 1
            if hint is not None and produced >= hint:
                break
            if len(buffer) >= BATCH_SIZE:
                yield ColumnBatch(rows=buffer, width=width)
                buffer = []
        if buffer:
            yield ColumnBatch(rows=buffer, width=width)

    def children(self) -> List["PhysicalPlan"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def total_rows_processed(self) -> int:
        """Rows produced by this whole subtree (a simple work measure)."""
        return self.rows_out + sum(
            child.total_rows_processed() for child in self.children()
        )

    def walk(self) -> Iterator["PhysicalPlan"]:
        """This operator and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def clone(self) -> "PhysicalPlan":
        """A structural copy with fresh row counters.

        Hedged execution re-runs a branch concurrently with its
        primary; the two runs must not share operator objects or the
        interleaved ``rows_out`` increments would corrupt both counts.
        Operator nodes are copied (recursively, through lists of
        children too); borrowed row storage and compiled kernels are
        shared — they are read-only during execution.
        """
        dup = copy.copy(self)
        dup.rows_out = 0
        for key, value in list(dup.__dict__.items()):
            if isinstance(value, PhysicalPlan):
                setattr(dup, key, value.clone())
            elif (
                isinstance(value, list)
                and value
                and all(isinstance(item, PhysicalPlan) for item in value)
            ):
                setattr(dup, key, [item.clone() for item in value])
        return dup


class SeqScan(PhysicalPlan):
    """Full scan of a stored table."""

    def __init__(self, table_name: str, schema: Schema, rows: List[tuple]):
        super().__init__()
        self.table_name = table_name
        self.schema = schema
        self._rows = rows

    def _produce(self) -> Iterator[tuple]:
        return iter(self._rows)

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        return batches_from_rows(self._rows, len(self.schema), limit=hint)

    def label(self) -> str:
        return f"SeqScan[{self.table_name}]"


class ValuesScan(PhysicalPlan):
    """Scan over an in-memory row list (materialized intermediates)."""

    def __init__(self, schema: Schema, rows: List[tuple], name: str = "values"):
        super().__init__()
        self.schema = schema
        self._rows = rows
        self.name = name

    def _produce(self) -> Iterator[tuple]:
        return iter(self._rows)

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        return batches_from_rows(self._rows, len(self.schema), limit=hint)

    def label(self) -> str:
        return f"ValuesScan[{self.name}]"


class FilterOp(PhysicalPlan):
    """Row selection by a compiled predicate.

    ``kernel`` is the optional selection kernel (``fn(batch) ->
    indices | None``) compiled by the planner; without it the batch
    path filters through the row predicate.
    """

    def __init__(
        self,
        child: PhysicalPlan,
        predicate: RowFn,
        text: str = "",
        kernel: Optional[Callable] = None,
    ):
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.text = text
        self.kernel = kernel

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.rows():
            if predicate(row):
                yield row

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        select = self.kernel
        predicate = self.predicate
        remaining = hint
        for batch in self.child.batches():
            if select is not None:
                picked = select(batch)
                if picked is None:
                    out = batch
                elif picked:
                    out = batch.take(picked)
                else:
                    continue
            else:
                kept = [row for row in batch.rows() if predicate(row)]
                if not kept:
                    continue
                out = ColumnBatch(rows=kept, width=len(self.schema))
            if remaining is not None:
                out = out.head(remaining)
                remaining -= out.length
                yield out
                if remaining <= 0:
                    return
            else:
                yield out

    def label(self) -> str:
        return f"Filter[{self.text}]" if self.text else "Filter"


class ProjectOp(PhysicalPlan):
    """Column computation by a list of compiled expressions."""

    def __init__(
        self,
        child: PhysicalPlan,
        fns: Sequence[RowFn],
        schema: Schema,
        kernels: Optional[Sequence[Callable]] = None,
    ):
        super().__init__()
        self.child = child
        self.fns = list(fns)
        self.schema = schema
        self.kernels = list(kernels) if kernels is not None else None
        # Pure column picks (every kernel a tagged ColumnRef) gather the
        # needed columns in one step instead of running each kernel over
        # a fully transposed batch.
        self.pick_indices: Optional[List[int]] = None
        if self.kernels and all(
            hasattr(kernel, "column_index") for kernel in self.kernels
        ):
            self.pick_indices = [
                kernel.column_index for kernel in self.kernels
            ]

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        fns = self.fns
        for row in self.child.rows():
            yield tuple(fn(row) for fn in fns)

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        kernels = self.kernels
        if kernels is None:
            fns = self.fns
            for batch in self.child.batches(hint):
                rows = [
                    tuple(fn(row) for fn in fns) for row in batch.rows()
                ]
                yield ColumnBatch(rows=rows, width=len(self.schema))
            return
        picks = self.pick_indices
        if picks is not None:
            for batch in self.child.batches(hint):
                yield batch.pick(picks)
            return
        for batch in self.child.batches(hint):
            yield ColumnBatch(
                columns=[kernel(batch) for kernel in kernels]
            )

    def label(self) -> str:
        return f"Project[{len(self.fns)} cols]"


class HashJoin(PhysicalPlan):
    """Equi hash join; builds on the right input, probes with the left.

    SQL semantics: NULL keys never match.  ``kind`` is INNER or LEFT;
    ``residual`` is an optional extra predicate over the joined row.
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_keys: Sequence[RowFn],
        right_keys: Sequence[RowFn],
        schema: Schema,
        kind: str = "INNER",
        residual: Optional[RowFn] = None,
        left_key_kernels: Optional[Sequence[Callable]] = None,
        right_key_kernels: Optional[Sequence[Callable]] = None,
    ):
        super().__init__()
        if kind not in ("INNER", "LEFT"):
            raise ExecutionError(f"unsupported hash-join kind {kind!r}")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.schema = schema
        self.kind = kind
        self.residual = residual
        self.left_key_kernels = (
            list(left_key_kernels) if left_key_kernels is not None else None
        )
        self.right_key_kernels = (
            list(right_key_kernels) if right_key_kernels is not None else None
        )

    def children(self) -> List[PhysicalPlan]:
        return [self.left, self.right]

    def _produce(self) -> Iterator[tuple]:
        if len(self.left_keys) == 1:
            yield from self._produce_single_key()
            return
        table: Dict[tuple, List[tuple]] = {}
        right_keys = self.right_keys
        for row in self.right.rows():
            key = tuple(fn(row) for fn in right_keys)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)

        left_keys = self.left_keys
        residual = self.residual
        pad = (None,) * len(self.right.schema)
        left_outer = self.kind == "LEFT"

        for row in self.left.rows():
            key = tuple(fn(row) for fn in left_keys)
            matched = False
            if not any(value is None for value in key):
                for right_row in table.get(key, ()):
                    joined = row + right_row
                    if residual is None or residual(joined):
                        matched = True
                        yield joined
            if left_outer and not matched:
                yield row + pad

    def _produce_single_key(self) -> Iterator[tuple]:
        """Single-key joins skip per-row key-tuple construction and the
        None scan — the overwhelmingly common case in the workloads."""
        table: Dict[object, List[tuple]] = {}
        right_key = self.right_keys[0]
        for row in self.right.rows():
            key = right_key(row)
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)

        left_key = self.left_keys[0]
        residual = self.residual
        pad = (None,) * len(self.right.schema)
        left_outer = self.kind == "LEFT"
        lookup = table.get

        for row in self.left.rows():
            key = left_key(row)
            bucket = lookup(key) if key is not None else None
            if bucket:
                if residual is None:
                    for right_row in bucket:
                        yield row + right_row
                    continue
                matched = False
                for right_row in bucket:
                    joined = row + right_row
                    if residual(joined):
                        matched = True
                        yield joined
                if matched:
                    continue
            if left_outer:
                yield row + pad

    # -- batch path --------------------------------------------------------

    def _build_table(self) -> Tuple[Dict[object, object], bool]:
        """Consume the right input (as batches) into the hash table.

        Returns ``(table, unique)``.  While no key collides, each value
        is the matching row itself (a tuple); the first collision turns
        values into list buckets and flips ``unique`` — the probe side
        uses the all-unique case (PK–FK joins, the common shape in the
        workloads) for a comprehension-based fast path.
        """
        table: Dict[object, object] = {}
        unique = True
        kernels = self.right_key_kernels
        single = len(self.right_keys) == 1
        for batch in self.right.batches():
            rows = batch.rows()
            if kernels is not None:
                key_columns = [kernel(batch) for kernel in kernels]
            else:
                fns = self.right_keys
                key_columns = [
                    [fn(row) for row in rows] for fn in fns
                ]
            if single:
                for key, row in zip(key_columns[0], rows):
                    if key is None:
                        continue
                    existing = table.get(key)
                    if existing is None:
                        table[key] = row
                    elif existing.__class__ is list:
                        existing.append(row)
                    else:
                        table[key] = [existing, row]
                        unique = False
            else:
                for packed in zip(*key_columns, rows):
                    row = packed[-1]
                    key = packed[:-1]
                    if None in key:
                        continue
                    existing = table.get(key)
                    if existing is None:
                        table[key] = row
                    elif existing.__class__ is list:
                        existing.append(row)
                    else:
                        table[key] = [existing, row]
                        unique = False
        return table, unique

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        table, unique = self._build_table()
        kernels = self.left_key_kernels
        single = len(self.left_keys) == 1
        residual = self.residual
        pad = (None,) * len(self.right.schema)
        left_outer = self.kind == "LEFT"
        fast = unique and residual is None
        if not fast:
            # The generic probe loop expects list buckets.
            for key, value in table.items():
                if value.__class__ is not list:
                    table[key] = [value]
        lookup = table.get
        width = len(self.schema)
        remaining = hint

        for batch in self.left.batches():
            rows = batch.rows()
            if kernels is not None:
                key_columns = [kernel(batch) for kernel in kernels]
            else:
                fns = self.left_keys
                key_columns = [[fn(row) for row in rows] for fn in fns]
            if fast:
                # All build keys are unique: probe with a C-level
                # map over dict.get and one comprehension.  NULL and
                # missing keys both come back as None (NULL keys are
                # never inserted, so a NULL probe cannot match).
                keys = (
                    key_columns[0] if single else zip(*key_columns)
                )
                matches = map(lookup, keys)
                if left_outer:
                    out = [
                        row + (match if match is not None else pad)
                        for row, match in zip(rows, matches)
                    ]
                else:
                    out = [
                        row + match
                        for row, match in zip(rows, matches)
                        if match is not None
                    ]
                if not out:
                    continue
                result = ColumnBatch(rows=out, width=width)
                if remaining is not None:
                    result = result.head(remaining)
                    remaining -= result.length
                    yield result
                    if remaining <= 0:
                        return
                else:
                    yield result
                continue
            out: List[tuple] = []
            append = out.append
            if single:
                for key, row in zip(key_columns[0], rows):
                    bucket = lookup(key) if key is not None else None
                    if bucket:
                        if residual is None:
                            for right_row in bucket:
                                append(row + right_row)
                            continue
                        matched = False
                        for right_row in bucket:
                            joined = row + right_row
                            if residual(joined):
                                matched = True
                                append(joined)
                        if matched:
                            continue
                    if left_outer:
                        append(row + pad)
            else:
                for packed in zip(*key_columns, rows):
                    row = packed[-1]
                    key = packed[:-1]
                    bucket = lookup(key) if None not in key else None
                    if bucket:
                        if residual is None:
                            for right_row in bucket:
                                append(row + right_row)
                            continue
                        matched = False
                        for right_row in bucket:
                            joined = row + right_row
                            if residual(joined):
                                matched = True
                                append(joined)
                        if matched:
                            continue
                    if left_outer:
                        append(row + pad)
            if not out:
                continue
            result = ColumnBatch(rows=out, width=width)
            if remaining is not None:
                result = result.head(remaining)
                remaining -= result.length
                yield result
                if remaining <= 0:
                    return
            else:
                yield result

    def label(self) -> str:
        return f"HashJoin[{self.kind}, {len(self.left_keys)} keys]"


class NestedLoopJoin(PhysicalPlan):
    """Fallback join for non-equi conditions and cross joins."""

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        schema: Schema,
        condition: Optional[RowFn] = None,
        kind: str = "INNER",
    ):
        super().__init__()
        if kind not in ("INNER", "LEFT", "CROSS"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.schema = schema
        self.condition = condition
        self.kind = kind

    def children(self) -> List[PhysicalPlan]:
        return [self.left, self.right]

    def _produce(self) -> Iterator[tuple]:
        right_rows = list(self.right.rows())
        condition = self.condition
        pad = (None,) * len(self.right.schema)
        left_outer = self.kind == "LEFT"
        for row in self.left.rows():
            matched = False
            for right_row in right_rows:
                joined = row + right_row
                if condition is None or condition(joined):
                    matched = True
                    yield joined
            if left_outer and not matched:
                yield row + pad

    def label(self) -> str:
        return f"NestedLoopJoin[{self.kind}]"


class _Accumulator:
    """One aggregate state cell."""

    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.extreme = None
        self.seen = set() if distinct else None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "MIN":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.func == "MAX":
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> object:
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


class _CountStar:
    """Sentinel standing in for the argument of COUNT(*)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<count(*)>"


_COUNT_STAR = _CountStar()


class HashAggregate(PhysicalPlan):
    """Hash aggregation over compiled group keys and aggregate specs.

    With no group keys, always emits exactly one row (SQL's scalar
    aggregate semantics over an empty input).
    """

    def __init__(
        self,
        child: PhysicalPlan,
        key_fns: Sequence[RowFn],
        specs: Sequence[Tuple[AggregateSpec, Optional[RowFn]]],
        schema: Schema,
        key_kernels: Optional[Sequence[Callable]] = None,
        spec_kernels: Optional[Sequence[Optional[Callable]]] = None,
    ):
        super().__init__()
        self.child = child
        self.key_fns = list(key_fns)
        self.specs = list(specs)
        self.schema = schema
        self.key_kernels = (
            list(key_kernels) if key_kernels is not None else None
        )
        self.spec_kernels = (
            list(spec_kernels) if spec_kernels is not None else None
        )

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        aggregator = GroupedAggregator([spec for spec, _ in self.specs])
        key_kernels = self.key_kernels
        spec_kernels = self.spec_kernels
        key_count = len(self.key_fns)
        single_key = key_count == 1

        for batch in self.child.batches():
            if key_kernels is not None:
                key_columns = [kernel(batch) for kernel in key_kernels]
            else:
                rows = batch.rows()
                key_columns = [
                    [fn(row) for row in rows] for fn in self.key_fns
                ]
            if single_key:
                keys: Sequence[object] = key_columns[0]
            elif key_count:
                keys = list(zip(*key_columns))
            else:
                keys = [()] * batch.length
            gids = aggregator.group_ids(keys)
            for index, (spec, arg_fn) in enumerate(self.specs):
                if spec_kernels is not None:
                    kernel = spec_kernels[index]
                    values = None if kernel is None else kernel(batch)
                elif arg_fn is None:
                    values = None
                else:
                    values = [arg_fn(row) for row in batch.rows()]
                aggregator.accumulate(index, gids, values)

        if aggregator.group_count() == 0 and not self.key_fns:
            # SQL scalar-aggregate semantics over an empty input.
            aggregator.ensure_group(())
            single_key = False

        width = len(self.schema)
        emitted = aggregator.emit_rows(key_is_tuple=not single_key)
        buffer: List[tuple] = []
        produced = 0
        for row in emitted:
            buffer.append(row)
            produced += 1
            if hint is not None and produced >= hint:
                break
            if len(buffer) >= BATCH_SIZE:
                yield ColumnBatch(rows=buffer, width=width)
                buffer = []
        if buffer:
            yield ColumnBatch(rows=buffer, width=width)

    def _produce(self) -> Iterator[tuple]:
        groups: Dict[tuple, List[_Accumulator]] = {}
        key_fns = self.key_fns
        specs = self.specs

        for row in self.child.rows():
            key = tuple(fn(row) for fn in key_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    _Accumulator(spec.func, spec.distinct)
                    for spec, _ in specs
                ]
                groups[key] = accumulators
            for accumulator, (spec, arg_fn) in zip(accumulators, specs):
                value = _COUNT_STAR if arg_fn is None else arg_fn(row)
                accumulator.add(value)

        if not groups and not key_fns:
            accumulators = [
                _Accumulator(spec.func, spec.distinct) for spec, _ in specs
            ]
            yield tuple(acc.result() for acc in accumulators)
            return

        for key, accumulators in groups.items():
            yield key + tuple(acc.result() for acc in accumulators)

    def label(self) -> str:
        return (
            f"HashAggregate[{len(self.key_fns)} keys, "
            f"{len(self.specs)} aggs]"
        )


class UnionAllOp(PhysicalPlan):
    """Concatenation of two positionally compatible inputs."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan, schema: Schema):
        super().__init__()
        self.left = left
        self.right = right
        self.schema = schema

    def children(self) -> List[PhysicalPlan]:
        return [self.left, self.right]

    def _produce(self) -> Iterator[tuple]:
        for row in self.left.rows():
            yield row
        for row in self.right.rows():
            yield row

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        remaining = hint
        for side in (self.left, self.right):
            for batch in side.batches(remaining):
                if remaining is not None:
                    batch = batch.head(remaining)
                    remaining -= batch.length
                    yield batch
                    if remaining <= 0:
                        return
                else:
                    yield batch


class ParallelUnionAllOp(PhysicalPlan):
    """N-ary gather whose inputs drain concurrently on a worker pool.

    The parallel lowering of a UNION ALL chain — typically the gather
    over per-shard partition branches.  Every branch materializes on a
    pool thread with the ambient query context propagated (spans,
    metrics, counters all attribute correctly); the gather then emits
    branch outputs in branch order, so results are deterministic
    regardless of worker interleaving.  Branches run eagerly and do not
    see a LIMIT hint — the gather truncates on the consumer side (the
    documented batch-granularity caveat, widened to branch granularity).
    """

    def __init__(
        self,
        branches: Sequence[PhysicalPlan],
        schema: Schema,
        workers: int,
    ):
        super().__init__()
        self.branches = list(branches)
        self.schema = schema
        self.workers = max(int(workers), 1)
        #: per-branch thread-CPU seconds from the latest execution (the
        #: bench derives the pool makespan from these)
        self.branch_busy_seconds: List[float] = []

    def children(self) -> List[PhysicalPlan]:
        return list(self.branches)

    def label(self) -> str:
        return (
            f"ParallelUnionAll[{len(self.branches)} branches, "
            f"{self.workers} workers]"
        )

    def _hedge_policy(self, ctx, produce) -> Optional[HedgePolicy]:
        """Speculative-duplicate policy for straggling branches.

        Enabled when the QoS policy set a hedge multiplier and the
        workload gate saw spare capacity at admission.  A hedge runs a
        *clone* of the straggling branch so the duplicate's row
        counters never interleave with the primary's.
        """
        multiplier = getattr(ctx, "hedge_multiplier", None) if ctx else None
        if (
            multiplier is None
            or not getattr(ctx, "hedging_allowed", True)
            or len(self.branches) < 2
        ):
            return None
        return HedgePolicy(
            multiplier=float(multiplier),
            factory=lambda index: (
                lambda: produce(self.branches[index].clone())
            ),
        )

    def _gather(self, produce):
        ctx = current_context()
        pool = WorkerPool(self.workers)
        outcomes = pool.map(
            [
                (lambda branch=branch: produce(branch))
                for branch in self.branches
            ],
            context=ctx,
            hedge=self._hedge_policy(ctx, produce),
        )
        self.branch_busy_seconds = [
            outcome.busy_seconds for outcome in outcomes
        ]
        return [outcome.value for outcome in outcomes]

    @staticmethod
    def _drain(stream, stride: int = 256) -> list:
        """Materialize a branch stream with cooperative cancel points.

        A hedged loser keeps its worker thread until it notices the
        cancel; polling every ``stride`` items keeps that window small
        without measurably taxing the hot loop."""
        out: List[object] = []
        for count, item in enumerate(stream):
            if count % stride == 0:
                check_cancelled()
            out.append(item)
        return out

    def _produce(self) -> Iterator[tuple]:
        for chunk in self._gather(lambda branch: self._drain(branch.rows())):
            yield from chunk

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        remaining = hint
        for chunk in self._gather(
            lambda branch: self._drain(branch.batches(), stride=4)
        ):
            for batch in chunk:
                if remaining is not None:
                    batch = batch.head(remaining)
                    remaining -= batch.length
                    yield batch
                    if remaining <= 0:
                        return
                else:
                    yield batch


class SortOp(PhysicalPlan):
    """Full sort; NULLS LAST for ascending keys, FIRST for descending."""

    def __init__(
        self,
        child: PhysicalPlan,
        keys: Sequence[Tuple[RowFn, bool]],
    ):
        super().__init__()
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        return iter(self._sorted_rows(list(self.child.rows())))

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        rows: List[tuple] = []
        for batch in self.child.batches():
            rows.extend(batch.rows())
        rows = self._sorted_rows(rows)
        return batches_from_rows(rows, len(self.schema), limit=hint)

    def _sorted_rows(self, rows: List[tuple]) -> List[tuple]:
        # Stable sorts applied from the least-significant key backwards.
        for key_fn, ascending in reversed(self.keys):

            def sort_key(row, key_fn=key_fn):
                value = key_fn(row)
                return (1, 0) if value is None else (0, value)

            rows.sort(key=sort_key, reverse=not ascending)
        return rows

    def label(self) -> str:
        return f"Sort[{len(self.keys)} keys]"


class LimitOp(PhysicalPlan):
    """Stop after ``count`` rows."""

    def __init__(self, child: PhysicalPlan, count: int):
        super().__init__()
        self.child = child
        self.count = count
        self.schema = child.schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        if self.count <= 0:
            return
        produced = 0
        for row in self.child.rows():
            produced += 1
            yield row
            if produced >= self.count:
                return

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        remaining = self.count
        if hint is not None:
            remaining = min(remaining, hint)
        if remaining <= 0:
            return
        for batch in self.child.batches(remaining):
            batch = batch.head(remaining)
            remaining -= batch.length
            yield batch
            if remaining <= 0:
                return

    def label(self) -> str:
        return f"Limit[{self.count}]"


class DistinctOp(PhysicalPlan):
    """Duplicate elimination via a seen-set over whole rows."""

    def __init__(self, child: PhysicalPlan):
        super().__init__()
        self.child = child
        self.schema = child.schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row

    def _produce_batches(self, hint: Optional[int]) -> Iterator[ColumnBatch]:
        seen: set = set()
        add = seen.add
        width = len(self.schema)
        remaining = hint
        for batch in self.child.batches():
            fresh: List[tuple] = []
            append = fresh.append
            for row in batch.rows():
                if row not in seen:
                    add(row)
                    append(row)
            if not fresh:
                continue
            out = ColumnBatch(rows=fresh, width=width)
            if remaining is not None:
                out = out.head(remaining)
                remaining -= out.length
                yield out
                if remaining <= 0:
                    return
            else:
                yield out
