"""Physical operators: a pull-based (iterator) query executor.

Operators compile their expressions once at construction and stream row
tuples.  Every operator counts the rows it produces (``rows_out``), which
feeds the execution statistics the schedule simulator consumes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.algebra import AggregateSpec
from repro.relational.schema import Schema

RowFn = Callable[[tuple], object]


class PhysicalPlan:
    """Base class for physical operators."""

    schema: Schema

    def __init__(self) -> None:
        self.rows_out = 0

    def rows(self) -> Iterator[tuple]:
        """Stream output rows, counting them as a side effect."""
        for row in self._produce():
            self.rows_out += 1
            yield row

    def _produce(self) -> Iterator[tuple]:
        raise NotImplementedError

    def children(self) -> List["PhysicalPlan"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def total_rows_processed(self) -> int:
        """Rows produced by this whole subtree (a simple work measure)."""
        return self.rows_out + sum(
            child.total_rows_processed() for child in self.children()
        )


class SeqScan(PhysicalPlan):
    """Full scan of a stored table."""

    def __init__(self, table_name: str, schema: Schema, rows: List[tuple]):
        super().__init__()
        self.table_name = table_name
        self.schema = schema
        self._rows = rows

    def _produce(self) -> Iterator[tuple]:
        return iter(self._rows)

    def label(self) -> str:
        return f"SeqScan[{self.table_name}]"


class ValuesScan(PhysicalPlan):
    """Scan over an in-memory row list (materialized intermediates)."""

    def __init__(self, schema: Schema, rows: List[tuple], name: str = "values"):
        super().__init__()
        self.schema = schema
        self._rows = rows
        self.name = name

    def _produce(self) -> Iterator[tuple]:
        return iter(self._rows)

    def label(self) -> str:
        return f"ValuesScan[{self.name}]"


class FilterOp(PhysicalPlan):
    """Row selection by a compiled predicate."""

    def __init__(self, child: PhysicalPlan, predicate: RowFn, text: str = ""):
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.text = text

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.rows():
            if predicate(row):
                yield row

    def label(self) -> str:
        return f"Filter[{self.text}]" if self.text else "Filter"


class ProjectOp(PhysicalPlan):
    """Column computation by a list of compiled expressions."""

    def __init__(
        self, child: PhysicalPlan, fns: Sequence[RowFn], schema: Schema
    ):
        super().__init__()
        self.child = child
        self.fns = list(fns)
        self.schema = schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        fns = self.fns
        for row in self.child.rows():
            yield tuple(fn(row) for fn in fns)

    def label(self) -> str:
        return f"Project[{len(self.fns)} cols]"


class HashJoin(PhysicalPlan):
    """Equi hash join; builds on the right input, probes with the left.

    SQL semantics: NULL keys never match.  ``kind`` is INNER or LEFT;
    ``residual`` is an optional extra predicate over the joined row.
    """

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_keys: Sequence[RowFn],
        right_keys: Sequence[RowFn],
        schema: Schema,
        kind: str = "INNER",
        residual: Optional[RowFn] = None,
    ):
        super().__init__()
        if kind not in ("INNER", "LEFT"):
            raise ExecutionError(f"unsupported hash-join kind {kind!r}")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.schema = schema
        self.kind = kind
        self.residual = residual

    def children(self) -> List[PhysicalPlan]:
        return [self.left, self.right]

    def _produce(self) -> Iterator[tuple]:
        table: Dict[tuple, List[tuple]] = {}
        right_keys = self.right_keys
        for row in self.right.rows():
            key = tuple(fn(row) for fn in right_keys)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)

        left_keys = self.left_keys
        residual = self.residual
        pad = (None,) * len(self.right.schema)
        left_outer = self.kind == "LEFT"

        for row in self.left.rows():
            key = tuple(fn(row) for fn in left_keys)
            matched = False
            if not any(value is None for value in key):
                for right_row in table.get(key, ()):
                    joined = row + right_row
                    if residual is None or residual(joined):
                        matched = True
                        yield joined
            if left_outer and not matched:
                yield row + pad

    def label(self) -> str:
        return f"HashJoin[{self.kind}, {len(self.left_keys)} keys]"


class NestedLoopJoin(PhysicalPlan):
    """Fallback join for non-equi conditions and cross joins."""

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        schema: Schema,
        condition: Optional[RowFn] = None,
        kind: str = "INNER",
    ):
        super().__init__()
        if kind not in ("INNER", "LEFT", "CROSS"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.schema = schema
        self.condition = condition
        self.kind = kind

    def children(self) -> List[PhysicalPlan]:
        return [self.left, self.right]

    def _produce(self) -> Iterator[tuple]:
        right_rows = list(self.right.rows())
        condition = self.condition
        pad = (None,) * len(self.right.schema)
        left_outer = self.kind == "LEFT"
        for row in self.left.rows():
            matched = False
            for right_row in right_rows:
                joined = row + right_row
                if condition is None or condition(joined):
                    matched = True
                    yield joined
            if left_outer and not matched:
                yield row + pad

    def label(self) -> str:
        return f"NestedLoopJoin[{self.kind}]"


class _Accumulator:
    """One aggregate state cell."""

    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.extreme = None
        self.seen = set() if distinct else None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "MIN":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.func == "MAX":
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> object:
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


class _CountStar:
    """Sentinel standing in for the argument of COUNT(*)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<count(*)>"


_COUNT_STAR = _CountStar()


class HashAggregate(PhysicalPlan):
    """Hash aggregation over compiled group keys and aggregate specs.

    With no group keys, always emits exactly one row (SQL's scalar
    aggregate semantics over an empty input).
    """

    def __init__(
        self,
        child: PhysicalPlan,
        key_fns: Sequence[RowFn],
        specs: Sequence[Tuple[AggregateSpec, Optional[RowFn]]],
        schema: Schema,
    ):
        super().__init__()
        self.child = child
        self.key_fns = list(key_fns)
        self.specs = list(specs)
        self.schema = schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        groups: Dict[tuple, List[_Accumulator]] = {}
        key_fns = self.key_fns
        specs = self.specs

        for row in self.child.rows():
            key = tuple(fn(row) for fn in key_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    _Accumulator(spec.func, spec.distinct)
                    for spec, _ in specs
                ]
                groups[key] = accumulators
            for accumulator, (spec, arg_fn) in zip(accumulators, specs):
                value = _COUNT_STAR if arg_fn is None else arg_fn(row)
                accumulator.add(value)

        if not groups and not key_fns:
            accumulators = [
                _Accumulator(spec.func, spec.distinct) for spec, _ in specs
            ]
            yield tuple(acc.result() for acc in accumulators)
            return

        for key, accumulators in groups.items():
            yield key + tuple(acc.result() for acc in accumulators)

    def label(self) -> str:
        return (
            f"HashAggregate[{len(self.key_fns)} keys, "
            f"{len(self.specs)} aggs]"
        )


class UnionAllOp(PhysicalPlan):
    """Concatenation of two positionally compatible inputs."""

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan, schema: Schema):
        super().__init__()
        self.left = left
        self.right = right
        self.schema = schema

    def children(self) -> List[PhysicalPlan]:
        return [self.left, self.right]

    def _produce(self) -> Iterator[tuple]:
        for row in self.left.rows():
            yield row
        for row in self.right.rows():
            yield row


class SortOp(PhysicalPlan):
    """Full sort; NULLS LAST for ascending keys, FIRST for descending."""

    def __init__(
        self,
        child: PhysicalPlan,
        keys: Sequence[Tuple[RowFn, bool]],
    ):
        super().__init__()
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        rows = list(self.child.rows())
        # Stable sorts applied from the least-significant key backwards.
        for key_fn, ascending in reversed(self.keys):

            def sort_key(row, key_fn=key_fn):
                value = key_fn(row)
                return (1, 0) if value is None else (0, value)

            rows.sort(key=sort_key, reverse=not ascending)
        return iter(rows)

    def label(self) -> str:
        return f"Sort[{len(self.keys)} keys]"


class LimitOp(PhysicalPlan):
    """Stop after ``count`` rows."""

    def __init__(self, child: PhysicalPlan, count: int):
        super().__init__()
        self.child = child
        self.count = count
        self.schema = child.schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        if self.count <= 0:
            return
        produced = 0
        for row in self.child.rows():
            produced += 1
            yield row
            if produced >= self.count:
                return

    def label(self) -> str:
        return f"Limit[{self.count}]"


class DistinctOp(PhysicalPlan):
    """Duplicate elimination via a seen-set over whole rows."""

    def __init__(self, child: PhysicalPlan):
        super().__init__()
        self.child = child
        self.schema = child.schema

    def children(self) -> List[PhysicalPlan]:
        return [self.child]

    def _produce(self) -> Iterator[tuple]:
        seen = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row
