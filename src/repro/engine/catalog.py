"""Engine catalog: stored tables, views, and foreign tables.

Names are case-insensitive, like mainstream SQL engines.  The catalog
implements :class:`repro.relational.builder.TableResolver`, so the plan
builder can bind queries directly against it; foreign tables resolve as
ordinary relations and the planner turns their scans into foreign scans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.stats import TableStats, compute_stats
from repro.errors import CatalogError
from repro.relational.builder import ResolvedTable, TableResolver
from repro.relational.schema import Schema
from repro.sql import ast


class BaseTable:
    """A stored relation: schema, rows, and (lazily computed) statistics."""

    kind = "TABLE"

    def __init__(self, name: str, schema: Schema, rows=None, temporary=False):
        self.name = name
        self.schema = schema.unqualified()
        self.rows: List[tuple] = list(rows) if rows is not None else []
        self.temporary = temporary
        self._stats: Optional[TableStats] = None

    @property
    def stats(self) -> TableStats:
        if self._stats is None:
            self._stats = compute_stats(self.schema, self.rows)
        return self._stats

    def invalidate_stats(self) -> None:
        self._stats = None

    def insert(self, rows) -> int:
        count = 0
        for row in rows:
            if len(row) != len(self.schema):
                raise CatalogError(
                    f"row arity {len(row)} does not match table "
                    f"{self.name!r} with {len(self.schema)} columns"
                )
            self.rows.append(tuple(row))
            count += 1
        self.invalidate_stats()
        return count


class View:
    """A named query; expanded inline by the plan builder."""

    kind = "VIEW"

    def __init__(self, name: str, query: ast.Select):
        self.name = name
        self.query = query


class ForeignTable:
    """A SQL/MED foreign table: schema plus (server, remote object)."""

    kind = "FOREIGN TABLE"

    def __init__(
        self, name: str, schema: Schema, server: str, remote_object: str
    ):
        self.name = name
        self.schema = schema.unqualified()
        self.server = server
        self.remote_object = remote_object


CatalogObject = object  # BaseTable | View | ForeignTable


class Catalog(TableResolver):
    """Name → object map with resolver support for the plan builder."""

    def __init__(self, database_name: str):
        self.database_name = database_name
        self._objects: Dict[str, CatalogObject] = {}

    # -- management ----------------------------------------------------------

    def add(self, obj: CatalogObject, replace: bool = False) -> None:
        key = obj.name.lower()
        if not replace and key in self._objects:
            raise CatalogError(
                f"object {obj.name!r} already exists in database "
                f"{self.database_name!r}"
            )
        self._objects[key] = obj

    def drop(self, name: str, kind: Optional[str] = None) -> None:
        key = name.lower()
        obj = self._objects.get(key)
        if obj is None:
            raise CatalogError(
                f"object {name!r} does not exist in database "
                f"{self.database_name!r}"
            )
        if kind is not None and obj.kind != kind:
            # MariaDB-style engines drop federated tables via DROP TABLE.
            if not (kind == "TABLE" and obj.kind == "FOREIGN TABLE"):
                raise CatalogError(
                    f"object {name!r} is a {obj.kind}, not a {kind}"
                )
        del self._objects[key]

    def get(self, name: str) -> Optional[CatalogObject]:
        return self._objects.get(name.lower())

    def require(self, name: str) -> CatalogObject:
        obj = self.get(name)
        if obj is None:
            raise CatalogError(
                f"unknown relation {name!r} in database "
                f"{self.database_name!r}"
            )
        return obj

    def names(self) -> List[str]:
        return sorted(obj.name for obj in self._objects.values())

    def objects(self) -> List[CatalogObject]:
        return list(self._objects.values())

    def tables(self) -> List[BaseTable]:
        return [o for o in self._objects.values() if isinstance(o, BaseTable)]

    # -- resolver interface --------------------------------------------------

    def resolve_table(self, parts: Tuple[str, ...]) -> ResolvedTable:
        if len(parts) == 2:
            if parts[0].lower() != self.database_name.lower():
                raise CatalogError(
                    f"cannot resolve {'.'.join(parts)!r}: this engine is "
                    f"{self.database_name!r} and has no cross-database view"
                )
            name = parts[1]
        elif len(parts) == 1:
            name = parts[0]
        else:
            raise CatalogError(f"invalid table name {'.'.join(parts)!r}")

        obj = self.require(name)
        if isinstance(obj, View):
            return ResolvedTable(table=obj.name, view_query=obj.query)
        if isinstance(obj, (BaseTable, ForeignTable)):
            return ResolvedTable(
                table=obj.name,
                schema=obj.schema,
                source_db=self.database_name,
            )
        raise CatalogError(f"cannot scan object {name!r}")
