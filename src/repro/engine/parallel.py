"""Intra-query parallelism: a bounded worker pool for plan branches.

The vectorized executor is single-threaded per operator; partition
expansion, however, leaves the gathering engine with N independent
UNION ALL branches (one per shard).  ``WorkerPool`` drains such
branches through a fixed number of worker threads, propagating the
full observation context into each one:

* the ambient :class:`~repro.obs.context.QueryContext` is pushed onto
  the worker thread (:func:`repro.obs.runtime.push_context`), so
  connector counters, metrics, and events land in the right query;
* the worker *adopts* the spawning thread's current span on the shared
  tracer, so every branch's spans form a proper subtree — no orphans,
  no cross-thread interleaving.

Each branch's *busy time* is measured with the per-thread CPU clock
(:func:`repro.obs.clock.thread_cpu_now`): under the GIL, wall time on
concurrent branches double-counts contention, while thread-CPU time
stays comparable to a serial run.  :func:`makespan` converts such
busy times into the derived wall clock of a K-wide pool — the same
longest-processing-time list scheduling the schedule simulator's slot
model uses.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.obs.clock import thread_cpu_now
from repro.obs.runtime import pop_context, push_context


@dataclass
class BranchOutcome:
    """What one branch produced: its value and its thread-CPU cost."""

    index: int
    value: object = None
    busy_seconds: float = 0.0
    error: Optional[BaseException] = None


class WorkerPool:
    """Run independent thunks over at most ``workers`` threads."""

    def __init__(self, workers: int):
        self.workers = max(int(workers), 1)

    def map(
        self,
        thunks: Sequence[Callable[[], object]],
        context=None,
    ) -> List[BranchOutcome]:
        """Run every thunk; outcomes come back in submission order.

        ``context`` is the active :class:`QueryContext` (or None); its
        tracer and metrics become visible inside every branch.  The
        first branch exception is re-raised after all branches settle,
        so no worker is abandoned mid-flight.
        """
        thunks = list(thunks)
        outcomes = [BranchOutcome(index) for index in range(len(thunks))]
        if not thunks:
            return outcomes
        tracer = context.tracer if context is not None else None
        parent = tracer.current if tracer is not None else None
        work: "queue.SimpleQueue" = queue.SimpleQueue()
        for item in enumerate(thunks):
            work.put(item)

        def drain() -> None:
            while True:
                try:
                    index, thunk = work.get_nowait()
                except queue.Empty:
                    return
                self._run_branch(index, thunk, outcomes, context, parent)

        threads = [
            threading.Thread(
                target=drain, name=f"xdb-worker-{index}", daemon=True
            )
            for index in range(min(self.workers, len(thunks)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return outcomes

    def _run_branch(
        self, index, thunk, outcomes, context, parent
    ) -> None:
        outcome = outcomes[index]
        if context is not None:
            push_context(context)
        tracer = context.tracer if context is not None else None
        span = None
        if tracer is not None and parent is not None:
            tracer.adopt(parent)
            span = tracer.start_span(
                f"branch-{index}", kind="parallel", branch=index
            )
        begin = thread_cpu_now()
        try:
            outcome.value = thunk()
        except BaseException as exc:  # re-raised by map()
            outcome.error = exc
            if span is not None:
                span.status = "error"
        finally:
            outcome.busy_seconds = thread_cpu_now() - begin
            if tracer is not None and parent is not None:
                if span is not None:
                    span.attributes["busy_seconds"] = outcome.busy_seconds
                    tracer.end_span(span)
                tracer.release(parent)
            if context is not None:
                pop_context(context)


def makespan(durations: Iterable[float], workers: int) -> float:
    """Derived wall seconds to drain ``durations`` on ``workers`` slots.

    Longest-processing-time list scheduling: each duration goes to the
    slot that frees up earliest, largest first.  With one worker this
    is the plain sum; with enough workers, the longest branch.
    """
    workers = max(int(workers), 1)
    slots = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        index = min(range(workers), key=slots.__getitem__)
        slots[index] += duration
    return max(slots, default=0.0)
