"""Intra-query parallelism: a bounded worker pool for plan branches.

The vectorized executor is single-threaded per operator; partition
expansion, however, leaves the gathering engine with N independent
UNION ALL branches (one per shard).  ``WorkerPool`` drains such
branches through a fixed number of worker threads, propagating the
full observation context into each one:

* the ambient :class:`~repro.obs.context.QueryContext` is pushed onto
  the worker thread (:func:`repro.obs.runtime.push_context`), so
  connector counters, metrics, and events land in the right query;
* the worker *adopts* the spawning thread's current span on the shared
  tracer, so every branch's spans form a proper subtree — no orphans,
  no cross-thread interleaving.

Each branch's *busy time* is measured with the per-thread CPU clock
(:func:`repro.obs.clock.thread_cpu_now`): under the GIL, wall time on
concurrent branches double-counts contention, while thread-CPU time
stays comparable to a serial run.  :func:`makespan` converts such
busy times into the derived wall clock of a K-wide pool — the same
longest-processing-time list scheduling the schedule simulator's slot
model uses.

Two task-level fault-domain behaviours live here:

* **sibling cancellation** — the first branch failure marks the pool
  aborted; queued branches that have not started are *cancelled*
  (skipped and counted) instead of drained, so a doomed gather stops
  paying for work whose result will be thrown away;
* **straggler hedging** — with a :class:`HedgePolicy`, a branch whose
  wall time exceeds ``multiplier`` × the median of its finished
  siblings gets a *speculative duplicate* on a spare worker slot; the
  first result wins, and the loser is cooperatively cancelled through
  its :class:`CancelToken` (long-running thunks poll
  :func:`check_cancelled` between rows).  A loser that ignores its
  token simply runs to completion — wasted work, which the
  ``parallel.hedges_wasted`` counter reports instead of hiding.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.obs.clock import thread_cpu_now
from repro.obs.runtime import pop_context, push_context


class BranchCancelled(Exception):
    """Control-flow signal: this branch's work is no longer wanted.

    Raised cooperatively (via :func:`check_cancelled`) inside a hedged
    branch that lost the race.  Never escapes the pool — a cancelled
    branch settles as ``cancelled``, not as an error.
    """


class CancelToken:
    """A cooperative cancellation flag shared by a hedge pair."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


_CANCEL = threading.local()


def current_cancel_token() -> Optional[CancelToken]:
    """The cancel token of the branch running on this thread, if any."""
    return getattr(_CANCEL, "token", None)


def check_cancelled() -> None:
    """Raise :class:`BranchCancelled` if this branch lost its race.

    Long-running branch thunks call this between rows/batches — the
    cooperative cancellation point that lets a hedged loser stop
    burning CPU instead of racing to a discarded result.
    """
    token = current_cancel_token()
    if token is not None and token.cancelled:
        raise BranchCancelled()


@dataclass
class HedgePolicy:
    """When and how to launch speculative duplicates of stragglers.

    ``multiplier`` is the QoS latency multiple: a running branch is a
    straggler once its wall time exceeds ``multiplier`` × the median
    duration of its *finished* siblings (at least ``min_samples`` of
    them, so the first branches to run are never hedged).  ``factory``
    builds a fresh thunk for branch ``index`` — the duplicate must not
    share mutable operator state with the primary.
    """

    multiplier: float
    factory: Callable[[int], Callable[[], object]]
    min_samples: int = 2
    poll_seconds: float = 0.002


@dataclass
class BranchOutcome:
    """What one branch produced: its value and its thread-CPU cost."""

    index: int
    value: object = None
    busy_seconds: float = 0.0
    error: Optional[BaseException] = None
    #: True when the branch never ran (a sibling failed first) or was
    #: cooperatively cancelled without a winner recording a value
    cancelled: bool = False
    #: True when a speculative duplicate was launched for this branch
    hedged: bool = False
    #: True when the *hedge* (not the primary) produced the value
    hedge_won: bool = False


class _MapRun:
    """Shared mutable state of one ``map`` call (lock-protected)."""

    def __init__(self, count: int):
        self.lock = threading.Lock()
        self.outcomes = [BranchOutcome(index) for index in range(count)]
        #: indices whose outcome (value / error / cancel) is final
        self.settled = [False] * count
        self.started_at: Dict[int, float] = {}
        self.running: set = set()
        self.durations: List[float] = []
        self.tokens: Dict[int, CancelToken] = {}
        self.hedge_tokens: Dict[int, CancelToken] = {}
        #: set on the first branch error — queued siblings cancel
        self.abort = threading.Event()
        self.cancelled_count = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self.hedges_wasted = 0


class WorkerPool:
    """Run independent thunks over at most ``workers`` threads."""

    def __init__(self, workers: int):
        self.workers = max(int(workers), 1)

    def map(
        self,
        thunks: Sequence[Callable[[], object]],
        context=None,
        hedge: Optional[HedgePolicy] = None,
    ) -> List[BranchOutcome]:
        """Run every thunk; outcomes come back in submission order.

        ``context`` is the active :class:`QueryContext` (or None); its
        tracer and metrics become visible inside every branch.  The
        first branch exception is re-raised after the in-flight
        branches settle; branches still *queued* at that point are
        cancelled, not drained.  With a :class:`HedgePolicy`, detected
        stragglers race a speculative duplicate (first result wins).
        """
        thunks = list(thunks)
        run = _MapRun(len(thunks))
        if not thunks:
            return run.outcomes
        tracer = context.tracer if context is not None else None
        parent = tracer.current if tracer is not None else None
        work: "queue.SimpleQueue" = queue.SimpleQueue()
        for item in enumerate(thunks):
            work.put(item)

        def drain() -> None:
            while True:
                try:
                    index, thunk = work.get_nowait()
                except queue.Empty:
                    return
                with run.lock:
                    if run.abort.is_set():
                        # A sibling already failed, so this branch's
                        # result would be discarded — skip it instead
                        # of draining it.
                        run.outcomes[index].cancelled = True
                        run.settled[index] = True
                        run.cancelled_count += 1
                        continue
                    token = run.tokens[index] = CancelToken()
                    run.started_at[index] = time.monotonic()
                    run.running.add(index)
                self._run_branch(
                    index, thunk, run, context, parent, token, "primary"
                )

        threads = [
            threading.Thread(
                target=drain, name=f"xdb-worker-{index}", daemon=True
            )
            for index in range(min(self.workers, len(thunks)))
        ]
        for thread in threads:
            thread.start()
        hedge_threads = self._watch(threads, run, hedge, context, parent)
        for thread in threads:
            thread.join()
        for thread in hedge_threads:
            thread.join()
        self._report(run, context)
        for outcome in run.outcomes:
            if outcome.error is not None:
                raise outcome.error
        return run.outcomes

    # -- straggler hedging ---------------------------------------------

    def _watch(
        self,
        threads: List[threading.Thread],
        run: _MapRun,
        hedge: Optional[HedgePolicy],
        context,
        parent,
    ) -> List[threading.Thread]:
        """Monitor running branches, launching hedges on stragglers.

        Runs on the calling thread (which would otherwise sit in
        ``join``).  Hedges only launch onto *spare* capacity: at most
        ``workers`` branch bodies (primaries + hedges) run at once.
        """
        hedge_threads: List[threading.Thread] = []
        if hedge is None or hedge.multiplier <= 0:
            return hedge_threads
        while any(thread.is_alive() for thread in threads):
            time.sleep(hedge.poll_seconds)
            now = time.monotonic()
            launches = []
            with run.lock:
                if run.abort.is_set():
                    break
                if len(run.durations) < hedge.min_samples:
                    continue
                ordered = sorted(run.durations)
                median = ordered[len(ordered) // 2]
                threshold = max(hedge.multiplier * median, 1e-9)
                busy = len(run.running) + len(run.hedge_tokens)
                spare = self.workers - busy
                for index in sorted(run.running):
                    if spare <= 0:
                        break
                    if run.settled[index] or index in run.hedge_tokens:
                        continue
                    if now - run.started_at[index] <= threshold:
                        continue
                    token = run.hedge_tokens[index] = CancelToken()
                    run.outcomes[index].hedged = True
                    run.hedges_launched += 1
                    launches.append((index, token))
                    spare -= 1
            for index, token in launches:
                try:
                    thunk = hedge.factory(index)
                except Exception:  # pragma: no cover - defensive
                    with run.lock:
                        del run.hedge_tokens[index]
                        run.outcomes[index].hedged = False
                        run.hedges_launched -= 1
                    continue
                if context is not None:
                    context.tracer.add_event("hedge-launched", branch=index)
                thread = threading.Thread(
                    target=self._run_branch,
                    args=(index, thunk, run, context, parent, token, "hedge"),
                    name=f"xdb-hedge-{index}",
                    daemon=True,
                )
                hedge_threads.append(thread)
                thread.start()
        return hedge_threads

    # -- branch bodies -------------------------------------------------

    def _run_branch(
        self, index, thunk, run: _MapRun, context, parent, token, role
    ) -> None:
        if context is not None:
            push_context(context)
        tracer = context.tracer if context is not None else None
        span = None
        if tracer is not None and parent is not None:
            tracer.adopt(parent)
            name = (
                f"branch-{index}" if role == "primary" else f"hedge-{index}"
            )
            span = tracer.start_span(
                name, kind="parallel", branch=index, role=role
            )
        _CANCEL.token = token
        begin = thread_cpu_now()
        value: object = None
        error: Optional[BaseException] = None
        cancelled = False
        try:
            value = thunk()
        except BranchCancelled:
            cancelled = True
        except BaseException as exc:  # re-raised by map()
            error = exc
        finally:
            _CANCEL.token = None
            busy = thread_cpu_now() - begin
            self._settle(
                index, run, role, value, error, cancelled, busy, tracer
            )
            if span is not None:
                span.attributes["busy_seconds"] = busy
                if error is not None:
                    span.status = "error"
                elif cancelled:
                    span.attributes["cancelled"] = True
            if tracer is not None and parent is not None:
                if span is not None:
                    tracer.end_span(span)
                tracer.release(parent)
            if context is not None:
                pop_context(context)

    def _settle(
        self, index, run: _MapRun, role, value, error, cancelled, busy, tracer
    ) -> None:
        """Record one runner's result; first non-cancelled result wins."""
        with run.lock:
            outcome = run.outcomes[index]
            if role == "primary":
                run.running.discard(index)
            if run.settled[index]:
                # The counterpart already won the race: this runner's
                # work was speculative overhead.
                if outcome.hedged and not cancelled and error is None:
                    run.hedges_wasted += 1
                return
            if cancelled:
                # Cooperatively cancelled with no winner on record yet:
                # settle as cancelled only once no counterpart is still
                # running (it would settle the real value).
                counterpart = (
                    index in run.hedge_tokens
                    if role == "primary"
                    else index in run.running
                )
                if not counterpart:
                    outcome.cancelled = True
                    run.settled[index] = True
                    run.cancelled_count += 1
                return
            run.settled[index] = True
            outcome.value = value
            outcome.error = error
            outcome.busy_seconds = busy
            if error is not None:
                run.abort.set()
            else:
                started = run.started_at.get(index)
                if started is not None:
                    run.durations.append(time.monotonic() - started)
            if outcome.hedged:
                outcome.hedge_won = role == "hedge"
                if role == "hedge":
                    run.hedges_won += 1
                # Cooperatively cancel the losing runner.
                loser = (
                    run.tokens.get(index)
                    if role == "hedge"
                    else run.hedge_tokens.get(index)
                )
                if loser is not None:
                    loser.cancel()
                if tracer is not None:
                    tracer.add_event(
                        "hedge-settled", branch=index, winner=role
                    )

    @staticmethod
    def _report(run: _MapRun, context) -> None:
        """Fold the run's counters into the query context's metrics."""
        if context is None:
            return
        metrics = context.metrics
        if run.cancelled_count:
            metrics.inc("parallel.branches_cancelled", run.cancelled_count)
        if run.hedges_launched:
            metrics.inc("parallel.hedges_launched", run.hedges_launched)
        if run.hedges_won:
            metrics.inc("parallel.hedges_won", run.hedges_won)
        if run.hedges_wasted:
            metrics.inc("parallel.hedges_wasted", run.hedges_wasted)


def makespan(durations: Iterable[float], workers: int) -> float:
    """Derived wall seconds to drain ``durations`` on ``workers`` slots.

    Longest-processing-time list scheduling: each duration goes to the
    slot that frees up earliest, largest first.  With one worker this
    is the plain sum; with enough workers, the longest branch.
    """
    workers = max(int(workers), 1)
    slots = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        index = min(range(workers), key=slots.__getitem__)
        slots[index] += duration
    return max(slots, default=0.0)
