"""Vectorized (batch) execution: column batches and compiled kernels.

The row-at-a-time interpreter in :mod:`repro.engine.physical` pays
Python iterator, closure-call, and tuple-construction overhead for
every single tuple.  Batch mode amortizes that overhead: operators
exchange :class:`ColumnBatch` objects — fixed-size runs of rows stored
as parallel columns — and expressions are lowered to *kernels* that
evaluate a whole column per call instead of one value per row.

The kernel compiler (:func:`compile_kernel`) mirrors the row-wise
expression compiler in :mod:`repro.relational.expressions` node for
node.  SQL semantics are identical: ``None`` is SQL NULL and propagates
per the standard, comparisons/arithmetic are NULL-strict, and AND/OR
implement Kleene three-valued logic.  Any expression node without a
vectorized lowering (e.g. CASE, whose branches must not be evaluated
eagerly) falls back to a row-loop kernel *for that subtree only*, so
the rest of the expression stays vectorized.

Two deliberate deviations from row-at-a-time evaluation, both standard
for vectorized engines, are documented in DESIGN.md §7: within one
expression both operands of a binary operator are fully evaluated (row
mode skips the right side when the left is NULL), and a LIMIT above a
streaming operator stops at batch rather than row granularity.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.relational.expressions import (
    cast_value,
    compile_expression,
    like_regex,
    scalar_function,
    sql_and,
    sql_not,
    sql_or,
)
from repro.sql import ast

#: Default number of rows per batch.  Large enough to amortize the
#: per-batch kernel dispatch, small enough to keep intermediate columns
#: in cache-friendly chunks.
BATCH_SIZE = 1024


class ColumnBatch:
    """A run of rows stored twice over: as columns and/or as row tuples.

    Either representation may be supplied at construction; the other is
    materialized lazily (once) on first access.  Column kernels read
    ``columns``; operators that must emit tuples (joins, the final
    result) read ``rows()``.  Scans built from stored row lists
    therefore transpose only when a kernel actually needs a column.
    """

    __slots__ = ("length", "_columns", "_rows", "_width")

    def __init__(
        self,
        columns: Optional[Sequence[Sequence[object]]] = None,
        rows: Optional[Sequence[tuple]] = None,
        width: Optional[int] = None,
    ):
        if columns is None and rows is None:
            raise ExecutionError("ColumnBatch needs columns or rows")
        self._columns = list(columns) if columns is not None else None
        self._rows = rows
        if columns is not None:
            self._width = len(self._columns)
            self.length = len(self._columns[0]) if self._columns else (
                len(rows) if rows is not None else 0
            )
        else:
            if width is None:
                width = len(rows[0]) if rows else 0
            self._width = width
            self.length = len(rows)

    @property
    def width(self) -> int:
        return self._width

    @property
    def columns(self) -> List[Sequence[object]]:
        if self._columns is None:
            if self._rows:
                # Columns transposed from rows stay tuples: kernels only
                # read inputs, and skipping the per-column list() copy
                # halves the transpose cost.
                self._columns = list(zip(*self._rows))
            else:
                self._columns = [() for _ in range(self._width)]
        return self._columns

    def column(self, index: int) -> Sequence[object]:
        return self.columns[index]

    def rows(self) -> Sequence[tuple]:
        if self._rows is None:
            if self._columns:
                self._rows = list(zip(*self._columns))
            else:
                self._rows = [()] * self.length
        return self._rows

    def pick(self, indices: Sequence[int]) -> "ColumnBatch":
        """Project onto the columns at ``indices``.

        Zero-copy when this batch is columnar; on a row-backed batch it
        gathers only the requested columns (cheaper than the full
        transpose ``columns`` would perform).  ``indices`` must be
        non-empty (a zero-column batch could not carry ``length``).
        """
        if self._columns is not None:
            cols = self._columns
            return ColumnBatch(columns=[cols[i] for i in indices])
        rows = self._rows
        return ColumnBatch(
            columns=[[row[i] for row in rows] for i in indices]
        )

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather the rows at ``indices`` into a new batch."""
        if self._rows is not None and self._columns is None:
            source = self._rows
            return ColumnBatch(
                rows=[source[i] for i in indices], width=self._width
            )
        return ColumnBatch(
            columns=[[col[i] for i in indices] for col in self.columns],
            width=self._width,
        )

    def head(self, count: int) -> "ColumnBatch":
        """The first ``count`` rows (no copy when already short enough)."""
        if count >= self.length:
            return self
        if self._rows is not None and self._columns is None:
            return ColumnBatch(rows=self._rows[:count], width=self._width)
        return ColumnBatch(
            columns=[col[:count] for col in self.columns], width=self._width
        )

    def __len__(self) -> int:
        return self.length


def batches_from_rows(
    rows: Sequence[tuple],
    width: int,
    batch_size: int = BATCH_SIZE,
    limit: Optional[int] = None,
):
    """Chunk a materialized row list into batches (zero-copy slices)."""
    total = len(rows) if limit is None else min(limit, len(rows))
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        yield ColumnBatch(rows=rows[start:stop], width=width)


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

#: A kernel maps a batch to one output column (len == batch.length).
KernelFn = Callable[[ColumnBatch], Sequence[object]]


class _Fallback(Exception):
    """Internal: this subtree has no vectorized lowering."""


def row_loop_kernel(expr: ast.Expression, schema) -> KernelFn:
    """The universal fallback: run the row-wise closure over the batch."""
    fn = compile_expression(expr, schema).fn

    def kernel(batch: ColumnBatch) -> List[object]:
        return [fn(row) for row in batch.rows()]

    return kernel


def compile_kernel(expr: ast.Expression, schema) -> KernelFn:
    """Lower ``expr`` (bound against ``schema``) to a column kernel.

    Never raises for a compilable expression: subtrees the vectorizer
    does not support are lowered through :func:`row_loop_kernel`.
    Binding/type errors surface exactly as in the row compiler (the
    caller is expected to have row-compiled the same expression first,
    which performs full type checking).
    """
    return _KernelCompiler(schema).compile(expr)


def compile_filter_kernel(expr: ast.Expression, schema) -> Callable:
    """Compile a predicate into a selection kernel.

    Returns ``fn(batch) -> list[int] | None``: the indices of rows
    where the predicate is True, or ``None`` meaning "every row passed"
    (so filters can forward the batch without copying).
    """
    kernel = compile_kernel(expr, schema)

    def select(batch: ColumnBatch):
        values = kernel(batch)
        selected = [i for i, value in enumerate(values) if value is True]
        if len(selected) == batch.length:
            return None
        return selected

    return select


class _KernelCompiler:
    """Vectorized mirror of ``repro.relational.expressions._Compiler``."""

    def __init__(self, schema):
        self._schema = schema

    # -- entry points ------------------------------------------------------

    def compile(self, expr: ast.Expression) -> KernelFn:
        try:
            return self._lower(expr)
        except _Fallback:
            return row_loop_kernel(expr, self._schema)

    def _lower(self, expr: ast.Expression) -> KernelFn:
        method = getattr(self, f"_lower_{type(expr).__name__}", None)
        if method is None:
            raise _Fallback
        return method(expr)

    def _child(self, expr: ast.Expression) -> KernelFn:
        """Lower a subtree, isolating fallbacks to that subtree."""
        try:
            return self._lower(expr)
        except _Fallback:
            return row_loop_kernel(expr, self._schema)

    # -- leaves -----------------------------------------------------------

    def _lower_ColumnRef(self, expr: ast.ColumnRef) -> KernelFn:
        index = self._schema.resolve(expr.name, expr.table)
        kernel = lambda batch: batch.columns[index]  # noqa: E731
        # Tag pure column picks so operators (ProjectOp) can gather the
        # needed columns directly instead of transposing every column.
        kernel.column_index = index
        return kernel

    def _lower_Literal(self, expr: ast.Literal) -> KernelFn:
        value = expr.value
        return lambda batch: [value] * batch.length

    # -- operators --------------------------------------------------------

    def _lower_BinaryOp(self, expr: ast.BinaryOp) -> KernelFn:
        op = expr.op
        if op in ("AND", "OR"):
            lk = self._child(expr.left)
            rk = self._child(expr.right)
            combine = sql_and if op == "AND" else sql_or
            return lambda batch: [
                combine(a, b) for a, b in zip(lk(batch), rk(batch))
            ]

        if op in ("+", "-") and isinstance(expr.right, ast.IntervalLiteral):
            from repro.relational.expressions import shift_date

            inner = self._child(expr.left)
            amount = expr.right.amount if op == "+" else -expr.right.amount
            unit = expr.right.unit
            return lambda batch: [
                None if v is None else shift_date(v, amount, unit)
                for v in inner(batch)
            ]

        lk = self._child(expr.left)
        rk = self._child(expr.right)
        maker = _BINARY_KERNELS.get(op)
        if maker is None:
            raise _Fallback
        return maker(lk, rk)

    def _lower_UnaryOp(self, expr: ast.UnaryOp) -> KernelFn:
        inner = self._child(expr.operand)
        if expr.op == "NOT":
            return lambda batch: [sql_not(v) for v in inner(batch)]
        if expr.op == "-":
            return lambda batch: [
                None if v is None else -v for v in inner(batch)
            ]
        raise _Fallback

    def _lower_IsNull(self, expr: ast.IsNull) -> KernelFn:
        inner = self._child(expr.operand)
        if expr.negated:
            return lambda batch: [v is not None for v in inner(batch)]
        return lambda batch: [v is None for v in inner(batch)]

    def _lower_Between(self, expr: ast.Between) -> KernelFn:
        of = self._child(expr.operand)
        lf = self._child(expr.low)
        hf = self._child(expr.high)
        if expr.negated:

            def kernel_negated(batch: ColumnBatch) -> List[object]:
                return [
                    None
                    if value is None or lo is None or hi is None
                    else not (lo <= value <= hi)
                    for value, lo, hi in zip(of(batch), lf(batch), hf(batch))
                ]

            return kernel_negated

        def kernel(batch: ColumnBatch) -> List[object]:
            return [
                None
                if value is None or lo is None or hi is None
                else lo <= value <= hi
                for value, lo, hi in zip(of(batch), lf(batch), hf(batch))
            ]

        return kernel

    def _lower_InList(self, expr: ast.InList) -> KernelFn:
        if not all(isinstance(item, ast.Literal) for item in expr.items):
            raise _Fallback  # per-row evaluation order must be preserved
        of = self._child(expr.operand)
        values = {item.value for item in expr.items}
        has_null = None in values
        values.discard(None)
        negated = expr.negated

        def kernel(batch: ColumnBatch) -> List[object]:
            out = []
            append = out.append
            for value in of(batch):
                if value is None:
                    append(None)
                elif value in values:
                    append(not negated)
                elif has_null:
                    append(None)
                else:
                    append(negated)
            return out

        return kernel

    def _lower_Like(self, expr: ast.Like) -> KernelFn:
        if not isinstance(expr.pattern, ast.Literal):
            raise _Fallback
        pattern = expr.pattern.value
        of = self._child(expr.operand)
        negated = expr.negated
        if pattern is None:
            return lambda batch: [None] * batch.length
        match = like_regex(pattern).match
        if negated:
            return lambda batch: [
                None if v is None else match(v) is None for v in of(batch)
            ]
        return lambda batch: [
            None if v is None else match(v) is not None for v in of(batch)
        ]

    def _lower_Extract(self, expr: ast.Extract) -> KernelFn:
        inner = self._child(expr.operand)
        attr = expr.unit.lower()
        return lambda batch: [
            None if v is None else getattr(v, attr) for v in inner(batch)
        ]

    def _lower_Cast(self, expr: ast.Cast) -> KernelFn:
        inner = self._child(expr.operand)
        target = expr.target
        return lambda batch: [
            None if v is None else cast_value(v, target)
            for v in inner(batch)
        ]

    def _lower_FunctionCall(self, expr: ast.FunctionCall) -> KernelFn:
        if ast.is_aggregate_call(expr):
            raise _Fallback  # the row compiler raises the proper BindError
        function = scalar_function(expr.name)
        if function is None:
            raise _Fallback
        arg_kernels = [self._child(arg) for arg in expr.args]
        impl = function.impl
        if len(arg_kernels) == 1:
            single = arg_kernels[0]
            return lambda batch: [impl([v]) for v in single(batch)]

        def kernel(batch: ColumnBatch) -> List[object]:
            columns = [kernel_fn(batch) for kernel_fn in arg_kernels]
            return [impl(list(values)) for values in zip(*columns)]

        return kernel


def _strict_kernel(operate) -> Callable[[KernelFn, KernelFn], KernelFn]:
    def maker(lk: KernelFn, rk: KernelFn) -> KernelFn:
        return lambda batch: [
            None if a is None or b is None else operate(a, b)
            for a, b in zip(lk(batch), rk(batch))
        ]

    return maker


def _divide_kernel(lk: KernelFn, rk: KernelFn) -> KernelFn:
    def kernel(batch: ColumnBatch) -> List[object]:
        out = []
        append = out.append
        for a, b in zip(lk(batch), rk(batch)):
            if a is None or b is None:
                append(None)
            elif b == 0:
                raise ExecutionError("division by zero")
            else:
                append(a / b)
        return out

    return kernel


def _concat_kernel(lk: KernelFn, rk: KernelFn) -> KernelFn:
    return lambda batch: [
        None if a is None or b is None else str(a) + str(b)
        for a, b in zip(lk(batch), rk(batch))
    ]


_BINARY_KERNELS = {
    "=": _strict_kernel(lambda a, b: a == b),
    "<>": _strict_kernel(lambda a, b: a != b),
    "!=": _strict_kernel(lambda a, b: a != b),
    "<": _strict_kernel(lambda a, b: a < b),
    ">": _strict_kernel(lambda a, b: a > b),
    "<=": _strict_kernel(lambda a, b: a <= b),
    ">=": _strict_kernel(lambda a, b: a >= b),
    "+": _strict_kernel(lambda a, b: a + b),
    "-": _strict_kernel(lambda a, b: a - b),
    "*": _strict_kernel(lambda a, b: a * b),
    "%": _strict_kernel(lambda a, b: a % b),
    "/": _divide_kernel,
    "||": _concat_kernel,
}


# ---------------------------------------------------------------------------
# grouped-aggregation kernels
# ---------------------------------------------------------------------------


class GroupedAggregator:
    """Columnar grouped aggregation with flat per-group state arrays.

    Group keys map to dense group ids; each simple (non-DISTINCT)
    aggregate keeps one or two flat lists indexed by group id and is
    updated in a tight per-column loop.  DISTINCT aggregates keep a
    per-group seen-set.  Results are bit-identical to the row-mode
    ``_Accumulator`` path.
    """

    def __init__(self, specs: Sequence):
        # specs: list of AggregateSpec (only .func/.distinct used here).
        self._specs = list(specs)
        self.keymap = {}  # key tuple (or scalar) -> group id
        self._counts = [[] for _ in self._specs]
        self._totals = [[] for _ in self._specs]  # SUM/AVG totals
        self._extremes = [[] for _ in self._specs]  # MIN/MAX
        self._seen = [
            [] if spec.distinct else None for spec in self._specs
        ]

    # -- group-id assignment ---------------------------------------------

    def group_ids(self, keys: Sequence[object]) -> List[int]:
        """Map a column of key values to dense group ids, adding new
        groups as they appear (in first-occurrence order, matching the
        row engine's dict insertion order)."""
        keymap = self.keymap
        get = keymap.get
        ids = []
        append = ids.append
        for key in keys:
            gid = get(key)
            if gid is None:
                gid = len(keymap)
                keymap[key] = gid
                self._grow()
            append(gid)
        return ids

    def _grow(self) -> None:
        for index, spec in enumerate(self._specs):
            self._counts[index].append(0)
            self._totals[index].append(None)
            self._extremes[index].append(None)
            if spec.distinct:
                self._seen[index].append(set())

    def ensure_group(self, key: object) -> int:
        """Register ``key`` (for SQL's one-row scalar aggregate)."""
        gid = self.keymap.get(key)
        if gid is None:
            gid = len(self.keymap)
            self.keymap[key] = gid
            self._grow()
        return gid

    # -- per-batch accumulation -------------------------------------------

    def accumulate(
        self,
        spec_index: int,
        gids: Sequence[int],
        values: Optional[Sequence[object]],
    ) -> None:
        """Fold one batch of ``values`` (None = COUNT(*)) into the
        state of aggregate ``spec_index`` along the ``gids`` mapping."""
        spec = self._specs[spec_index]
        counts = self._counts[spec_index]
        if spec.distinct:
            seen = self._seen[spec_index]
            totals = self._totals[spec_index]
            extremes = self._extremes[spec_index]
            func = spec.func
            for gid, value in zip(gids, values):
                if value is None or value in seen[gid]:
                    continue
                seen[gid].add(value)
                counts[gid] += 1
                if func in ("SUM", "AVG"):
                    current = totals[gid]
                    totals[gid] = value if current is None else current + value
                elif func == "MIN":
                    current = extremes[gid]
                    if current is None or value < current:
                        extremes[gid] = value
                elif func == "MAX":
                    current = extremes[gid]
                    if current is None or value > current:
                        extremes[gid] = value
            return

        func = spec.func
        if values is None:  # COUNT(*)
            for gid in gids:
                counts[gid] += 1
            return
        if func == "COUNT":
            for gid, value in zip(gids, values):
                if value is not None:
                    counts[gid] += 1
            return
        if func in ("SUM", "AVG"):
            totals = self._totals[spec_index]
            for gid, value in zip(gids, values):
                if value is not None:
                    counts[gid] += 1
                    current = totals[gid]
                    totals[gid] = value if current is None else current + value
            return
        extremes = self._extremes[spec_index]
        if func == "MIN":
            for gid, value in zip(gids, values):
                if value is not None:
                    current = extremes[gid]
                    if current is None or value < current:
                        extremes[gid] = value
            return
        if func == "MAX":
            for gid, value in zip(gids, values):
                if value is not None:
                    current = extremes[gid]
                    if current is None or value > current:
                        extremes[gid] = value
            return
        raise ExecutionError(f"unsupported aggregate {func!r}")

    # -- results ----------------------------------------------------------

    def result(self, spec_index: int, gid: int) -> object:
        spec = self._specs[spec_index]
        func = spec.func
        if func == "COUNT":
            return self._counts[spec_index][gid]
        if func == "SUM":
            return self._totals[spec_index][gid]
        if func == "AVG":
            count = self._counts[spec_index][gid]
            if count == 0:
                return None
            return self._totals[spec_index][gid] / count
        return self._extremes[spec_index][gid]

    def group_count(self) -> int:
        return len(self.keymap)

    def emit_rows(self, key_is_tuple: bool):
        """Yield result rows in first-occurrence group order."""
        spec_range = range(len(self._specs))
        for key, gid in self.keymap.items():
            aggregates = tuple(self.result(i, gid) for i in spec_range)
            if key_is_tuple:
                yield key + aggregates
            else:
                yield (key,) + aggregates


__all__ = [
    "BATCH_SIZE",
    "ColumnBatch",
    "GroupedAggregator",
    "KernelFn",
    "batches_from_rows",
    "compile_filter_kernel",
    "compile_kernel",
    "row_loop_kernel",
]
