"""Query results returned by engines and connectors."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.relational.schema import Schema


class Result:
    """A materialized query result: rows plus output schema.

    ``command`` describes non-query statements (e.g. ``"CREATE VIEW"``)
    for which ``rows`` is empty.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[tuple],
        command: Optional[str] = None,
    ):
        self.schema = schema
        self.rows: List[tuple] = list(rows)
        self.command = command

    @property
    def column_names(self) -> List[str]:
        return self.schema.names

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def byte_size(self) -> int:
        """Estimated wire size of this result (schema width × rows)."""
        return self.schema.row_width() * len(self.rows)

    def sorted_rows(self) -> List[tuple]:
        """Rows under a total order (None sorts first) — for comparisons."""

        def key(row: tuple) -> Tuple:
            return tuple(
                (value is not None, str(type(value)), value)
                if value is not None
                else (False, "", 0)
                for value in row
            )

        return sorted(self.rows, key=key)

    def to_table(self, max_rows: int = 20) -> str:
        """Human-readable fixed-width rendering (for examples / demos)."""
        names = self.column_names
        shown = self.rows[:max_rows]
        cells = [[_fmt(value) for value in row] for row in shown]
        widths = [
            max(len(names[i]), *(len(row[i]) for row in cells))
            if cells
            else len(names[i])
            for i in range(len(names))
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
