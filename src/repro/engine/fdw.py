"""SQL/MED foreign-data wrappers: remote servers and foreign scans.

A :class:`RemoteServer` is what ``CREATE SERVER`` would register in a
real engine: a handle to another database plus the wire protocol used to
fetch rows from it.  Fetches execute remotely *through the remote
engine's own declarative interface* and account their bytes on the
simulated network — this is the building block the paper's delegation
approach composes into inter-DBMS pipelines (§V).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.engine.physical import PhysicalPlan
from repro.engine.stats import TableStats
from repro.errors import ConnectorError
from repro.relational.schema import Schema
from repro.sql import ast
from repro.sql.render import render

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database
    from repro.net.network import Network

#: Relative wire overhead per protocol (bytes multiplier). Binary
#: transfer (e.g. the PostgreSQL wire protocol) is the baseline; JDBC
#: serializes values as text with per-row framing.
PROTOCOL_FACTORS = {"binary": 1.0, "jdbc": 2.2}

#: Multiplier on the per-row *fetch* cost the consumer pays: text (JDBC)
#: rows must be parsed and re-typed, binary rows are copied.  This is
#: the dominant term behind the paper's observation that Presto's
#: transfer overhead exceeds Garlic's (§VI-B).
PROTOCOL_CPU_FACTORS = {"binary": 1.0, "jdbc": 2.2}


class RemoteServer:
    """A named remote database reachable through a foreign wrapper."""

    def __init__(
        self,
        name: str,
        remote: "Database",
        network: "Network",
        local_node: str,
        remote_node: str,
        protocol: str = "binary",
    ):
        if protocol not in PROTOCOL_FACTORS:
            raise ConnectorError(f"unknown wire protocol {protocol!r}")
        self.name = name
        self.remote = remote
        self.network = network
        self.local_node = local_node
        self.remote_node = remote_node
        self.protocol = protocol

    # -- data path ---------------------------------------------------------

    def fetch(self, query: ast.Select, tag: str = "fdw"):
        """Execute ``query`` remotely and pull the result over the wire."""
        result = self.remote.execute_select(query)
        self.network.record_transfer(
            src=self.remote_node,
            dst=self.local_node,
            payload_bytes=int(
                result.byte_size() * PROTOCOL_FACTORS[self.protocol]
            ),
            rows=len(result),
            tag=tag,
            protocol=self.protocol,
        )
        return result

    # -- metadata path (planner support) -------------------------------------

    def remote_row_estimate(self, object_name: str) -> float:
        """Remote EXPLAIN-based row estimate for ``object_name``."""
        query = ast.Select(
            items=(ast.SelectItem(ast.Star()),),
            from_items=(ast.TableRef((object_name,)),),
        )
        info = self.remote.explain_select(query)
        return info.estimated_rows

    def remote_table_stats(self, object_name: str) -> Optional[TableStats]:
        """Column statistics if the remote object is a stored table."""
        return self.remote.table_stats(object_name)


class ForeignScan(PhysicalPlan):
    """Physical operator that pulls rows from a remote server.

    The remote query may carry pushed-down projections and filters,
    depending on the local engine's wrapper capabilities.
    """

    def __init__(
        self,
        server: RemoteServer,
        remote_query: ast.Select,
        schema: Schema,
        tag: str = "fdw",
    ):
        super().__init__()
        self.server = server
        self.remote_query = remote_query
        self.schema = schema
        self.tag = tag
        self.fetched_rows = 0

    def _produce(self):
        result = self.server.fetch(self.remote_query, tag=self.tag)
        self.fetched_rows = len(result)
        return iter(result.rows)

    def _produce_batches(self, hint):
        """Stream the fetched result as column batches.

        The remote execution and wire transfer happen exactly once (and
        are accounted identically to row mode); only the local hand-off
        into the consuming operators is chunked.
        """
        from repro.engine.vector import batches_from_rows

        result = self.server.fetch(self.remote_query, tag=self.tag)
        self.fetched_rows = len(result)
        return batches_from_rows(result.rows, len(self.schema), limit=hint)

    def label(self) -> str:
        return (
            f"ForeignScan[{self.server.name}: "
            f"{render(self.remote_query)}]"
        )


def build_remote_query(
    remote_object: str,
    columns: Optional[List[str]] = None,
    where: Optional[ast.Expression] = None,
) -> ast.Select:
    """Assemble the SELECT a wrapper sends to the remote side.

    ``columns`` of None means ``SELECT *``; ``where`` must reference the
    remote object's columns *unqualified* (the caller strips qualifiers).
    """
    if columns is None:
        items = (ast.SelectItem(ast.Star()),)
    else:
        items = tuple(
            ast.SelectItem(ast.ColumnRef(name)) for name in columns
        )
    return ast.Select(
        items=items,
        from_items=(ast.TableRef((remote_object,)),),
        where=where,
    )


def strip_qualifiers(expr: ast.Expression) -> ast.Expression:
    """Remove table qualifiers so an expression can run remotely."""
    from repro.relational.builder import rebuild_expression

    def replace(node: ast.Expression):
        if isinstance(node, ast.ColumnRef) and node.table is not None:
            return ast.ColumnRef(node.name)
        return None

    return rebuild_expression(expr, replace)
