"""Cardinality estimation and the engine cost model (EXPLAIN backend).

The estimator walks a logical plan, propagating row counts and per-column
statistics through operators with the usual System-R style heuristics.
The cost model turns those cardinalities into engine-local cost units
using the vendor profile's constants; the connector layer calibrates the
units into a common currency for XDB's annotator (§IV footnote 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.engine.profiles import EngineProfile
from repro.engine.stats import ColumnStats
from repro.errors import BindError, OptimizerError
from repro.relational import algebra
from repro.relational.schema import Schema
from repro.sql import ast

#: Default selectivity for predicates we cannot analyze.
DEFAULT_SELECTIVITY = 0.33
LIKE_SELECTIVITY = 0.2
RANGE_SELECTIVITY = 0.3

ColumnKey = Tuple[Optional[str], str]


@dataclass
class ScanStats:
    """What a stats provider knows about a scan's source relation."""

    row_count: float
    columns: Dict[str, ColumnStats]


#: scan -> ScanStats; engines back this with their catalogs, XDB's
#: optimizer backs it with remote metadata gathered through connectors.
StatsProviderFn = Callable[[algebra.Scan], ScanStats]


@dataclass
class _NodeEstimate:
    rows: float
    columns: Dict[ColumnKey, ColumnStats]


class CardinalityEstimator:
    """Estimates row counts (and key NDVs) for logical plans.

    ``feedback`` (a :class:`repro.feedback.store.FeedbackOverlay`, duck-
    typed here as anything with ``correct(plan, rows)``) overrides the
    model's estimate with a learned cardinality when the node's
    fingerprint has been observed before.  The correction lands in the
    memo and in ``plan.estimated_rows``, so both the Selinger DP (which
    calls :meth:`estimate_rows`) and the Rule-4 placement costing
    (which reads ``estimated_rows``) replan with the actuals.
    """

    def __init__(
        self,
        stats_provider: StatsProviderFn,
        feedback: Optional[object] = None,
    ):
        self._stats_provider = stats_provider
        self._feedback = feedback
        # id(plan) -> (plan, estimate).  The entry keeps the node alive
        # so its id cannot be recycled by a later allocation and alias
        # a stale estimate; the identity check is belt and braces.
        self._cache: Dict[
            int, Tuple[algebra.LogicalPlan, _NodeEstimate]
        ] = {}

    def estimate_rows(self, plan: algebra.LogicalPlan) -> float:
        """Estimated output rows of ``plan`` (also annotates the node)."""
        estimate = self._estimate(plan)
        plan.estimated_rows = estimate.rows
        return estimate.rows

    def estimate_ndv(
        self, plan: algebra.LogicalPlan, ref: ast.ColumnRef
    ) -> float:
        """Estimated distinct values of ``ref`` in ``plan``'s output."""
        estimate = self._estimate(plan)
        try:
            index = plan.schema.resolve(ref.name, ref.table)
        except BindError:
            return max(estimate.rows, 1.0)
        field = plan.schema[index]
        stats = estimate.columns.get((field.relation, field.name.lower()))
        if stats is None or stats.ndv <= 0:
            return max(estimate.rows, 1.0)
        return float(min(stats.ndv, max(estimate.rows, 1.0)))

    # -- recursive estimation -------------------------------------------------

    def _estimate(self, plan: algebra.LogicalPlan) -> _NodeEstimate:
        cached = self._cache.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        method = getattr(self, f"_est_{type(plan).__name__}", None)
        if method is None:
            raise OptimizerError(
                f"cannot estimate node {type(plan).__name__}"
            )
        estimate = method(plan)
        estimate.rows = max(estimate.rows, 0.0)
        if self._feedback is not None:
            corrected = self._feedback.correct(plan, estimate.rows)
            if corrected is not None:
                rows = max(float(corrected), 0.0)
                estimate = _NodeEstimate(
                    rows=rows, columns=_scale(estimate.columns, rows)
                )
        self._cache[id(plan)] = (plan, estimate)
        plan.estimated_rows = estimate.rows
        return estimate

    def _est_Scan(self, plan: algebra.Scan) -> _NodeEstimate:
        stats = self._stats_provider(plan)
        columns = {
            (field.relation, field.name.lower()): column_stats
            for field in plan.schema
            for column_stats in (stats.columns.get(field.name.lower()),)
            if column_stats is not None
        }
        return _NodeEstimate(rows=float(stats.row_count), columns=columns)

    def _est_Filter(self, plan: algebra.Filter) -> _NodeEstimate:
        child = self._estimate(plan.child)
        selectivity = predicate_selectivity(
            plan.predicate, plan.child.schema, child.columns, child.rows
        )
        rows = child.rows * selectivity
        return _NodeEstimate(rows=rows, columns=_scale(child.columns, rows))

    def _est_Project(self, plan: algebra.Project) -> _NodeEstimate:
        child = self._estimate(plan.child)
        columns: Dict[ColumnKey, ColumnStats] = {}
        for item, field in zip(plan.items, plan.schema):
            if isinstance(item.expr, ast.ColumnRef):
                try:
                    index = plan.child.schema.resolve(
                        item.expr.name, item.expr.table
                    )
                except BindError:
                    continue
                source = plan.child.schema[index]
                stats = child.columns.get(
                    (source.relation, source.name.lower())
                )
                if stats is not None:
                    columns[(field.relation, field.name.lower())] = stats
        return _NodeEstimate(rows=child.rows, columns=columns)

    def _est_Alias(self, plan: algebra.Alias) -> _NodeEstimate:
        child = self._estimate(plan.child)
        columns = {
            (plan.binding, name): stats
            for (_, name), stats in child.columns.items()
        }
        return _NodeEstimate(rows=child.rows, columns=columns)

    def _est_Join(self, plan: algebra.Join) -> _NodeEstimate:
        left = self._estimate(plan.left)
        right = self._estimate(plan.right)
        columns = dict(left.columns)
        columns.update(right.columns)
        cross = max(left.rows, 1.0) * max(right.rows, 1.0)

        if plan.condition is None:
            rows = cross
        else:
            selectivity = 1.0
            merged_schema = plan.schema
            for conjunct in ast.conjuncts(plan.condition):
                selectivity *= _join_conjunct_selectivity(
                    conjunct,
                    plan,
                    left,
                    right,
                    merged_schema,
                )
            rows = cross * selectivity
        if plan.kind == "LEFT":
            rows = max(rows, left.rows)
        return _NodeEstimate(rows=rows, columns=_scale(columns, rows))

    def _est_Aggregate(self, plan: algebra.Aggregate) -> _NodeEstimate:
        child = self._estimate(plan.child)
        if not plan.keys:
            return _NodeEstimate(rows=1.0, columns={})
        groups = 1.0
        columns: Dict[ColumnKey, ColumnStats] = {}
        for key, field in zip(plan.keys, plan.schema):
            ndv = None
            if isinstance(key.expr, ast.ColumnRef):
                try:
                    index = plan.child.schema.resolve(
                        key.expr.name, key.expr.table
                    )
                    source = plan.child.schema[index]
                    stats = child.columns.get(
                        (source.relation, source.name.lower())
                    )
                    if stats is not None:
                        ndv = float(stats.ndv)
                        columns[(field.relation, field.name.lower())] = stats
                except BindError:
                    pass
            groups *= ndv if ndv is not None else 10.0
        rows = min(groups, max(child.rows, 1.0))
        return _NodeEstimate(rows=rows, columns=columns)

    def _est_Sort(self, plan: algebra.Sort) -> _NodeEstimate:
        return self._estimate(plan.child)

    def _est_Limit(self, plan: algebra.Limit) -> _NodeEstimate:
        child = self._estimate(plan.child)
        rows = min(child.rows, float(plan.count))
        return _NodeEstimate(rows=rows, columns=_scale(child.columns, rows))

    def _est_Distinct(self, plan: algebra.Distinct) -> _NodeEstimate:
        child = self._estimate(plan.child)
        # Distinct rows are bounded by the product of the output
        # columns' NDVs (capped by the input cardinality).  Columns
        # without statistics contribute a default NDV factor, same as
        # the grouping estimate.
        product = 1.0
        known_any = False
        for field in plan.schema:
            stats = child.columns.get((field.relation, field.name.lower()))
            if stats is not None and stats.ndv > 0:
                known_any = True
                product *= float(stats.ndv)
            else:
                product *= 10.0
            # Early cap: keeps the product finite on wide schemas.
            product = min(product, max(child.rows, 1.0))
        if known_any:
            rows = min(product, child.rows)
        else:
            rows = child.rows * 0.9
        return _NodeEstimate(rows=rows, columns=_scale(child.columns, rows))

    def _est_Union(self, plan: "algebra.Union") -> _NodeEstimate:
        left = self._estimate(plan.left)
        right = self._estimate(plan.right)
        rows = left.rows + right.rows
        # Merge per-position column statistics instead of discarding
        # them: the union's schema takes the left input's names.
        columns: Dict[ColumnKey, ColumnStats] = {}
        for left_field, right_field, out_field in zip(
            plan.left.schema, plan.right.schema, plan.schema
        ):
            left_stats = left.columns.get(
                (left_field.relation, left_field.name.lower())
            )
            right_stats = right.columns.get(
                (right_field.relation, right_field.name.lower())
            )
            merged = _merge_union_stats(
                left_stats, right_stats, left.rows, right.rows
            )
            if merged is not None:
                columns[(out_field.relation, out_field.name.lower())] = merged
        return _NodeEstimate(rows=rows, columns=_scale(columns, rows))


def _merge_union_stats(
    left: Optional[ColumnStats],
    right: Optional[ColumnStats],
    left_rows: float,
    right_rows: float,
) -> Optional[ColumnStats]:
    """Column statistics for one UNION ALL output position.

    A side without statistics may contribute up to its full row count
    of distinct values, so its NDV is bounded by its cardinality; its
    value bounds are unknown, which poisons min/max (returning wrong
    bounds would skew range selectivity downstream).
    """
    if left is None and right is None:
        return None
    left_ndv = float(left.ndv) if left is not None else max(left_rows, 1.0)
    right_ndv = (
        float(right.ndv) if right is not None else max(right_rows, 1.0)
    )
    ndv = int(left_ndv + right_ndv)
    null_count = (left.null_count if left else 0) + (
        right.null_count if right else 0
    )
    min_value = max_value = None
    if left is not None and right is not None:
        try:
            if left.min_value is not None and right.min_value is not None:
                min_value = min(left.min_value, right.min_value)
            if left.max_value is not None and right.max_value is not None:
                max_value = max(left.max_value, right.max_value)
        except TypeError:
            min_value = max_value = None
    widths = [s.avg_width for s in (left, right) if s is not None]
    return ColumnStats(
        ndv=ndv,
        null_count=null_count,
        min_value=min_value,
        max_value=max_value,
        avg_width=sum(widths) / len(widths),
    )


def _scale(
    columns: Dict[ColumnKey, ColumnStats], rows: float
) -> Dict[ColumnKey, ColumnStats]:
    """Cap NDVs by the (shrunken) row count."""
    capped = {}
    bound = max(int(rows), 1)
    for key, stats in columns.items():
        capped[key] = ColumnStats(
            ndv=min(stats.ndv, bound),
            null_count=stats.null_count,
            min_value=stats.min_value,
            max_value=stats.max_value,
            avg_width=stats.avg_width,
        )
    return capped


def _column_stats_for(
    ref: ast.ColumnRef,
    schema: Schema,
    columns: Dict[ColumnKey, ColumnStats],
) -> Optional[ColumnStats]:
    try:
        index = schema.resolve(ref.name, ref.table)
    except BindError:
        return None
    field = schema[index]
    return columns.get((field.relation, field.name.lower()))


def _join_conjunct_selectivity(
    conjunct: ast.Expression,
    plan: algebra.Join,
    left: _NodeEstimate,
    right: _NodeEstimate,
    schema: Schema,
) -> float:
    if (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        left_stats = _column_stats_for(
            conjunct.left, schema, {**left.columns, **right.columns}
        )
        right_stats = _column_stats_for(
            conjunct.right, schema, {**left.columns, **right.columns}
        )
        left_ndv = float(left_stats.ndv) if left_stats else None
        right_ndv = float(right_stats.ndv) if right_stats else None
        candidates = [n for n in (left_ndv, right_ndv) if n and n > 0]
        if candidates:
            return 1.0 / max(candidates)
        return 1.0 / max(max(left.rows, 1.0), max(right.rows, 1.0))
    return predicate_selectivity(
        conjunct, schema, {**left.columns, **right.columns}, left.rows * right.rows
    )


def predicate_selectivity(
    predicate: ast.Expression,
    schema: Schema,
    columns: Dict[ColumnKey, ColumnStats],
    rows: float,
) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    if isinstance(predicate, ast.BinaryOp):
        if predicate.op == "AND":
            return predicate_selectivity(
                predicate.left, schema, columns, rows
            ) * predicate_selectivity(predicate.right, schema, columns, rows)
        if predicate.op == "OR":
            first = predicate_selectivity(
                predicate.left, schema, columns, rows
            )
            second = predicate_selectivity(
                predicate.right, schema, columns, rows
            )
            return min(first + second - first * second, 1.0)
        if predicate.op in ("=", "<>", "!=", "<", ">", "<=", ">="):
            return _comparison_selectivity(predicate, schema, columns, rows)
    if isinstance(predicate, ast.UnaryOp) and predicate.op == "NOT":
        return 1.0 - predicate_selectivity(
            predicate.operand, schema, columns, rows
        )
    if isinstance(predicate, ast.Between):
        base = _range_fraction_between(predicate, schema, columns)
        return (1.0 - base) if predicate.negated else base
    if isinstance(predicate, ast.InList):
        base = _in_list_selectivity(predicate, schema, columns, rows)
        return (1.0 - base) if predicate.negated else base
    if isinstance(predicate, ast.Like):
        return (
            1.0 - LIKE_SELECTIVITY if predicate.negated else LIKE_SELECTIVITY
        )
    if isinstance(predicate, ast.IsNull):
        if isinstance(predicate.operand, ast.ColumnRef):
            stats = _column_stats_for(predicate.operand, schema, columns)
            if stats is not None and rows > 0:
                fraction = stats.null_fraction(int(rows))
                return 1.0 - fraction if predicate.negated else fraction
        return 0.05 if not predicate.negated else 0.95
    if isinstance(predicate, ast.Literal):
        if predicate.value is True:
            return 1.0
        if predicate.value in (False, None):
            return 0.0
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(
    predicate: ast.BinaryOp,
    schema: Schema,
    columns: Dict[ColumnKey, ColumnStats],
    rows: float,
) -> float:
    column, literal = None, None
    if isinstance(predicate.left, ast.ColumnRef) and isinstance(
        predicate.right, ast.Literal
    ):
        column, literal = predicate.left, predicate.right.value
        op = predicate.op
    elif isinstance(predicate.right, ast.ColumnRef) and isinstance(
        predicate.left, ast.Literal
    ):
        column, literal = predicate.right, predicate.left.value
        op = _flip(predicate.op)
    elif (
        isinstance(predicate.left, ast.ColumnRef)
        and isinstance(predicate.right, ast.ColumnRef)
        and predicate.op == "="
    ):
        left_stats = _column_stats_for(predicate.left, schema, columns)
        right_stats = _column_stats_for(predicate.right, schema, columns)
        ndvs = [
            float(s.ndv) for s in (left_stats, right_stats) if s and s.ndv > 0
        ]
        return 1.0 / max(ndvs) if ndvs else DEFAULT_SELECTIVITY
    else:
        return DEFAULT_SELECTIVITY

    stats = _column_stats_for(column, schema, columns)
    if stats is None:
        return DEFAULT_SELECTIVITY
    if op == "=":
        return 1.0 / stats.ndv if stats.ndv > 0 else DEFAULT_SELECTIVITY
    if op in ("<>", "!="):
        return (
            1.0 - 1.0 / stats.ndv if stats.ndv > 0 else 1 - DEFAULT_SELECTIVITY
        )
    fraction = _range_fraction(stats, literal, op)
    return fraction if fraction is not None else RANGE_SELECTIVITY


def _flip(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)


def _to_number(value) -> Optional[float]:
    import datetime

    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


def _range_fraction(
    stats: ColumnStats, literal, op: str
) -> Optional[float]:
    low = _to_number(stats.min_value)
    high = _to_number(stats.max_value)
    value = _to_number(literal)
    if low is None or high is None or value is None:
        return None
    if high <= low:
        return 0.5
    fraction = (value - low) / (high - low)
    fraction = min(max(fraction, 0.0), 1.0)
    if op in ("<", "<="):
        return fraction
    return 1.0 - fraction


def _range_fraction_between(
    predicate: ast.Between,
    schema: Schema,
    columns: Dict[ColumnKey, ColumnStats],
) -> float:
    if not isinstance(predicate.operand, ast.ColumnRef):
        return RANGE_SELECTIVITY
    stats = _column_stats_for(predicate.operand, schema, columns)
    if stats is None:
        return RANGE_SELECTIVITY
    low = _to_number(stats.min_value)
    high = _to_number(stats.max_value)
    if low is None or high is None or high <= low:
        return RANGE_SELECTIVITY
    bound_low = (
        _to_number(predicate.low.value)
        if isinstance(predicate.low, ast.Literal)
        else None
    )
    bound_high = (
        _to_number(predicate.high.value)
        if isinstance(predicate.high, ast.Literal)
        else None
    )
    if bound_low is None or bound_high is None:
        return RANGE_SELECTIVITY
    span = max(min(bound_high, high) - max(bound_low, low), 0.0)
    return min(span / (high - low), 1.0)


def _in_list_selectivity(
    predicate: ast.InList,
    schema: Schema,
    columns: Dict[ColumnKey, ColumnStats],
    rows: float,
) -> float:
    if isinstance(predicate.operand, ast.ColumnRef):
        stats = _column_stats_for(predicate.operand, schema, columns)
        if stats is not None and stats.ndv > 0:
            return min(len(predicate.items) / stats.ndv, 1.0)
    return min(len(predicate.items) * 0.1, 1.0)


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExplainInfo:
    """What EXPLAIN reports: cardinality, cost, width, and a plan sketch."""

    estimated_rows: float
    total_cost: float
    row_width: int
    plan_text: str


class CostModel:
    """Turns estimated cardinalities into engine-local cost units."""

    def __init__(self, profile: EngineProfile):
        self.profile = profile

    def plan_cost(
        self,
        plan: algebra.LogicalPlan,
        estimator: CardinalityEstimator,
    ) -> float:
        """Total cost of the logical plan, in engine-local units."""
        return self.profile.startup_cost + self._node_cost(plan, estimator)

    def _node_cost(
        self, plan: algebra.LogicalPlan, estimator: CardinalityEstimator
    ) -> float:
        child_cost = sum(
            self._node_cost(child, estimator) for child in plan.children()
        )
        return child_cost + self.node_self_cost(plan, estimator)

    def node_self_cost(
        self, plan: algebra.LogicalPlan, estimator: CardinalityEstimator
    ) -> float:
        """This operator's own cost contribution, excluding children.

        The same formulas, driven by *measured* instead of estimated
        cardinalities, back the calibration harness's per-operator
        Q-error computation (see :mod:`repro.calibrate`)."""
        profile = self.profile
        rows_out = max(estimator.estimate_rows(plan), 1.0)

        if isinstance(plan, algebra.Scan):
            if plan.placeholder:
                # Placeholder inputs arrive over the wire.
                return rows_out * profile.foreign_fetch_cost_per_row
            return rows_out * profile.seq_scan_cost_per_row
        if isinstance(plan, algebra.Filter):
            rows_in = max(estimator.estimate_rows(plan.child), 1.0)
            return rows_in * profile.cpu_tuple_cost
        if isinstance(plan, (algebra.Project, algebra.Alias)):
            return rows_out * profile.cpu_tuple_cost
        if isinstance(plan, algebra.Join):
            left_rows = max(estimator.estimate_rows(plan.left), 1.0)
            right_rows = max(estimator.estimate_rows(plan.right), 1.0)
            if plan.condition is not None:
                build = min(left_rows, right_rows)
                probe = max(left_rows, right_rows)
                return (
                    build * profile.hash_build_cost_per_row
                    + probe * profile.cpu_tuple_cost
                    + rows_out * profile.cpu_tuple_cost
                )
            return left_rows * right_rows * profile.cpu_tuple_cost
        if isinstance(plan, algebra.Aggregate):
            rows_in = max(estimator.estimate_rows(plan.child), 1.0)
            return rows_in * (
                profile.cpu_tuple_cost + profile.hash_build_cost_per_row
            )
        if isinstance(plan, algebra.Sort):
            rows_in = max(estimator.estimate_rows(plan.child), 1.0)
            return profile.sort_cost_factor * rows_in * max(
                math.log2(rows_in), 1.0
            )
        if isinstance(plan, (algebra.Limit, algebra.Distinct)):
            return rows_out * profile.cpu_tuple_cost
        return rows_out * profile.cpu_tuple_cost
