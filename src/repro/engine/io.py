"""CSV import/export for engine tables and generated datasets.

Values are serialized losslessly for the supported type system:
integers, floats, booleans (``t``/``f``), ISO dates, and strings; SQL
NULL round-trips as an empty field (strings containing an empty value
are quoted on export, mirroring PostgreSQL's ``COPY ... CSV`` rule of
distinguishing ``,,`` from ``,"",``).
"""

from __future__ import annotations

import csv
import datetime
import pathlib
from typing import Iterable, List, Optional, Union

from repro.engine.catalog import BaseTable
from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.relational.schema import Field, Schema
from repro.sql.types import SQLType, TypeKind, type_from_name

PathLike = Union[str, pathlib.Path]

#: Marker used to distinguish NULL (empty, unquoted) from '' on import.
_EMPTY_STRING_TOKEN = '""'


def _serialize(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, str) and value == "":
        return _EMPTY_STRING_TOKEN
    return str(value)


def _parser_for(sql_type: SQLType):
    """Build the cell parser for one column.

    Resolving the TypeKind once per *column* (instead of once per cell)
    keeps the import loop a straight zip of precompiled closures.
    Every parser maps the empty field to NULL and wraps conversion
    failures in :class:`ExecutionError` with the offending text.
    """
    kind = sql_type.kind
    if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
        convert = int
    elif kind in (TypeKind.DOUBLE, TypeKind.DECIMAL):
        convert = float
    elif kind is TypeKind.DATE:
        convert = datetime.date.fromisoformat
    elif kind is TypeKind.BOOLEAN:
        def convert(text):
            return text.strip().lower() in ("t", "true", "1", "yes")
    else:
        def parse_text(text: str) -> object:
            if text == "":
                return None
            if text == _EMPTY_STRING_TOKEN:
                return ""
            return text

        return parse_text

    def parse(text: str) -> object:
        if text == "":
            return None
        try:
            return convert(text)
        except ValueError as exc:
            raise ExecutionError(
                f"cannot parse {text!r} as {sql_type}: {exc}"
            )

    return parse


def _parse(text: str, sql_type: SQLType) -> object:
    """Parse one cell (one-off use; imports precompile via _parser_for)."""
    return _parser_for(sql_type)(text)


def save_table_csv(database: Database, table: str, path: PathLike) -> int:
    """Export a stored table to CSV (header row encodes name:type).

    Returns the number of data rows written.
    """
    obj = database.catalog.require(table)
    if not isinstance(obj, BaseTable):
        raise ExecutionError(
            f"can only export stored tables, {table!r} is a {obj.kind}"
        )
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [f"{field.name}:{field.type}" for field in obj.schema]
        )
        for row in obj.rows:
            writer.writerow([_serialize(value) for value in row])
    return len(obj.rows)


def load_table_csv(
    database: Database,
    table: str,
    path: PathLike,
    schema: Optional[Schema] = None,
    replace: bool = False,
) -> int:
    """Import a CSV (written by :func:`save_table_csv`) as a table.

    When ``schema`` is omitted, it is recovered from the typed header.
    Returns the number of rows loaded.
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ExecutionError(f"empty CSV file: {path}")
        if schema is None:
            schema = _schema_from_header(header)
        elif len(header) != len(schema):
            raise ExecutionError(
                f"CSV has {len(header)} columns but the provided schema "
                f"has {len(schema)}"
            )
        parsers = [_parser_for(field.type) for field in schema]
        width = len(parsers)
        rows: List[tuple] = []
        for line_number, record in enumerate(reader, start=2):
            if len(record) != width:
                raise ExecutionError(
                    f"{path}:{line_number}: expected {width} fields, "
                    f"got {len(record)}"
                )
            rows.append(
                tuple(
                    parse(text)
                    for parse, text in zip(parsers, record)
                )
            )
    database.create_table(table, schema, rows, replace=replace)
    return len(rows)


def _schema_from_header(header: Iterable[str]) -> Schema:
    fields = []
    for column in header:
        name, separator, type_text = column.partition(":")
        if not separator:
            raise ExecutionError(
                f"CSV header column {column!r} lacks a ':type' suffix; "
                "provide a schema explicitly"
            )
        base, _, args_text = type_text.partition("(")
        args = []
        if args_text:
            args = [
                int(part)
                for part in args_text.rstrip(")").split(",")
                if part
            ]
        fields.append(Field(name, type_from_name(base, *args)))
    return Schema(fields)


def export_dataset(
    database: Database, directory: PathLike
) -> List[pathlib.Path]:
    """Export every stored table of ``database`` into ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for table in database.catalog.tables():
        target = directory / f"{table.name}.csv"
        save_table_csv(database, table.name, target)
        written.append(target)
    return written


def import_dataset(database: Database, directory: PathLike) -> List[str]:
    """Load every ``*.csv`` in ``directory`` as a table (by file name)."""
    directory = pathlib.Path(directory)
    loaded = []
    for path in sorted(directory.glob("*.csv")):
        name = path.stem
        load_table_csv(database, name, path, replace=True)
        loaded.append(name)
    return loaded
