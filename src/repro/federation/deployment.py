"""Deployments: the cross-database environment of the experiments.

A deployment owns

* one :class:`~repro.net.network.Network` (on-premise or geo-distributed),
* N autonomous :class:`~repro.engine.database.Database` instances (one
  per node, as in the paper's testbed),
* the full mesh of SQL/MED server registrations between them (binary
  protocol between same-vendor pairs, JDBC otherwise),
* one :class:`~repro.connect.connector.DBMSConnector` per database for
  the middleware node.

The middleware ("xdb") and the client live on cloud nodes, mirroring the
paper's managed-cloud scenario of §VI-C.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.connect.connector import DBMSConnector
from repro.core.partition import PartitionSpec, partition_name
from repro.engine.database import Database
from repro.engine.fdw import RemoteServer
from repro.errors import CatalogError, NetworkError
from repro.health import BreakerConfig, HealthRegistry
from repro.net.network import Network
from repro.qos import GateConfig, WorkloadGate
from repro.relational.schema import Schema

MIDDLEWARE_NODE = "xdb"
CLIENT_NODE = "client"


def protocol_between(profile_a: str, profile_b: str) -> str:
    """Same-vendor PostgreSQL pairs speak the binary protocol; anything
    heterogeneous falls back to ODBC/JDBC (as in the paper's Fig. 10
    setup)."""
    if profile_a == "postgres" and profile_b == "postgres":
        return "binary"
    return "jdbc"


def _protocol_between(a: Database, b: Database) -> str:
    return protocol_between(a.profile.name, b.profile.name)


class Deployment:
    """A set of databases wired together on a simulated network."""

    def __init__(
        self,
        profiles: Mapping[str, str],
        topology: str = "onprem",
        middleware_node: str = MIDDLEWARE_NODE,
        client_node: str = CLIENT_NODE,
        middleware_site: Optional[str] = None,
        execution_mode: str = "batch",
        parallel_workers: int = 1,
    ):
        """Create databases named per ``profiles`` (name → vendor).

        ``topology`` is ``"onprem"`` (DBMS LAN) or ``"geo"`` (every DBMS
        in its own data center).  ``middleware_site`` places the
        middleware/mediator node: defaults to the DBMS LAN for the
        runtime experiments ("onprem") and to the cloud for geo setups;
        pass ``"cloud"`` explicitly for the §VI-C managed-cloud cost
        scenario.  ``execution_mode`` selects every member engine's
        executor: ``"batch"`` (vectorized, default) or ``"row"``.
        ``parallel_workers`` sizes each engine's worker pool for
        intra-query parallelism (UNION ALL branches — in particular
        gathered partition fragments — are pulled concurrently when
        it is > 1; the schedule simulator uses the same number as its
        per-engine task slot count).
        """
        names = list(profiles)
        if topology == "onprem":
            self.network = Network.on_premise(
                names,
                client_node=client_node,
                middleware_nodes=[middleware_node],
                middleware_site=middleware_site or "onprem",
            )
        elif topology == "geo":
            self.network = Network.geo_distributed(
                names,
                client_node=client_node,
                middleware_nodes=[middleware_node],
                middleware_site=middleware_site or "cloud",
            )
        else:
            raise NetworkError(f"unknown topology {topology!r}")
        self.topology = topology
        self.middleware_site = self.network.node_site(middleware_node)
        self.middleware_node = middleware_node
        self.client_node = client_node

        self.execution_mode = execution_mode
        self.parallel_workers = max(int(parallel_workers), 1)
        #: logical table (lowercase) -> PartitionSpec; the global
        #: catalog holds this mapping by reference
        self.partition_specs: Dict[str, PartitionSpec] = {}
        self.databases: Dict[str, Database] = {}
        for name, profile in profiles.items():
            self.databases[name] = Database(
                name,
                profile=profile,
                node=name,
                execution_mode=execution_mode,
                parallel_workers=self.parallel_workers,
            )

        self._wire_servers()

        self.connectors: Dict[str, DBMSConnector] = {
            name: DBMSConnector(
                database,
                self.network,
                middleware_node,
                protocol="binary"
                if database.profile.name == "postgres"
                else "jdbc",
            )
            for name, database in self.databases.items()
        }

        # One shared health registry: every connector feeds its guarded
        # call outcomes into per-DBMS circuit breakers, and the client's
        # plan-repair loop consults/trips the same breakers.
        self.health = HealthRegistry()
        for connector in self.connectors.values():
            connector.health = self.health

        # One shared admission gate: every XDB client of this
        # deployment contends for the same per-engine concurrency
        # tokens (see :mod:`repro.qos`).
        self.workload_gate = WorkloadGate()

    # -- wiring ----------------------------------------------------------------

    def _wire_servers(self) -> None:
        """Register the full SQL/MED server mesh between all databases."""
        for local in self.databases.values():
            for remote in self.databases.values():
                if local.name == remote.name:
                    continue
                local.register_server(
                    remote.name,
                    RemoteServer(
                        name=remote.name,
                        remote=remote,
                        network=self.network,
                        local_node=local.node,
                        remote_node=remote.node,
                        protocol=_protocol_between(local, remote),
                    ),
                )

    def add_auxiliary_database(
        self, name: str, profile: str, node_site: Optional[str] = None
    ) -> Database:
        """Add a database outside the federation (e.g. a mediator).

        The new database gets servers to every federation member, but
        members do *not* get a server back (it is not one of them).
        The node defaults to the middleware's site, so mediators and
        XDB are compared from the same vantage point.
        """
        if name in self.databases:
            raise CatalogError(f"database {name!r} already exists")
        self.network.add_node(name, site=node_site or self.middleware_site)
        database = Database(
            name,
            profile=profile,
            node=name,
            execution_mode=self.execution_mode,
        )
        for remote in self.databases.values():
            database.register_server(
                remote.name,
                RemoteServer(
                    name=remote.name,
                    remote=remote,
                    network=self.network,
                    local_node=database.node,
                    remote_node=remote.node,
                    protocol=_protocol_between(database, remote),
                ),
            )
        return database

    # -- access ------------------------------------------------------------------

    def database(self, name: str) -> Database:
        try:
            return self.databases[name]
        except KeyError:
            raise CatalogError(f"unknown database {name!r}")

    def connector(self, name: str) -> DBMSConnector:
        try:
            return self.connectors[name]
        except KeyError:
            raise CatalogError(f"no connector for database {name!r}")

    def database_names(self) -> List[str]:
        return list(self.databases)

    # -- health ----------------------------------------------------------------------

    def configure_health(self, config: BreakerConfig) -> HealthRegistry:
        """Swap in a fresh :class:`HealthRegistry` with ``config``.

        All breaker state (trips, events, the simulated clock) is
        discarded; every connector is re-pointed at the new registry.
        """
        self.health = HealthRegistry(config)
        for connector in self.connectors.values():
            connector.health = self.health
        return self.health

    # -- qos -------------------------------------------------------------------------

    def configure_qos(self, config: GateConfig) -> WorkloadGate:
        """Swap in a fresh :class:`WorkloadGate` with ``config``.

        All admission state (tokens, queues, shed counters) is
        discarded; submissions already holding leases on the old gate
        release against the old gate harmlessly.
        """
        self.workload_gate = WorkloadGate(config)
        return self.workload_gate

    # -- data loading ----------------------------------------------------------------

    def load_table(
        self, db_name: str, table: str, schema: Schema, rows: Iterable[tuple]
    ) -> None:
        self.database(db_name).create_table(table, schema, list(rows))

    def load_distribution(
        self,
        placement: Mapping[str, object],
        tables: Mapping[str, Tuple[Schema, List[tuple]]],
    ) -> None:
        """Load ``tables`` (name → (schema, rows)) per ``placement``
        (table name → database name, or a list of names to load the
        same table as replicas on several DBMSes)."""
        for table_name, db_names in placement.items():
            schema, rows = tables[table_name]
            if isinstance(db_names, str):
                db_names = [db_names]
            for db_name in db_names:
                self.load_table(db_name, table_name, schema, rows)

    def replicate_table(
        self, table: str, to_db: str, from_db: Optional[str] = None
    ) -> None:
        """Copy an existing table to another DBMS as a replica.

        ``from_db`` defaults to the (single) current holder.  The copy
        happens out-of-band (operator-managed replication), so it does
        not touch the network ledger or connector counters.
        """
        if from_db is None:
            holders = [
                name
                for name, database in self.databases.items()
                if database.catalog.get(table) is not None
            ]
            if not holders:
                raise CatalogError(
                    f"cannot replicate unknown table {table!r}"
                )
            from_db = holders[0]
        source = self.database(from_db).catalog.get(table)
        if source is None:
            raise CatalogError(f"no table {table!r} on DBMS {from_db!r}")
        self.database(to_db).create_table(
            table, source.schema, list(source.rows)
        )

    def partition_table(
        self,
        table: str,
        key: str,
        by_db: Iterable[str],
        scheme: str = "hash",
        bounds: Tuple = (),
        from_db: Optional[str] = None,
    ) -> PartitionSpec:
        """Split a loaded table into per-shard tables across DBMSes.

        ``by_db`` names the database hosting each shard, in partition
        order — its length is the partition count (a database may
        appear more than once to host several shards).  Rows route by
        ``key`` under ``scheme`` (``"hash"`` with a stable hash, or
        ``"range"`` over ascending upper-exclusive ``bounds``).  The
        original table is dropped from every holder: only the shards
        remain, and the logical name lives on solely in the partition
        spec the global catalog resolves.  Like replication, the split
        is an out-of-band operator action — no ledger traffic.
        """
        by_db = list(by_db)
        spec = PartitionSpec(
            table=table.lower(),
            key=key,
            partitions=len(by_db),
            scheme=scheme,
            bounds=tuple(bounds),
        )
        holders = [
            name
            for name, database in self.databases.items()
            if database.catalog.get(table) is not None
        ]
        if from_db is None:
            if not holders:
                raise CatalogError(
                    f"cannot partition unknown table {table!r}"
                )
            from_db = holders[0]
        source = self.database(from_db).catalog.get(table)
        if source is None:
            raise CatalogError(f"no table {table!r} on DBMS {from_db!r}")
        schema = source.schema
        key_index = schema.resolve(key)
        shards: List[List[tuple]] = [[] for _ in by_db]
        for row in source.rows:
            shards[spec.index_for(row[key_index])].append(row)
        for index, db_name in enumerate(by_db):
            self.database(db_name).create_table(
                partition_name(spec.table, index), schema, shards[index]
            )
        for holder in holders:
            self.database(holder).catalog.drop(table)
        self.partition_specs[spec.table] = spec
        return spec

    # -- metrics ------------------------------------------------------------------------

    def reset_metrics(self) -> None:
        """Clear the network ledger, traces, and connector counters."""
        self.network.reset_log()
        for database in self.databases.values():
            database.trace.reset()
        for connector in self.connectors.values():
            connector.reset_counters()

    def transfer_log(self):
        return list(self.network.log)
