"""Federation: a deployment of autonomous DBMSes on a simulated network."""

from repro.federation.deployment import Deployment

__all__ = ["Deployment"]
