"""The paper's motivating scenario (§II-A, Table I, Fig. 3).

The Municipal Office of Credo: a citizens' department (CDB), a
vaccination center (VDB), and a health department (HDB), each running
its own DBMS.  The chief health officer's analytical query measures
COVID-19 antibodies per vaccine type and age group — a three-DBMS
cross-database query.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, Optional

from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import DATE, DOUBLE, INTEGER, varchar

#: Table I: DBMS -> {table: schema}
PANDEMIC_SCHEMAS: Dict[str, Dict[str, Schema]] = {
    "CDB": {
        "Citizen": Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(24)),
                Field("age", INTEGER),
                Field("address", varchar(40)),
            ]
        ),
    },
    "VDB": {
        "Vaccines": Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(24)),
                Field("type", varchar(12)),
                Field("manufacturer", varchar(24)),
            ]
        ),
        "Vaccination": Schema(
            [
                Field("c_id", INTEGER),
                Field("v_id", INTEGER),
                Field("date", DATE),
            ]
        ),
    },
    "HDB": {
        "Measurements": Schema(
            [
                Field("id", INTEGER),
                Field("c_id", INTEGER),
                Field("date", DATE),
                Field("u_ml", DOUBLE),
            ]
        ),
    },
}

VACCINE_TYPES = ["mRNA", "vector", "protein"]

#: Fig. 3: the chief health officer's cross-database query.
CHO_QUERY = """
SELECT v.type, AVG(m.u_ml) AS avg_u_ml,
       CASE WHEN c.age BETWEEN 20 AND 30 THEN '20-30'
            WHEN c.age BETWEEN 30 AND 40 THEN '30-40'
            WHEN c.age BETWEEN 40 AND 50 THEN '40-50'
            WHEN c.age BETWEEN 50 AND 60 THEN '50-60'
            ELSE '60+' END AS age_group
FROM CDB.Citizen c, VDB.Vaccines v, VDB.Vaccination vn, HDB.Measurements m
WHERE c.id = vn.c_id AND c.id = m.c_id AND v.id = vn.v_id AND c.age > 20
GROUP BY age_group, v.type
"""


def build_pandemic_deployment(
    citizens: int = 2_000,
    vaccinations: int = 3_000,
    measurements: int = 5_000,
    seed: int = 42,
    topology: str = "onprem",
    profiles: Optional[Dict[str, str]] = None,
) -> Deployment:
    """Create the CDB/VDB/HDB federation with generated data.

    ``profiles`` overrides vendors (e.g. ``{"VDB": "mariadb"}`` for the
    paper's heterogeneity discussion — CDB on PostgreSQL, VDB on
    MariaDB).
    """
    rng = random.Random(seed)
    vendor = {"CDB": "postgres", "VDB": "postgres", "HDB": "postgres"}
    if profiles:
        vendor.update(profiles)
    deployment = Deployment(vendor, topology=topology)

    citizen_rows = [
        (
            identity,
            f"Citizen {identity}",
            16 + rng.randrange(74),
            f"{1 + identity % 99} Credo Street",
        )
        for identity in range(1, citizens + 1)
    ]
    deployment.load_table(
        "CDB", "Citizen", PANDEMIC_SCHEMAS["CDB"]["Citizen"], citizen_rows
    )

    vaccine_rows = [
        (
            number,
            f"Vaccine-{number}",
            VACCINE_TYPES[number % len(VACCINE_TYPES)],
            f"Manufacturer {number % 4}",
        )
        for number in range(1, 7)
    ]
    deployment.load_table(
        "VDB", "Vaccines", PANDEMIC_SCHEMAS["VDB"]["Vaccines"], vaccine_rows
    )

    vaccination_rows = [
        (
            rng.randrange(1, citizens + 1),
            rng.randrange(1, 7),
            _random_date(rng, 2021),
        )
        for _ in range(vaccinations)
    ]
    deployment.load_table(
        "VDB",
        "Vaccination",
        PANDEMIC_SCHEMAS["VDB"]["Vaccination"],
        vaccination_rows,
    )

    measurement_rows = [
        (
            number,
            rng.randrange(1, citizens + 1),
            _random_date(rng, 2021),
            round(rng.uniform(0.0, 250.0), 2),
        )
        for number in range(1, measurements + 1)
    ]
    deployment.load_table(
        "HDB",
        "Measurements",
        PANDEMIC_SCHEMAS["HDB"]["Measurements"],
        measurement_rows,
    )
    return deployment


def _random_date(rng: random.Random, year: int) -> datetime.date:
    return datetime.date(year, 1 + rng.randrange(12), 1 + rng.randrange(28))
