"""Workloads: TPC-H (the paper's evaluation) and the motivating
pandemic scenario of §II-A."""
