"""TPC-H relational schema (all eight tables, full column sets)."""

from __future__ import annotations

from typing import Dict, List

from repro.relational.schema import Field, Schema
from repro.sql.types import DATE, DOUBLE, INTEGER, char, varchar

TPCH_SCHEMAS: Dict[str, Schema] = {
    "region": Schema(
        [
            Field("r_regionkey", INTEGER),
            Field("r_name", char(25)),
            Field("r_comment", varchar(40)),
        ]
    ),
    "nation": Schema(
        [
            Field("n_nationkey", INTEGER),
            Field("n_name", char(25)),
            Field("n_regionkey", INTEGER),
            Field("n_comment", varchar(40)),
        ]
    ),
    "supplier": Schema(
        [
            Field("s_suppkey", INTEGER),
            Field("s_name", char(25)),
            Field("s_address", varchar(40)),
            Field("s_nationkey", INTEGER),
            Field("s_phone", char(15)),
            Field("s_acctbal", DOUBLE),
            Field("s_comment", varchar(40)),
        ]
    ),
    "customer": Schema(
        [
            Field("c_custkey", INTEGER),
            Field("c_name", varchar(25)),
            Field("c_address", varchar(40)),
            Field("c_nationkey", INTEGER),
            Field("c_phone", char(15)),
            Field("c_acctbal", DOUBLE),
            Field("c_mktsegment", char(10)),
            Field("c_comment", varchar(40)),
        ]
    ),
    "part": Schema(
        [
            Field("p_partkey", INTEGER),
            Field("p_name", varchar(55)),
            Field("p_mfgr", char(25)),
            Field("p_brand", char(10)),
            Field("p_type", varchar(25)),
            Field("p_size", INTEGER),
            Field("p_container", char(10)),
            Field("p_retailprice", DOUBLE),
            Field("p_comment", varchar(23)),
        ]
    ),
    "partsupp": Schema(
        [
            Field("ps_partkey", INTEGER),
            Field("ps_suppkey", INTEGER),
            Field("ps_availqty", INTEGER),
            Field("ps_supplycost", DOUBLE),
            Field("ps_comment", varchar(40)),
        ]
    ),
    "orders": Schema(
        [
            Field("o_orderkey", INTEGER),
            Field("o_custkey", INTEGER),
            Field("o_orderstatus", char(1)),
            Field("o_totalprice", DOUBLE),
            Field("o_orderdate", DATE),
            Field("o_orderpriority", char(15)),
            Field("o_clerk", char(15)),
            Field("o_shippriority", INTEGER),
            Field("o_comment", varchar(40)),
        ]
    ),
    "lineitem": Schema(
        [
            Field("l_orderkey", INTEGER),
            Field("l_partkey", INTEGER),
            Field("l_suppkey", INTEGER),
            Field("l_linenumber", INTEGER),
            Field("l_quantity", DOUBLE),
            Field("l_extendedprice", DOUBLE),
            Field("l_discount", DOUBLE),
            Field("l_tax", DOUBLE),
            Field("l_returnflag", char(1)),
            Field("l_linestatus", char(1)),
            Field("l_shipdate", DATE),
            Field("l_commitdate", DATE),
            Field("l_receiptdate", DATE),
            Field("l_shipinstruct", char(25)),
            Field("l_shipmode", char(10)),
            Field("l_comment", varchar(44)),
        ]
    ),
}

#: Canonical load order (respects foreign-key style dependencies).
TABLE_NAMES: List[str] = [
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
]

#: Single-letter abbreviations used in the paper's Table III / Table IV.
TABLE_ABBREVIATIONS: Dict[str, str] = {
    "lineitem": "l",
    "customer": "c",
    "orders": "o",
    "supplier": "s",
    "nation": "n",
    "region": "r",
    "part": "p",
    "partsupp": "ps",
}
