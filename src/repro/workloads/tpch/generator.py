"""A dbgen-like TPC-H data generator.

Row counts scale linearly with the scale factor exactly as in the spec
(sf 1 ≈ 150 K customers / 1.5 M orders / ~6 M lineitems); the benchmarks
run micro scale factors (e.g. 0.002–0.2) that stand in for the paper's
sf 1–100 while preserving all relative cardinalities, value
distributions, and the selectivities the evaluated queries depend on
(market segments, region names, part types, ship dates...).

Generation is deterministic for a given (scale factor, seed).
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.relational.schema import Schema
from repro.workloads.tpch.schema import TPCH_SCHEMAS

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: The 25 TPC-H nations with their region index.
NATIONS: List[Tuple[str, int]] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

PART_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hot pink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
]

START_DATE = datetime.date(1992, 1, 1)
#: Latest order date; lineitem ship dates extend up to 122 days later.
END_ORDER_DATE = datetime.date(1998, 8, 2)
_ORDER_DATE_SPAN = (END_ORDER_DATE - START_DATE).days

# Base row counts at scale factor 1 (per the TPC-H specification).
BASE_SUPPLIERS = 10_000
BASE_CUSTOMERS = 150_000
BASE_PARTS = 200_000
BASE_ORDERS_PER_CUSTOMER = 10
PARTSUPP_PER_PART = 4
MAX_LINEITEMS_PER_ORDER = 7


@dataclass
class TPCHData:
    """Generated tables: name → (schema, rows)."""

    scale_factor: float
    seed: int
    tables: Dict[str, Tuple[Schema, List[tuple]]] = field(default_factory=dict)

    def rows_of(self, table: str) -> List[tuple]:
        return self.tables[table][1]

    def schema_of(self, table: str) -> Schema:
        return self.tables[table][0]

    def row_counts(self) -> Dict[str, int]:
        return {name: len(rows) for name, (_, rows) in self.tables.items()}


def _scaled(base: int, scale_factor: float) -> int:
    return max(int(base * scale_factor), 1)


def generate(scale_factor: float, seed: int = 19921) -> TPCHData:
    """Generate all eight TPC-H tables at ``scale_factor``."""
    if scale_factor <= 0:
        raise WorkloadError(f"scale factor must be positive: {scale_factor}")
    rng = random.Random(seed)
    data = TPCHData(scale_factor=scale_factor, seed=seed)

    # region ---------------------------------------------------------------
    region_rows = [
        (index, name, f"comment for region {name.lower()}")
        for index, name in enumerate(REGIONS)
    ]
    data.tables["region"] = (TPCH_SCHEMAS["region"], region_rows)

    # nation ----------------------------------------------------------------
    nation_rows = [
        (index, name, region, f"nation {name.lower()} notes")
        for index, (name, region) in enumerate(NATIONS)
    ]
    data.tables["nation"] = (TPCH_SCHEMAS["nation"], nation_rows)

    # supplier ---------------------------------------------------------------
    supplier_count = _scaled(BASE_SUPPLIERS, scale_factor)
    supplier_rows = []
    for key in range(1, supplier_count + 1):
        supplier_rows.append(
            (
                key,
                f"Supplier#{key:09d}",
                f"addr s{key % 1000}",
                rng.randrange(len(NATIONS)),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                "supplier notes",
            )
        )
    data.tables["supplier"] = (TPCH_SCHEMAS["supplier"], supplier_rows)

    # customer ---------------------------------------------------------------
    customer_count = _scaled(BASE_CUSTOMERS, scale_factor)
    customer_rows = []
    for key in range(1, customer_count + 1):
        customer_rows.append(
            (
                key,
                f"Customer#{key:09d}",
                f"addr c{key % 1000}",
                rng.randrange(len(NATIONS)),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(MARKET_SEGMENTS),
                "customer notes",
            )
        )
    data.tables["customer"] = (TPCH_SCHEMAS["customer"], customer_rows)

    # part ---------------------------------------------------------------------
    part_count = _scaled(BASE_PARTS, scale_factor)
    part_rows = []
    for key in range(1, part_count + 1):
        color_a, color_b = rng.sample(PART_COLORS, 2)
        part_type = (
            f"{rng.choice(TYPE_SYLLABLE_1)} "
            f"{rng.choice(TYPE_SYLLABLE_2)} "
            f"{rng.choice(TYPE_SYLLABLE_3)}"
        )
        part_rows.append(
            (
                key,
                f"{color_a} {color_b} part",
                f"Manufacturer#{1 + key % 5}",
                f"Brand#{1 + key % 5}{1 + key % 5}",
                part_type,
                rng.randrange(1, 51),
                rng.choice(CONTAINERS),
                round(900 + (key % 1000) + rng.random() * 100, 2),
                "part notes",
            )
        )
    data.tables["part"] = (TPCH_SCHEMAS["part"], part_rows)

    # partsupp -----------------------------------------------------------------
    partsupp_rows = []
    for key in range(1, part_count + 1):
        for replica in range(PARTSUPP_PER_PART):
            supp = 1 + ((key + replica * (supplier_count // PARTSUPP_PER_PART + 1)) % supplier_count)
            partsupp_rows.append(
                (
                    key,
                    supp,
                    rng.randrange(1, 10_000),
                    round(rng.uniform(1.0, 1000.0), 2),
                    "partsupp notes",
                )
            )
    data.tables["partsupp"] = (TPCH_SCHEMAS["partsupp"], partsupp_rows)

    # orders + lineitem ------------------------------------------------------------
    order_count = customer_count * BASE_ORDERS_PER_CUSTOMER
    orders_rows = []
    lineitem_rows = []
    for key in range(1, order_count + 1):
        custkey = rng.randrange(1, customer_count + 1)
        order_date = START_DATE + datetime.timedelta(
            days=rng.randrange(_ORDER_DATE_SPAN + 1)
        )
        line_count = rng.randrange(1, MAX_LINEITEMS_PER_ORDER + 1)
        total_price = 0.0
        for line_number in range(1, line_count + 1):
            partkey = rng.randrange(1, part_count + 1)
            suppkey = rng.randrange(1, supplier_count + 1)
            quantity = float(rng.randrange(1, 51))
            extended = round(quantity * (900 + partkey % 1000), 2)
            discount = round(rng.randrange(0, 11) / 100.0, 2)
            tax = round(rng.randrange(0, 9) / 100.0, 2)
            ship_date = order_date + datetime.timedelta(
                days=rng.randrange(1, 122)
            )
            commit_date = order_date + datetime.timedelta(
                days=rng.randrange(30, 91)
            )
            receipt_date = ship_date + datetime.timedelta(
                days=rng.randrange(1, 31)
            )
            return_flag = (
                rng.choice("RA")
                if receipt_date <= datetime.date(1995, 6, 17)
                else "N"
            )
            line_status = (
                "O" if ship_date > datetime.date(1995, 6, 17) else "F"
            )
            lineitem_rows.append(
                (
                    key,
                    partkey,
                    suppkey,
                    line_number,
                    quantity,
                    extended,
                    discount,
                    tax,
                    return_flag,
                    line_status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    rng.choice(SHIP_INSTRUCTIONS),
                    rng.choice(SHIP_MODES),
                    "lineitem notes",
                )
            )
            total_price += extended * (1 + tax) * (1 - discount)
        order_status = "F" if order_date < datetime.date(1995, 6, 17) else "O"
        orders_rows.append(
            (
                key,
                custkey,
                order_status,
                round(total_price, 2),
                order_date,
                rng.choice(ORDER_PRIORITIES),
                f"Clerk#{rng.randrange(1, 1001):09d}",
                0,
                "order notes",
            )
        )
    data.tables["orders"] = (TPCH_SCHEMAS["orders"], orders_rows)
    data.tables["lineitem"] = (TPCH_SCHEMAS["lineitem"], lineitem_rows)
    return data


def _phone(rng: random.Random) -> str:
    return (
        f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"
    )


_GENERATION_CACHE: Dict[Tuple[float, int], TPCHData] = {}


def generate_cached(scale_factor: float, seed: int = 19921) -> TPCHData:
    """Memoized :func:`generate` — benchmarks reuse the same datasets."""
    key = (scale_factor, seed)
    if key not in _GENERATION_CACHE:
        _GENERATION_CACHE[key] = generate(scale_factor, seed)
    return _GENERATION_CACHE[key]
