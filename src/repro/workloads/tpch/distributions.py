"""Table distributions TD1–TD3 (the paper's Table III).

A distribution maps every TPC-H table to the database hosting it.  TD1
and TD2 spread the schema over four databases; TD3 — the distribution
"that affects XDB the most" (§VI-E) — over seven, with only ``nation``
and ``region`` co-located.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError

#: table name -> database name (matching Table III's db1..db7, with the
#: abbreviations l, c, o, s, n, r, p, ps).
TABLE_DISTRIBUTIONS: Dict[str, Dict[str, str]] = {
    "TD1": {
        "lineitem": "db1",
        "customer": "db2",
        "orders": "db2",
        "supplier": "db3",
        "nation": "db3",
        "region": "db3",
        "part": "db4",
        "partsupp": "db4",
    },
    "TD2": {
        "lineitem": "db1",
        "supplier": "db1",
        "orders": "db2",
        "nation": "db2",
        "region": "db2",
        "customer": "db3",
        "part": "db4",
        "partsupp": "db4",
    },
    "TD3": {
        "lineitem": "db1",
        "orders": "db2",
        "supplier": "db3",
        "partsupp": "db4",
        "customer": "db5",
        "part": "db6",
        "nation": "db7",
        "region": "db7",
    },
}


def distribution(name: str) -> Dict[str, str]:
    """The table→database map for ``TD1`` / ``TD2`` / ``TD3``."""
    try:
        return TABLE_DISTRIBUTIONS[name.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown table distribution {name!r}; "
            f"available: {sorted(TABLE_DISTRIBUTIONS)}"
        )


def databases_for(name: str) -> List[str]:
    """The database names a distribution uses, in db1..db7 order."""
    return sorted(set(distribution(name).values()))
