"""TPC-H based workload: schema, generator, queries, and the paper's
table distributions (Table III)."""

from repro.workloads.tpch.distributions import TABLE_DISTRIBUTIONS, databases_for
from repro.workloads.tpch.generator import TPCHData, generate
from repro.workloads.tpch.queries import (
    EXTENDED_QUERIES,
    QUERIES,
    QUERY_JOIN_COUNTS,
    query,
)
from repro.workloads.tpch.schema import TPCH_SCHEMAS, TABLE_NAMES

__all__ = [
    "EXTENDED_QUERIES",
    "QUERIES",
    "QUERY_JOIN_COUNTS",
    "TABLE_DISTRIBUTIONS",
    "TABLE_NAMES",
    "TPCH_SCHEMAS",
    "TPCHData",
    "databases_for",
    "generate",
    "query",
]
