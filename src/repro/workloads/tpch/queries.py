"""The cross-database TPC-H queries of the evaluation (§VI-A).

The paper evaluates Q3 (3 joins), Q5 (6), Q7 (5), Q8 (8), Q9 (6), and
Q10 (4).  Tables are referenced unqualified — XDB's global catalog
locates each one, so the same text runs under every table distribution.
Q7/Q8/Q9 keep their official derived-table shape (and Q7/Q8 join
``nation`` twice through aliases).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError

QUERIES: Dict[str, str] = {
    # -- Q3: shipping priority (3 joins) ---------------------------------
    "Q3": """
        SELECT l.l_orderkey,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
               o.o_orderdate, o.o_shippriority
        FROM customer c, orders o, lineitem l
        WHERE c.c_mktsegment = 'BUILDING'
          AND c.c_custkey = o.o_custkey
          AND l.l_orderkey = o.o_orderkey
          AND o.o_orderdate < DATE '1995-03-15'
          AND l.l_shipdate > DATE '1995-03-15'
        GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
        ORDER BY revenue DESC, o.o_orderdate
        LIMIT 10
    """,
    # -- Q5: local supplier volume (6 joins) --------------------------------
    "Q5": """
        SELECT n.n_name,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
        FROM customer c, orders o, lineitem l, supplier s, nation n,
             region r
        WHERE c.c_custkey = o.o_custkey
          AND l.l_orderkey = o.o_orderkey
          AND l.l_suppkey = s.s_suppkey
          AND c.c_nationkey = s.s_nationkey
          AND s.s_nationkey = n.n_nationkey
          AND n.n_regionkey = r.r_regionkey
          AND r.r_name = 'ASIA'
          AND o.o_orderdate >= DATE '1994-01-01'
          AND o.o_orderdate < DATE '1995-01-01'
        GROUP BY n.n_name
        ORDER BY revenue DESC
    """,
    # -- Q7: volume shipping (5 joins, nation joined twice) -----------------
    "Q7": """
        SELECT shipping.supp_nation, shipping.cust_nation, shipping.l_year,
               SUM(shipping.volume) AS revenue
        FROM (
            SELECT n1.n_name AS supp_nation,
                   n2.n_name AS cust_nation,
                   EXTRACT(YEAR FROM l.l_shipdate) AS l_year,
                   l.l_extendedprice * (1 - l.l_discount) AS volume
            FROM supplier s, lineitem l, orders o, customer c,
                 nation n1, nation n2
            WHERE s.s_suppkey = l.l_suppkey
              AND o.o_orderkey = l.l_orderkey
              AND c.c_custkey = o.o_custkey
              AND s.s_nationkey = n1.n_nationkey
              AND c.c_nationkey = n2.n_nationkey
              AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
                OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
              AND l.l_shipdate BETWEEN DATE '1995-01-01'
                                   AND DATE '1996-12-31'
        ) AS shipping
        GROUP BY shipping.supp_nation, shipping.cust_nation, shipping.l_year
        ORDER BY shipping.supp_nation, shipping.cust_nation, shipping.l_year
    """,
    # -- Q8: national market share (8 joins) ---------------------------------
    "Q8": """
        SELECT all_nations.o_year,
               SUM(CASE WHEN all_nations.nation = 'BRAZIL'
                        THEN all_nations.volume ELSE 0 END)
                 / SUM(all_nations.volume) AS mkt_share
        FROM (
            SELECT EXTRACT(YEAR FROM o.o_orderdate) AS o_year,
                   l.l_extendedprice * (1 - l.l_discount) AS volume,
                   n2.n_name AS nation
            FROM part p, supplier s, lineitem l, orders o, customer c,
                 nation n1, nation n2, region r
            WHERE p.p_partkey = l.l_partkey
              AND s.s_suppkey = l.l_suppkey
              AND l.l_orderkey = o.o_orderkey
              AND o.o_custkey = c.c_custkey
              AND c.c_nationkey = n1.n_nationkey
              AND n1.n_regionkey = r.r_regionkey
              AND r.r_name = 'AMERICA'
              AND s.s_nationkey = n2.n_nationkey
              AND o.o_orderdate BETWEEN DATE '1995-01-01'
                                    AND DATE '1996-12-31'
              AND p.p_type = 'ECONOMY ANODIZED STEEL'
        ) AS all_nations
        GROUP BY all_nations.o_year
        ORDER BY all_nations.o_year
    """,
    # -- Q9: product type profit (6 joins) ------------------------------------
    "Q9": """
        SELECT profit.nation, profit.o_year, SUM(profit.amount) AS sum_profit
        FROM (
            SELECT n.n_name AS nation,
                   EXTRACT(YEAR FROM o.o_orderdate) AS o_year,
                   l.l_extendedprice * (1 - l.l_discount)
                     - ps.ps_supplycost * l.l_quantity AS amount
            FROM part p, supplier s, lineitem l, partsupp ps, orders o,
                 nation n
            WHERE s.s_suppkey = l.l_suppkey
              AND ps.ps_suppkey = l.l_suppkey
              AND ps.ps_partkey = l.l_partkey
              AND p.p_partkey = l.l_partkey
              AND o.o_orderkey = l.l_orderkey
              AND s.s_nationkey = n.n_nationkey
              AND p.p_name LIKE '%green%'
        ) AS profit
        GROUP BY profit.nation, profit.o_year
        ORDER BY profit.nation, profit.o_year DESC
    """,
    # -- Q10: returned item reporting (4 joins) ---------------------------------
    "Q10": """
        SELECT c.c_custkey, c.c_name,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
               c.c_acctbal, n.n_name, c.c_address, c.c_phone, c.c_comment
        FROM customer c, orders o, lineitem l, nation n
        WHERE c.c_custkey = o.o_custkey
          AND l.l_orderkey = o.o_orderkey
          AND o.o_orderdate >= DATE '1993-10-01'
          AND o.o_orderdate < DATE '1994-01-01'
          AND l.l_returnflag = 'R'
          AND c.c_nationkey = n.n_nationkey
        GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone,
                 n.n_name, c.c_address, c.c_comment
        ORDER BY revenue DESC
        LIMIT 20
    """,
}

#: Additional TPC-H queries in the supported subset — not part of the
#: paper's evaluation (which uses Q3/Q5/Q7/Q8/Q9/Q10), but useful for
#: exercising the systems more broadly.  All are tested for equivalence
#: against a single-engine ground truth.
EXTENDED_QUERIES: Dict[str, str] = {
    # -- Q1: pricing summary report (single table, heavy aggregation) --
    "Q1": """
        SELECT l.l_returnflag, l.l_linestatus,
               SUM(l.l_quantity) AS sum_qty,
               SUM(l.l_extendedprice) AS sum_base_price,
               SUM(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc_price,
               SUM(l.l_extendedprice * (1 - l.l_discount)
                   * (1 + l.l_tax)) AS sum_charge,
               AVG(l.l_quantity) AS avg_qty,
               AVG(l.l_extendedprice) AS avg_price,
               AVG(l.l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem l
        WHERE l.l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY l.l_returnflag, l.l_linestatus
        ORDER BY l.l_returnflag, l.l_linestatus
    """,
    # -- Q6: forecasting revenue change (single table, range filters) --
    "Q6": """
        SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue
        FROM lineitem l
        WHERE l.l_shipdate >= DATE '1994-01-01'
          AND l.l_shipdate < DATE '1995-01-01'
          AND l.l_discount BETWEEN 0.05 AND 0.07
          AND l.l_quantity < 24
    """,
    # -- Q12: shipping modes and order priority (2 tables) ---------------
    "Q12": """
        SELECT l.l_shipmode,
               SUM(CASE WHEN o.o_orderpriority = '1-URGENT'
                          OR o.o_orderpriority = '2-HIGH'
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o.o_orderpriority <> '1-URGENT'
                         AND o.o_orderpriority <> '2-HIGH'
                        THEN 1 ELSE 0 END) AS low_line_count
        FROM orders o, lineitem l
        WHERE o.o_orderkey = l.l_orderkey
          AND l.l_shipmode IN ('MAIL', 'SHIP')
          AND l.l_commitdate < l.l_receiptdate
          AND l.l_shipdate < l.l_commitdate
          AND l.l_receiptdate >= DATE '1994-01-01'
          AND l.l_receiptdate < DATE '1995-01-01'
        GROUP BY l.l_shipmode
        ORDER BY l.l_shipmode
    """,
    # -- Q14: promotion effect (2 tables, conditional aggregation) --------
    "Q14": """
        SELECT 100.00 * SUM(CASE WHEN p.p_type LIKE 'PROMO%'
                                 THEN l.l_extendedprice
                                      * (1 - l.l_discount)
                                 ELSE 0 END)
                 / SUM(l.l_extendedprice * (1 - l.l_discount))
                 AS promo_revenue
        FROM lineitem l, part p
        WHERE l.l_partkey = p.p_partkey
          AND l.l_shipdate >= DATE '1995-09-01'
          AND l.l_shipdate < DATE '1995-10-01'
    """,
    # -- Q19: discounted revenue (disjunctive predicate over the join) ----
    "Q19": """
        SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
        FROM lineitem l, part p
        WHERE p.p_partkey = l.l_partkey
          AND ((p.p_brand = 'Brand#11'
                AND p.p_container IN ('SM CASE', 'SM BOX')
                AND l.l_quantity BETWEEN 1 AND 11
                AND p.p_size BETWEEN 1 AND 5)
            OR (p.p_brand = 'Brand#22'
                AND p.p_container IN ('MED BAG', 'MED BOX')
                AND l.l_quantity BETWEEN 10 AND 20
                AND p.p_size BETWEEN 1 AND 10)
            OR (p.p_brand = 'Brand#33'
                AND p.p_container IN ('LG CASE', 'LG BOX')
                AND l.l_quantity BETWEEN 20 AND 30
                AND p.p_size BETWEEN 1 AND 15))
          AND l.l_shipmode IN ('AIR', 'REG AIR')
          AND l.l_shipinstruct = 'DELIVER IN PERSON'
    """,
}

#: Join counts as reported in §VI-A.
QUERY_JOIN_COUNTS: Dict[str, int] = {
    "Q3": 3,
    "Q5": 6,
    "Q7": 5,
    "Q8": 8,
    "Q9": 6,
    "Q10": 4,
}

#: Tables each query touches (used for placement-aware setups).
QUERY_TABLES: Dict[str, List[str]] = {
    "Q3": ["customer", "orders", "lineitem"],
    "Q5": ["customer", "orders", "lineitem", "supplier", "nation", "region"],
    "Q7": ["supplier", "lineitem", "orders", "customer", "nation"],
    "Q8": [
        "part",
        "supplier",
        "lineitem",
        "orders",
        "customer",
        "nation",
        "region",
    ],
    "Q9": ["part", "supplier", "lineitem", "partsupp", "orders", "nation"],
    "Q10": ["customer", "orders", "lineitem", "nation"],
}


def query(name: str) -> str:
    """SQL text for an evaluated or extended query (e.g. ``"Q3"``)."""
    key = name.upper()
    if key in QUERIES:
        return QUERIES[key]
    if key in EXTENDED_QUERIES:
        return EXTENDED_QUERIES[key]
    raise WorkloadError(
        f"unknown query {name!r}; available: "
        f"{sorted(QUERIES) + sorted(EXTENDED_QUERIES)}"
    )
