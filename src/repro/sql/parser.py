"""Recursive-descent SQL parser with a Pratt expression parser.

The parser accepts the union of the three vendor surfaces used in the
reproduction (PostgreSQL, MariaDB, Hive): all of them produce the same
AST, with :class:`repro.sql.ast.CreateForeignTable` recording which
syntax a foreign-table declaration used.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenKind
from repro.sql.types import type_from_name

#: Binding powers for binary operators (higher binds tighter).
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    # NOT handled as prefix with power 3
    "=": 4,
    "<>": 4,
    "!=": 4,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "||": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
}

_COMPARISON_LEVEL = 4

_EXTRACT_UNITS = {"YEAR", "MONTH", "DAY"}
_INTERVAL_UNITS = {"DAY", "MONTH", "YEAR"}


class Parser:
    """Parses one SQL statement (or standalone expression) from text."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0

    # -- public entry points -------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse a full statement; trailing ``;`` is allowed."""
        statement = self._statement()
        self._accept_punct(";")
        self._expect_eof()
        return statement

    def parse_expression(self) -> ast.Expression:
        """Parse a standalone scalar expression."""
        expr = self._expression()
        self._expect_eof()
        return expr

    # -- token plumbing --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(
            f"{message} (found {token} at line {token.line}, "
            f"column {token.column})"
        )

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            raise self._error(f"expected {'/'.join(names)}")
        return token

    def _accept_punct(self, value: str) -> bool:
        if self._peek().matches(TokenKind.PUNCTUATION, value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _accept_operator(self, value: str) -> bool:
        if self._peek().matches(TokenKind.OPERATOR, value):
            self._advance()
            return True
        return False

    def _expect_eof(self) -> None:
        if self._peek().kind is not TokenKind.EOF:
            raise self._error("unexpected trailing input")

    def _identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            self._advance()
            return str(token.value)
        raise self._error(f"expected {what}")

    def _qualified_name(self) -> Tuple[str, ...]:
        parts = [self._identifier("table name")]
        while self._accept_punct("."):
            parts.append(self._identifier("name component"))
        return tuple(parts)

    def _string(self, what: str = "string literal") -> str:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._advance()
            return str(token.value)
        raise self._error(f"expected {what}")

    def _integer(self, what: str = "integer") -> int:
        token = self._peek()
        if token.kind is TokenKind.INTEGER:
            self._advance()
            return int(token.value)
        raise self._error(f"expected {what}")

    # -- statements ------------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            return self._query()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("EXPLAIN"):
            self._advance()
            return ast.Explain(self._query())
        raise self._error("expected a statement")

    # CREATE dispatch ------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        or_replace = False
        if self._accept_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        if self._accept_keyword("VIEW"):
            return self._create_view(or_replace)
        if self._accept_keyword("FOREIGN"):
            if or_replace:
                raise self._error(
                    "OR REPLACE is only supported for views and CTAS"
                )
            self._expect_keyword("TABLE")
            return self._create_foreign_table_postgres()
        if self._accept_keyword("EXTERNAL"):
            if or_replace:
                raise self._error(
                    "OR REPLACE is only supported for views and CTAS"
                )
            self._expect_keyword("TABLE")
            return self._create_foreign_table_hive()
        temporary = bool(self._accept_keyword("TEMPORARY"))
        self._expect_keyword("TABLE")
        return self._create_table(temporary, or_replace)

    def _create_view(self, or_replace: bool) -> ast.CreateView:
        name = self._identifier("view name")
        self._expect_keyword("AS")
        query = self._query()
        return ast.CreateView(name=name, query=query, or_replace=or_replace)

    def _column_defs(self) -> Tuple[ast.ColumnDef, ...]:
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        while True:
            name = self._identifier("column name")
            columns.append(ast.ColumnDef(name, self._type_name()))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return tuple(columns)

    def _type_name(self) -> "ast.SQLType":
        token = self._peek()
        if token.is_keyword("DATE"):
            self._advance()
            name = "DATE"
        elif token.kind is TokenKind.IDENTIFIER:
            self._advance()
            name = str(token.value)
        else:
            raise self._error("expected a type name")
        args: List[int] = []
        if self._accept_punct("("):
            args.append(self._integer("type length"))
            while self._accept_punct(","):
                args.append(self._integer("type argument"))
            self._expect_punct(")")
        return type_from_name(name, *args)

    def _options_clause(self) -> dict:
        """``OPTIONS (key 'value', ...)`` — keys are identifiers."""
        self._expect_keyword("OPTIONS")
        self._expect_punct("(")
        options = {}
        while True:
            key = self._identifier("option name")
            options[key] = self._string("option value")
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return options

    def _create_foreign_table_postgres(self) -> ast.CreateForeignTable:
        name = self._identifier("foreign table name")
        columns = self._column_defs()
        self._expect_keyword("SERVER")
        server = self._identifier("server name")
        remote = name
        if self._peek().is_keyword("OPTIONS"):
            options = self._options_clause()
            remote = options.get("table_name", name)
        return ast.CreateForeignTable(
            name=name,
            columns=columns,
            server=server,
            remote_object=remote,
            syntax="postgres",
        )

    def _create_foreign_table_hive(self) -> ast.CreateForeignTable:
        name = self._identifier("external table name")
        columns = self._column_defs()
        self._expect_keyword("STORED")
        self._expect_keyword("BY")
        server = self._string("storage handler (server) name")
        remote = name
        if self._peek().is_keyword("OPTIONS"):
            options = self._options_clause()
            remote = options.get("table_name", name)
        return ast.CreateForeignTable(
            name=name,
            columns=columns,
            server=server,
            remote_object=remote,
            syntax="hive",
        )

    def _create_table(
        self, temporary: bool, or_replace: bool = False
    ) -> ast.Statement:
        name = self._identifier("table name")
        if self._accept_keyword("AS"):
            return ast.CreateTableAs(
                name=name,
                query=self._query(),
                temporary=temporary,
                or_replace=or_replace,
            )
        if or_replace:
            raise self._error(
                "OR REPLACE is only supported for views and CTAS"
            )
        columns = self._column_defs()
        # MariaDB federated-table surface:
        #   CREATE TABLE t (...) ENGINE=FEDERATED CONNECTION='server/remote'
        if self._accept_keyword("ENGINE"):
            if not self._accept_operator("="):
                raise self._error("expected '=' after ENGINE")
            engine = self._identifier("engine name")
            if engine.upper() != "FEDERATED":
                raise self._error(f"unsupported storage engine {engine!r}")
            connection_kw = self._identifier("CONNECTION")
            if connection_kw.upper() != "CONNECTION":
                raise self._error("expected CONNECTION after ENGINE=FEDERATED")
            if not self._accept_operator("="):
                raise self._error("expected '=' after CONNECTION")
            connection = self._string("connection string")
            # Split on the LAST '/': server names may contain '/'
            # (e.g. host/schema prefixes), the trailing object may not.
            server, _, remote = connection.rpartition("/")
            if not server or not remote:
                raise self._error(
                    "CONNECTION must look like 'server/remote_table'"
                )
            return ast.CreateForeignTable(
                name=name,
                columns=columns,
                server=server,
                remote_object=remote,
                syntax="mariadb",
            )
        return ast.CreateTable(name=name, columns=columns, temporary=temporary)

    def _drop(self) -> ast.DropObject:
        self._expect_keyword("DROP")
        if self._accept_keyword("FOREIGN"):
            self._expect_keyword("TABLE")
            kind = "FOREIGN TABLE"
        elif self._accept_keyword("EXTERNAL"):
            self._expect_keyword("TABLE")
            kind = "FOREIGN TABLE"
        elif self._accept_keyword("VIEW"):
            kind = "VIEW"
        else:
            self._expect_keyword("TABLE")
            kind = "TABLE"
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._identifier("object name")
        return ast.DropObject(kind=kind, name=name, if_exists=if_exists)

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._identifier("table name")
        columns: Tuple[str, ...] = ()
        if self._accept_punct("("):
            names = [self._identifier("column name")]
            while self._accept_punct(","):
                names.append(self._identifier("column name"))
            self._expect_punct(")")
            columns = tuple(names)
        self._expect_keyword("VALUES")
        rows: List[Tuple[ast.Expression, ...]] = []
        while True:
            self._expect_punct("(")
            row = [self._expression()]
            while self._accept_punct(","):
                row.append(self._expression())
            self._expect_punct(")")
            rows.append(tuple(row))
            if not self._accept_punct(","):
                break
        return ast.Insert(table=table, columns=columns, rows=tuple(rows))

    # SELECT ----------------------------------------------------------------

    def _query(self) -> ast.Statement:
        """A query: SELECT [UNION ALL SELECT]...

        A trailing ORDER BY / LIMIT parses into the last branch and is
        hoisted to the union (standard SQL applies it globally).
        """
        result: ast.Statement = self._select()
        while self._peek().is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            right = self._select()
            order_by: Tuple[ast.OrderItem, ...] = ()
            limit = None
            if right.order_by or right.limit is not None:
                order_by, limit = right.order_by, right.limit
                right = ast.Select(
                    items=right.items,
                    from_items=right.from_items,
                    where=right.where,
                    group_by=right.group_by,
                    having=right.having,
                    distinct=right.distinct,
                )
            result = ast.UnionAll(result, right, order_by, limit)
        return result

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        self._accept_keyword("ALL")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())

        from_items: List[ast.FromItem] = []
        if self._accept_keyword("FROM"):
            from_items.append(self._from_item())
            while self._accept_punct(","):
                from_items.append(self._from_item())

        where = self._expression() if self._accept_keyword("WHERE") else None

        group_by: List[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expression())
            while self._accept_punct(","):
                group_by.append(self._expression())

        having = self._expression() if self._accept_keyword("HAVING") else None

        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())

        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self._integer("limit value")

        return ast.Select(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._peek().matches(TokenKind.OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # alias.*
        if (
            self._peek().kind
            in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER)
            and self._peek(1).matches(TokenKind.PUNCTUATION, ".")
            and self._peek(2).matches(TokenKind.OPERATOR, "*")
        ):
            table = self._identifier()
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(table=table))
        expr = self._expression()
        alias = self._optional_alias()
        return ast.SelectItem(expr, alias)

    def _optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.kind is TokenKind.STRING:
                self._advance()
                return str(token.value)
            return self._identifier("alias")
        token = self._peek()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            self._advance()
            return str(token.value)
        return None

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def _from_item(self) -> ast.FromItem:
        item = self._from_primary()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                kind = "CROSS"
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "LEFT"
            elif self._accept_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return item
            right = self._from_primary()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._expression()
            item = ast.Join(left=item, right=right, kind=kind, condition=condition)

    def _from_primary(self) -> ast.FromItem:
        if self._accept_punct("("):
            if self._peek().is_keyword("SELECT"):
                query = self._query()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._identifier("derived table alias")
                return ast.DerivedTable(query=query, alias=alias)
            item = self._from_item()
            self._expect_punct(")")
            return item
        parts = self._qualified_name()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("table alias")
        else:
            token = self._peek()
            if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
                self._advance()
                alias = str(token.value)
        return ast.TableRef(parts=parts, alias=alias)

    # -- expressions (Pratt) ---------------------------------------------------

    def _expression(self, min_power: int = 0) -> ast.Expression:
        left = self._prefix()
        while True:
            token = self._peek()
            negated = False
            lookahead = token
            if token.is_keyword("NOT") and self._peek(1).is_keyword(
                "BETWEEN", "IN", "LIKE"
            ):
                negated = True
                lookahead = self._peek(1)

            if lookahead.is_keyword("BETWEEN", "IN", "LIKE", "IS"):
                if _COMPARISON_LEVEL <= min_power:
                    return left
                if negated:
                    self._advance()  # NOT
                left = self._postfix_predicate(left, negated)
                continue

            op = self._binary_op_at(token)
            if op is None:
                return left
            power = _PRECEDENCE[op]
            if power <= min_power:
                return left
            self._advance()
            right = self._expression(power)
            left = ast.BinaryOp(op, left, right)

    def _binary_op_at(self, token: Token) -> Optional[str]:
        if token.kind is TokenKind.OPERATOR and token.value in _PRECEDENCE:
            return str(token.value)
        if token.is_keyword("AND", "OR"):
            return str(token.value)
        return None

    def _postfix_predicate(
        self, operand: ast.Expression, negated: bool = False
    ) -> ast.Expression:
        if self._accept_keyword("BETWEEN"):
            low = self._expression(_COMPARISON_LEVEL)
            self._expect_keyword("AND")
            high = self._expression(_COMPARISON_LEVEL)
            return ast.Between(operand, low, high, negated)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = [self._expression()]
            while self._accept_punct(","):
                items.append(self._expression())
            self._expect_punct(")")
            return ast.InList(operand, tuple(items), negated)
        if self._accept_keyword("LIKE"):
            pattern = self._expression(_COMPARISON_LEVEL)
            return ast.Like(operand, pattern, negated)
        if self._accept_keyword("IS"):
            is_not = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(operand, is_not)
        raise self._error("expected BETWEEN/IN/LIKE/IS")

    def _prefix(self) -> ast.Expression:
        token = self._peek()
        if token.is_keyword("NOT"):
            self._advance()
            operand = self._expression(3)
            return self._normalize_not(operand)
        if token.matches(TokenKind.OPERATOR, "-"):
            self._advance()
            return ast.UnaryOp("-", self._expression(8))
        if token.matches(TokenKind.OPERATOR, "+"):
            self._advance()
            return self._expression(8)
        return self._primary()

    @staticmethod
    def _normalize_not(operand: ast.Expression) -> ast.Expression:
        """Fold NOT into negatable predicates to keep the AST canonical."""
        if isinstance(operand, ast.Between):
            return ast.Between(
                operand.operand, operand.low, operand.high, not operand.negated
            )
        if isinstance(operand, ast.InList):
            return ast.InList(operand.operand, operand.items, not operand.negated)
        if isinstance(operand, ast.Like):
            return ast.Like(operand.operand, operand.pattern, not operand.negated)
        if isinstance(operand, ast.IsNull):
            return ast.IsNull(operand.operand, not operand.negated)
        return ast.UnaryOp("NOT", operand)

    def _primary(self) -> ast.Expression:
        token = self._peek()

        if token.kind in (TokenKind.INTEGER, TokenKind.FLOAT, TokenKind.STRING):
            self._advance()
            return ast.Literal(token.value)

        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)

        if token.is_keyword("DATE"):
            self._advance()
            text = self._string("date literal")
            try:
                value = datetime.date.fromisoformat(text)
            except ValueError as exc:
                raise self._error(f"invalid date literal {text!r}: {exc}")
            return ast.Literal(value)

        if token.is_keyword("INTERVAL"):
            self._advance()
            amount_text = self._string("interval amount")
            try:
                amount = int(amount_text)
            except ValueError:
                raise self._error(f"invalid interval amount {amount_text!r}")
            unit = self._identifier("interval unit").upper().rstrip("S")
            if unit not in _INTERVAL_UNITS:
                raise self._error(f"unsupported interval unit {unit!r}")
            return ast.IntervalLiteral(amount, unit)

        if token.is_keyword("CASE"):
            return self._case()

        if token.is_keyword("CAST"):
            self._advance()
            self._expect_punct("(")
            operand = self._expression()
            self._expect_keyword("AS")
            target = self._type_name()
            self._expect_punct(")")
            return ast.Cast(operand, target)

        if token.is_keyword("EXTRACT"):
            self._advance()
            self._expect_punct("(")
            unit = self._identifier("extract field").upper()
            if unit not in _EXTRACT_UNITS:
                raise self._error(f"unsupported EXTRACT field {unit!r}")
            self._expect_keyword("FROM")
            operand = self._expression()
            self._expect_punct(")")
            return ast.Extract(unit, operand)

        if token.is_keyword("SUM", "AVG", "COUNT", "MIN", "MAX"):
            name = str(self._advance().value)
            return self._function_call(name)

        if self._accept_punct("("):
            expr = self._expression()
            self._expect_punct(")")
            return expr

        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            name = self._identifier()
            if self._peek().matches(TokenKind.PUNCTUATION, "("):
                return self._function_call(name.upper())
            if self._peek().matches(TokenKind.PUNCTUATION, ".") and self._peek(
                1
            ).kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
                self._advance()
                column = self._identifier("column name")
                return ast.ColumnRef(name=column, table=name)
            return ast.ColumnRef(name=name)

        raise self._error("expected an expression")

    def _function_call(self, name: str) -> ast.FunctionCall:
        self._expect_punct("(")
        distinct = False
        args: List[ast.Expression] = []
        if self._peek().matches(TokenKind.OPERATOR, "*"):
            self._advance()
            args.append(ast.Star())
        elif not self._peek().matches(TokenKind.PUNCTUATION, ")"):
            distinct = bool(self._accept_keyword("DISTINCT"))
            args.append(self._expression())
            while self._accept_punct(","):
                args.append(self._expression())
        self._expect_punct(")")
        return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)

    def _case(self) -> ast.CaseWhen:
        self._expect_keyword("CASE")
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            result = self._expression()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self._expression()
        self._expect_keyword("END")
        return ast.CaseWhen(tuple(whens), else_result)


def parse_statement(text: str) -> ast.Statement:
    """Parse ``text`` into a single statement AST."""
    return Parser(text).parse_statement()


def parse_expression(text: str) -> ast.Expression:
    """Parse ``text`` into a scalar expression AST."""
    return Parser(text).parse_expression()
