"""Vendor SQL dialects for the three simulated engine families.

A dialect is a :class:`repro.sql.render.Renderer` subclass: it controls
identifier quoting and — most importantly for the delegation engine — the
surface syntax used to declare a foreign table:

* **PostgreSQL**: SQL/MED ``CREATE FOREIGN TABLE .. SERVER .. OPTIONS``.
* **MariaDB**: ``CREATE TABLE .. ENGINE=FEDERATED CONNECTION='srv/obj'``.
* **Hive**: ``CREATE EXTERNAL TABLE .. STORED BY 'srv' OPTIONS (..)``.

All three surfaces parse back into the same
:class:`repro.sql.ast.CreateForeignTable` node, which is what lets XDB
drive heterogeneous DBMSes through one code path.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.render import Renderer


class PostgresDialect(Renderer):
    """Canonical dialect; double-quoted identifiers, SQL/MED DDL."""

    name = "postgres"
    identifier_quote = '"'


class MariaDBDialect(Renderer):
    """Backtick identifiers; FEDERATED storage engine for foreign tables."""

    name = "mariadb"
    identifier_quote = "`"

    def _stmt_CreateForeignTable(self, stmt: ast.CreateForeignTable) -> str:
        # The FEDERATED surface packs server and object into one string
        # literal separated by the *last* '/' (the parser splits from
        # the right).  Server names may therefore contain '/', object
        # names may not — there is no escape for the separator.
        if "/" in stmt.remote_object:
            raise SQLError(
                f"remote object {stmt.remote_object!r} contains '/'; "
                "the MariaDB FEDERATED CONNECTION string cannot "
                "represent it"
            )
        connection = f"{stmt.server}/{stmt.remote_object}"
        return (
            f"CREATE TABLE {self.identifier(stmt.name)} "
            f"{self._column_defs(stmt.columns)} "
            f"ENGINE=FEDERATED CONNECTION={self.literal(connection)}"
        )

    def _stmt_DropObject(self, stmt: ast.DropObject) -> str:
        # MariaDB drops federated tables with plain DROP TABLE.
        kind = "TABLE" if stmt.kind == "FOREIGN TABLE" else stmt.kind
        exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP {kind} {exists}{self.identifier(stmt.name)}"


class HiveDialect(Renderer):
    """Backtick identifiers; EXTERNAL TABLE with a storage handler."""

    name = "hive"
    identifier_quote = "`"

    def _stmt_CreateForeignTable(self, stmt: ast.CreateForeignTable) -> str:
        return (
            f"CREATE EXTERNAL TABLE {self.identifier(stmt.name)} "
            f"{self._column_defs(stmt.columns)} "
            f"STORED BY {self.literal(stmt.server)} "
            f"OPTIONS (table_name {self.literal(stmt.remote_object)})"
        )

    def _stmt_DropObject(self, stmt: ast.DropObject) -> str:
        kind = "EXTERNAL TABLE" if stmt.kind == "FOREIGN TABLE" else stmt.kind
        exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP {kind} {exists}{self.identifier(stmt.name)}"


_DIALECTS: Dict[str, Type[Renderer]] = {
    "postgres": PostgresDialect,
    "mariadb": MariaDBDialect,
    "hive": HiveDialect,
}

_INSTANCES: Dict[str, Renderer] = {}


def dialect_for(name: str) -> Renderer:
    """Return a shared renderer instance for dialect ``name``."""
    key = name.lower()
    if key not in _DIALECTS:
        raise SQLError(
            f"unknown dialect {name!r}; expected one of {sorted(_DIALECTS)}"
        )
    if key not in _INSTANCES:
        _INSTANCES[key] = _DIALECTS[key]()
    return _INSTANCES[key]


def available_dialects() -> list:
    """Names of all registered dialects."""
    return sorted(_DIALECTS)
