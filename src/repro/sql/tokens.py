"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenKind(enum.Enum):
    """Lexical categories recognized by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    QUOTED_IDENTIFIER = "quoted_identifier"
    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words; the lexer upper-cases matching identifiers into keywords.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "AVG",
        "BETWEEN",
        "BY",
        "CASE",
        "CAST",
        "COUNT",
        "CREATE",
        "CROSS",
        "DATE",
        "DELETE",
        "DESC",
        "DISTINCT",
        "DROP",
        "ELSE",
        "END",
        "ENGINE",
        "EXISTS",
        "EXPLAIN",
        "EXTERNAL",
        "EXTRACT",
        "FALSE",
        "FOREIGN",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IF",
        "IN",
        "INNER",
        "INSERT",
        "INTERVAL",
        "INTO",
        "IS",
        "JOIN",
        "LEFT",
        "LIKE",
        "LIMIT",
        "LOCAL",
        "MAX",
        "MIN",
        "NOT",
        "NULL",
        "ON",
        "OPTIONS",
        "OR",
        "ORDER",
        "OUTER",
        "REPLACE",
        "RIGHT",
        "SELECT",
        "SERVER",
        "SET",
        "STORED",
        "SUM",
        "TABLE",
        "TEMPORARY",
        "THEN",
        "TRUE",
        "UNION",
        "USING",
        "VALUES",
        "VIEW",
        "WHEN",
        "WHERE",
    }
)

#: Multi-character operators, longest first so the lexer matches greedily.
OPERATORS = ("<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location (1-based line/column)."""

    kind: TokenKind
    value: Union[str, int, float]
    line: int
    column: int

    def matches(self, kind: TokenKind, value: object = None) -> bool:
        """True if this token has the given kind (and value, if provided)."""
        if self.kind is not kind:
            return False
        return value is None or self.value == value

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __str__(self) -> str:
        return f"{self.kind.value}({self.value!r})"
