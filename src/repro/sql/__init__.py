"""SQL front end: lexer, parser, AST, and per-dialect renderers.

The toolkit covers the SQL subset the paper's experiments need:

* analytical ``SELECT`` queries (joins, derived tables, aggregates,
  ``CASE``, ``BETWEEN``, ``IN``, ``LIKE``, ``EXTRACT``, ``ORDER BY`` /
  ``LIMIT``);
* the SQL/MED flavoured DDL the delegation engine emits (``CREATE VIEW``,
  ``CREATE FOREIGN TABLE`` and its MariaDB / Hive equivalents,
  ``CREATE TABLE AS``, ``DROP``);
* utility statements (``INSERT INTO .. VALUES``, ``EXPLAIN``).

Use :func:`parse_statement` / :func:`parse_expression` to parse and
:func:`repro.sql.render.render` (or a dialect from
:mod:`repro.sql.dialects`) to turn ASTs back into SQL text.
"""

from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse_expression, parse_statement
from repro.sql.render import render
from repro.sql.types import SQLType, TypeKind

__all__ = [
    "Lexer",
    "Parser",
    "SQLType",
    "TypeKind",
    "parse_expression",
    "parse_statement",
    "render",
    "tokenize",
]
