"""Typed abstract syntax tree for the supported SQL subset.

Nodes are plain frozen-ish dataclasses (mutable where the optimizer
rewrites in place is *not* allowed — rewrites always build new nodes).
Equality is structural, which the test suite relies on for round-trip
checks (``parse(render(ast)) == ast``).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.sql.types import SQLType

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for scalar expressions."""

    def children(self) -> List["Expression"]:
        """Direct sub-expressions, used by generic tree walks."""
        return []


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``c.age`` or ``age``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean, date, or NULL."""

    value: Union[int, float, str, bool, datetime.date, None]

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class IntervalLiteral(Expression):
    """``INTERVAL '<amount>' <unit>`` where unit is DAY/MONTH/YEAR."""

    amount: int
    unit: str  # "DAY" | "MONTH" | "YEAR"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, AND/OR, or ``||``."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> List[Expression]:
        return [self.left, self.right]


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``NOT expr`` or ``- expr``."""

    op: str  # "NOT" | "-"
    operand: Expression

    def children(self) -> List[Expression]:
        return [self.operand]


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand]


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand, self.low, self.high]


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand, *self.items]


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` / ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand, self.pattern]


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function or aggregate call, e.g. ``sum(x * y)`` / ``count(*)``."""

    name: str  # normalized upper-case
    args: Tuple[Expression, ...]
    distinct: bool = False

    def children(self) -> List[Expression]:
        return list(self.args)


#: Aggregate function names recognized by the binder and executor.
AGGREGATE_FUNCTIONS = frozenset({"SUM", "AVG", "COUNT", "MIN", "MAX"})


def is_aggregate_call(expr: Expression) -> bool:
    """Whether ``expr`` itself is an aggregate function call."""
    return isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expression) -> bool:
    """Whether ``expr`` contains an aggregate call anywhere in its tree."""
    if is_aggregate_call(expr):
        return True
    return any(contains_aggregate(child) for child in expr.children())


@dataclass(frozen=True)
class CaseWhen(Expression):
    """Searched ``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    else_result: Optional[Expression] = None

    def children(self) -> List[Expression]:
        out: List[Expression] = []
        for cond, result in self.whens:
            out.extend((cond, result))
        if self.else_result is not None:
            out.append(self.else_result)
        return out


@dataclass(frozen=True)
class Extract(Expression):
    """``EXTRACT(field FROM expr)`` for YEAR / MONTH / DAY."""

    unit: str
    operand: Expression

    def children(self) -> List[Expression]:
        return [self.operand]


@dataclass(frozen=True)
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    target: SQLType

    def children(self) -> List[Expression]:
        return [self.operand]


# ---------------------------------------------------------------------------
# FROM clause items
# ---------------------------------------------------------------------------


class FromItem:
    """Base class for items in a FROM clause."""


@dataclass(frozen=True)
class TableRef(FromItem):
    """A reference to a named relation, possibly qualified and aliased.

    ``parts`` holds the dotted name components, e.g. ``("CDB", "Citizen")``.
    """

    parts: Tuple[str, ...]
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> Optional[str]:
        return self.parts[0] if len(self.parts) > 1 else None

    @property
    def binding_name(self) -> str:
        """The name this relation is visible as inside the query."""
        return self.alias or self.name

    def __str__(self) -> str:
        text = ".".join(self.parts)
        return f"{text} AS {self.alias}" if self.alias else text


@dataclass(frozen=True)
class DerivedTable(FromItem):
    """``(SELECT ...) AS alias`` in a FROM clause."""

    query: "Select"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(FromItem):
    """An explicit ``A JOIN B ON cond`` tree node."""

    left: FromItem
    right: FromItem
    kind: str  # "INNER" | "LEFT" | "CROSS"
    condition: Optional[Expression] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for parsed SQL statements."""


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression plus optional alias."""

    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key."""

    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT query block."""

    items: Tuple[SelectItem, ...]
    from_items: Tuple[FromItem, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class UnionAll(Statement):
    """``<query> UNION ALL <select>`` (left-nested for >2 branches).

    A trailing ``ORDER BY`` / ``LIMIT`` applies to the whole union (the
    parser hoists it out of the last branch, per standard semantics).
    """

    left: "Statement"  # Select | UnionAll
    right: Select
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    def branches(self) -> List[Select]:
        """All SELECT branches, left to right."""
        out: List[Select] = []
        if isinstance(self.left, UnionAll):
            out.extend(self.left.branches())
        else:
            out.append(self.left)  # type: ignore[arg-type]
        out.append(self.right)
        return out


#: Statements usable wherever a query is expected.
QUERY_STATEMENTS = (Select, UnionAll)


@dataclass(frozen=True)
class ColumnDef:
    """A column declaration inside a CREATE TABLE style statement."""

    name: str
    type: SQLType


@dataclass(frozen=True)
class CreateView(Statement):
    """``CREATE [OR REPLACE] VIEW name AS query``."""

    name: str
    query: Select
    or_replace: bool = False


@dataclass(frozen=True)
class CreateForeignTable(Statement):
    """A foreign-table declaration in any of the vendor syntaxes.

    The canonical (PostgreSQL) form is::

        CREATE FOREIGN TABLE name (col type, ...) SERVER srv
            OPTIONS (table_name 'remote')

    MariaDB's ``ENGINE=FEDERATED CONNECTION='srv/remote'`` and Hive's
    ``CREATE EXTERNAL TABLE ... STORED BY 'srv' OPTIONS (...)`` parse into
    the same node with ``syntax`` recording the surface form.
    """

    name: str
    columns: Tuple[ColumnDef, ...]
    server: str
    remote_object: str
    syntax: str = "postgres"  # "postgres" | "mariadb" | "hive"


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE [TEMPORARY] TABLE name (col type, ...)``."""

    name: str
    columns: Tuple[ColumnDef, ...]
    temporary: bool = False


@dataclass(frozen=True)
class CreateTableAs(Statement):
    """``CREATE [OR REPLACE] [TEMPORARY] TABLE name AS query``.

    ``or_replace`` powers transactional re-materialization: the engine
    computes the fresh result *before* swapping it in, so a failing
    defining query leaves the previous snapshot intact.
    """

    name: str
    query: Select
    temporary: bool = False
    or_replace: bool = False


@dataclass(frozen=True)
class DropObject(Statement):
    """``DROP TABLE|VIEW|FOREIGN TABLE [IF EXISTS] name``."""

    kind: str  # "TABLE" | "VIEW" | "FOREIGN TABLE"
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN <select>`` — returns the plan and cost estimates."""

    query: Select


# ---------------------------------------------------------------------------
# Small expression helpers used across the code base
# ---------------------------------------------------------------------------


def conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Split a predicate on top-level ANDs into a flat conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(predicates: List[Expression]) -> Optional[Expression]:
    """AND together a list of predicates (None for an empty list)."""
    result: Optional[Expression] = None
    for predicate in predicates:
        result = predicate if result is None else BinaryOp("AND", result, predicate)
    return result


def column_refs(expr: Expression) -> List[ColumnRef]:
    """All column references in ``expr``, in tree order."""
    refs: List[ColumnRef] = []

    def walk(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        for child in node.children():
            walk(child)

    walk(expr)
    return refs


def referenced_tables(expr: Expression) -> List[str]:
    """Distinct table qualifiers referenced by ``expr`` (order-preserving)."""
    seen: Dict[str, None] = {}
    for ref in column_refs(expr):
        if ref.table is not None:
            seen.setdefault(ref.table, None)
    return list(seen)
