"""A hand-written SQL lexer.

The lexer is dialect-tolerant on purpose: it accepts double-quoted
(PostgreSQL) *and* backtick-quoted (MariaDB/Hive) identifiers, so a single
front end can read the SQL text that each simulated vendor emits.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexerError
from repro.sql.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_SPACE = frozenset(" \t\r\n")


class Lexer:
    """Streaming tokenizer over a SQL string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until (and including) an EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                yield self._token(TokenKind.EOF, "")
                return
            yield self._next_token()

    # -- internals ---------------------------------------------------------

    def _token(self, kind: TokenKind, value) -> Token:
        return Token(kind, value, self._line, self._column)

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self._pos, self._line, self._column)

    def _advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, maintaining line/column counters."""
        consumed = self._text[self._pos : self._pos + count]
        for ch in consumed:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch in _SPACE:
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        if ch in _IDENT_START:
            return self._lex_word()
        if ch in _DIGITS:
            return self._lex_number()
        if ch == "'":
            return self._lex_string()
        if ch in ('"', "`"):
            return self._lex_quoted_identifier(ch)
        for op in OPERATORS:
            if self._text.startswith(op, self._pos):
                token = self._token(TokenKind.OPERATOR, op)
                self._advance(len(op))
                return token
        if ch in PUNCTUATION:
            token = self._token(TokenKind.PUNCTUATION, ch)
            self._advance()
            return token
        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self) -> Token:
        line, column = self._line, self._column
        start = self._pos
        while self._pos < len(self._text) and self._peek() in _IDENT_CONT:
            self._advance()
        word = self._text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, line, column)
        return Token(TokenKind.IDENTIFIER, word, line, column)

    def _lex_number(self) -> Token:
        line, column = self._line, self._column
        start = self._pos
        is_float = False
        while self._pos < len(self._text) and self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            is_float = True
            self._advance()
            while self._pos < len(self._text) and self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._pos < len(self._text) and self._peek() in _DIGITS:
                self._advance()
        text = self._text[start : self._pos]
        if is_float:
            return Token(TokenKind.FLOAT, float(text), line, column)
        return Token(TokenKind.INTEGER, int(text), line, column)

    def _lex_string(self) -> Token:
        line, column = self._line, self._column
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote: '' -> '
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenKind.STRING, "".join(parts), line, column)
            parts.append(ch)
            self._advance()

    def _lex_quoted_identifier(self, quote: str) -> Token:
        line, column = self._line, self._column
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise self._error("unterminated quoted identifier")
            ch = self._peek()
            if ch == quote:
                if self._peek(1) == quote:
                    parts.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                return Token(
                    TokenKind.QUOTED_IDENTIFIER, "".join(parts), line, column
                )
            parts.append(ch)
            self._advance()


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return list(Lexer(text).tokens())
