"""AST → SQL text rendering.

The base :class:`Renderer` emits canonical, re-parseable SQL in the
PostgreSQL surface.  Vendor dialects (:mod:`repro.sql.dialects`) override
identifier quoting and the foreign-table DDL surface.  Round-tripping is a
tested invariant: ``parse(render(ast))`` is structurally equal to ``ast``
for every supported node.
"""

from __future__ import annotations

import datetime
from typing import List, Optional

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.tokens import KEYWORDS

_IDENT_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)

#: Rendering precedence per operator (mirrors the parser's table).
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "!=": 4,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "||": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
}


class Renderer:
    """Renders statements and expressions to SQL text."""

    #: Identifier quote character; dialects override.
    identifier_quote = '"'

    # -- public API -----------------------------------------------------------

    def render(self, node) -> str:
        """Render a statement or expression AST node to SQL text."""
        if isinstance(node, ast.Statement):
            return self.statement(node)
        if isinstance(node, ast.Expression):
            return self.expression(node)
        raise SQLError(f"cannot render node of type {type(node).__name__}")

    # -- identifiers and literals ----------------------------------------------

    def identifier(self, name: str) -> str:
        """Quote ``name`` only when required by the dialect's lexer."""
        if (
            name
            and all(ch in _IDENT_SAFE for ch in name)
            and not name[0].isdigit()
            and name.upper() not in KEYWORDS
        ):
            return name
        quote = self.identifier_quote
        return f"{quote}{name.replace(quote, quote * 2)}{quote}"

    def literal(self, value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            return repr(value)
        if isinstance(value, datetime.date):
            return f"DATE '{value.isoformat()}'"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        raise SQLError(f"cannot render literal {value!r}")

    # -- expressions -----------------------------------------------------------

    def expression(self, expr: ast.Expression) -> str:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise SQLError(f"cannot render expression {type(expr).__name__}")
        return method(expr)

    def _wrap(self, expr: ast.Expression, parent_power: int) -> str:
        """Render a child, parenthesizing when precedence requires it."""
        text = self.expression(expr)
        if isinstance(expr, ast.BinaryOp):
            if _PRECEDENCE[expr.op] <= parent_power:
                return f"({text})"
        elif isinstance(
            expr, (ast.Between, ast.InList, ast.Like, ast.IsNull, ast.UnaryOp)
        ):
            return f"({text})"
        return text

    def _expr_ColumnRef(self, expr: ast.ColumnRef) -> str:
        if expr.table:
            return f"{self.identifier(expr.table)}.{self.identifier(expr.name)}"
        return self.identifier(expr.name)

    def _expr_Star(self, expr: ast.Star) -> str:
        return f"{self.identifier(expr.table)}.*" if expr.table else "*"

    def _expr_Literal(self, expr: ast.Literal) -> str:
        return self.literal(expr.value)

    def _expr_IntervalLiteral(self, expr: ast.IntervalLiteral) -> str:
        return f"INTERVAL '{expr.amount}' {expr.unit}"

    def _expr_BinaryOp(self, expr: ast.BinaryOp) -> str:
        power = _PRECEDENCE[expr.op]
        left = self._wrap(expr.left, power - 1)
        right = self._wrap(expr.right, power)
        return f"{left} {expr.op} {right}"

    def _expr_UnaryOp(self, expr: ast.UnaryOp) -> str:
        if expr.op == "NOT":
            return f"NOT {self._wrap(expr.operand, 3)}"
        return f"-{self._wrap(expr.operand, 8)}"

    def _expr_IsNull(self, expr: ast.IsNull) -> str:
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{self._wrap(expr.operand, 4)} {suffix}"

    def _expr_Between(self, expr: ast.Between) -> str:
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{self._wrap(expr.operand, 4)} {keyword} "
            f"{self._wrap(expr.low, 4)} AND {self._wrap(expr.high, 4)}"
        )

    def _expr_InList(self, expr: ast.InList) -> str:
        keyword = "NOT IN" if expr.negated else "IN"
        items = ", ".join(self.expression(item) for item in expr.items)
        return f"{self._wrap(expr.operand, 4)} {keyword} ({items})"

    def _expr_Like(self, expr: ast.Like) -> str:
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (
            f"{self._wrap(expr.operand, 4)} {keyword} "
            f"{self._wrap(expr.pattern, 4)}"
        )

    def _expr_FunctionCall(self, expr: ast.FunctionCall) -> str:
        if len(expr.args) == 1 and isinstance(expr.args[0], ast.Star):
            return f"{expr.name}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(self.expression(arg) for arg in expr.args)
        return f"{expr.name}({prefix}{args})"

    def _expr_CaseWhen(self, expr: ast.CaseWhen) -> str:
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {self.expression(condition)} "
                f"THEN {self.expression(result)}"
            )
        if expr.else_result is not None:
            parts.append(f"ELSE {self.expression(expr.else_result)}")
        parts.append("END")
        return " ".join(parts)

    def _expr_Extract(self, expr: ast.Extract) -> str:
        return f"EXTRACT({expr.unit} FROM {self.expression(expr.operand)})"

    def _expr_Cast(self, expr: ast.Cast) -> str:
        return f"CAST({self.expression(expr.operand)} AS {expr.target})"

    # -- statements --------------------------------------------------------------

    def statement(self, stmt: ast.Statement) -> str:
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is None:
            raise SQLError(f"cannot render statement {type(stmt).__name__}")
        return method(stmt)

    def _stmt_Select(self, stmt: ast.Select) -> str:
        parts: List[str] = ["SELECT"]
        if stmt.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._select_item(i) for i in stmt.items))
        if stmt.from_items:
            parts.append("FROM")
            parts.append(
                ", ".join(self._from_item(f) for f in stmt.from_items)
            )
        if stmt.where is not None:
            parts.append(f"WHERE {self.expression(stmt.where)}")
        if stmt.group_by:
            keys = ", ".join(self.expression(g) for g in stmt.group_by)
            parts.append(f"GROUP BY {keys}")
        if stmt.having is not None:
            parts.append(f"HAVING {self.expression(stmt.having)}")
        if stmt.order_by:
            keys = ", ".join(self._order_item(o) for o in stmt.order_by)
            parts.append(f"ORDER BY {keys}")
        if stmt.limit is not None:
            parts.append(f"LIMIT {stmt.limit}")
        return " ".join(parts)

    def _select_item(self, item: ast.SelectItem) -> str:
        text = self.expression(item.expr)
        if item.alias:
            return f"{text} AS {self.identifier(item.alias)}"
        return text

    def _order_item(self, item: ast.OrderItem) -> str:
        text = self.expression(item.expr)
        return text if item.ascending else f"{text} DESC"

    def _from_item(self, item: ast.FromItem) -> str:
        if isinstance(item, ast.TableRef):
            text = ".".join(self.identifier(part) for part in item.parts)
            if item.alias:
                return f"{text} AS {self.identifier(item.alias)}"
            return text
        if isinstance(item, ast.DerivedTable):
            return (
                f"({self.statement(item.query)}) "
                f"AS {self.identifier(item.alias)}"
            )
        if isinstance(item, ast.Join):
            left = self._from_item(item.left)
            right = self._from_item(item.right)
            if isinstance(item.right, ast.Join):
                right = f"({right})"
            if item.kind == "CROSS":
                return f"{left} CROSS JOIN {right}"
            keyword = "JOIN" if item.kind == "INNER" else f"{item.kind} JOIN"
            condition = self.expression(item.condition)
            return f"{left} {keyword} {right} ON {condition}"
        raise SQLError(f"cannot render FROM item {type(item).__name__}")

    def _column_defs(self, columns) -> str:
        defs = ", ".join(
            f"{self.identifier(col.name)} {col.type}" for col in columns
        )
        return f"({defs})"

    def _stmt_UnionAll(self, stmt: ast.UnionAll) -> str:
        text = (
            f"{self.statement(stmt.left)} UNION ALL "
            f"{self._stmt_Select(stmt.right)}"
        )
        if stmt.order_by:
            keys = ", ".join(self._order_item(o) for o in stmt.order_by)
            text += f" ORDER BY {keys}"
        if stmt.limit is not None:
            text += f" LIMIT {stmt.limit}"
        return text

    def _stmt_CreateView(self, stmt: ast.CreateView) -> str:
        replace = "OR REPLACE " if stmt.or_replace else ""
        return (
            f"CREATE {replace}VIEW {self.identifier(stmt.name)} "
            f"AS {self.statement(stmt.query)}"
        )

    def _stmt_CreateForeignTable(self, stmt: ast.CreateForeignTable) -> str:
        return (
            f"CREATE FOREIGN TABLE {self.identifier(stmt.name)} "
            f"{self._column_defs(stmt.columns)} "
            f"SERVER {self.identifier(stmt.server)} "
            f"OPTIONS (table_name {self.literal(stmt.remote_object)})"
        )

    def _stmt_CreateTable(self, stmt: ast.CreateTable) -> str:
        temp = "TEMPORARY " if stmt.temporary else ""
        return (
            f"CREATE {temp}TABLE {self.identifier(stmt.name)} "
            f"{self._column_defs(stmt.columns)}"
        )

    def _stmt_CreateTableAs(self, stmt: ast.CreateTableAs) -> str:
        replace = "OR REPLACE " if stmt.or_replace else ""
        temp = "TEMPORARY " if stmt.temporary else ""
        return (
            f"CREATE {replace}{temp}TABLE {self.identifier(stmt.name)} "
            f"AS {self.statement(stmt.query)}"
        )

    def _stmt_DropObject(self, stmt: ast.DropObject) -> str:
        exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP {stmt.kind} {exists}{self.identifier(stmt.name)}"

    def _stmt_Insert(self, stmt: ast.Insert) -> str:
        columns = ""
        if stmt.columns:
            names = ", ".join(self.identifier(c) for c in stmt.columns)
            columns = f" ({names})"
        rows = ", ".join(
            "(" + ", ".join(self.expression(v) for v in row) + ")"
            for row in stmt.rows
        )
        return (
            f"INSERT INTO {self.identifier(stmt.table)}{columns} VALUES {rows}"
        )

    def _stmt_Explain(self, stmt: ast.Explain) -> str:
        return f"EXPLAIN {self.statement(stmt.query)}"


_DEFAULT_RENDERER: Optional[Renderer] = None


def render(node, renderer: Optional[Renderer] = None) -> str:
    """Render an AST node using ``renderer`` (default: canonical surface)."""
    global _DEFAULT_RENDERER
    if renderer is None:
        if _DEFAULT_RENDERER is None:
            _DEFAULT_RENDERER = Renderer()
        renderer = _DEFAULT_RENDERER
    return renderer.render(node)
