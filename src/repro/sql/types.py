"""SQL data types used by schemas, expressions, and the cost model.

Types are deliberately lightweight: a :class:`SQLType` is a kind plus
optional length / precision.  The module also centralizes the byte-width
estimates used for network-transfer accounting, so that every subsystem
(engines, connectors, the XDB annotator) agrees on the size of a row.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import TypeCheckError


class TypeKind(enum.Enum):
    """Enumeration of the supported SQL type kinds."""

    BOOLEAN = "boolean"
    INTEGER = "integer"
    BIGINT = "bigint"
    DOUBLE = "double"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    CHAR = "char"
    DATE = "date"
    NULL = "null"


_NUMERIC_KINDS = {
    TypeKind.INTEGER,
    TypeKind.BIGINT,
    TypeKind.DOUBLE,
    TypeKind.DECIMAL,
}

_TEXT_KINDS = {TypeKind.VARCHAR, TypeKind.CHAR}

#: Fixed byte widths per kind; text kinds fall back to declared length.
_FIXED_WIDTHS = {
    TypeKind.BOOLEAN: 1,
    TypeKind.INTEGER: 4,
    TypeKind.BIGINT: 8,
    TypeKind.DOUBLE: 8,
    TypeKind.DECIMAL: 8,
    TypeKind.DATE: 4,
    TypeKind.NULL: 1,
}

#: Width assumed for text columns that did not declare a length.
_DEFAULT_TEXT_WIDTH = 32

#: Numeric widening order used by :func:`common_supertype`.
_NUMERIC_ORDER = [
    TypeKind.INTEGER,
    TypeKind.BIGINT,
    TypeKind.DECIMAL,
    TypeKind.DOUBLE,
]


@dataclass(frozen=True)
class SQLType:
    """A SQL type: a kind plus an optional length (text) or precision."""

    kind: TypeKind
    length: Optional[int] = None
    precision: Optional[int] = None
    scale: Optional[int] = None

    def __str__(self) -> str:
        name = self.kind.value.upper()
        if self.kind in _TEXT_KINDS and self.length is not None:
            return f"{name}({self.length})"
        if self.kind is TypeKind.DECIMAL and self.precision is not None:
            if self.scale is not None:
                return f"{name}({self.precision},{self.scale})"
            return f"{name}({self.precision})"
        return name

    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC_KINDS

    @property
    def is_text(self) -> bool:
        return self.kind in _TEXT_KINDS

    def byte_width(self) -> int:
        """Estimated storage / wire width of one value of this type."""
        if self.kind in _TEXT_KINDS:
            return self.length if self.length else _DEFAULT_TEXT_WIDTH
        return _FIXED_WIDTHS[self.kind]


# Convenience singletons for the common cases.
BOOLEAN = SQLType(TypeKind.BOOLEAN)
INTEGER = SQLType(TypeKind.INTEGER)
BIGINT = SQLType(TypeKind.BIGINT)
DOUBLE = SQLType(TypeKind.DOUBLE)
DECIMAL = SQLType(TypeKind.DECIMAL)
DATE = SQLType(TypeKind.DATE)
NULL = SQLType(TypeKind.NULL)


def varchar(length: Optional[int] = None) -> SQLType:
    """Build a VARCHAR type with an optional declared length."""
    return SQLType(TypeKind.VARCHAR, length=length)


def char(length: Optional[int] = None) -> SQLType:
    """Build a CHAR type with an optional declared length."""
    return SQLType(TypeKind.CHAR, length=length)


def decimal(precision: int, scale: int = 0) -> SQLType:
    """Build a DECIMAL type with precision and scale."""
    return SQLType(TypeKind.DECIMAL, precision=precision, scale=scale)


_NAME_TO_KIND = {
    "BOOLEAN": TypeKind.BOOLEAN,
    "BOOL": TypeKind.BOOLEAN,
    "INT": TypeKind.INTEGER,
    "INTEGER": TypeKind.INTEGER,
    "INT4": TypeKind.INTEGER,
    "BIGINT": TypeKind.BIGINT,
    "INT8": TypeKind.BIGINT,
    "DOUBLE": TypeKind.DOUBLE,
    "FLOAT": TypeKind.DOUBLE,
    "FLOAT8": TypeKind.DOUBLE,
    "REAL": TypeKind.DOUBLE,
    "DECIMAL": TypeKind.DECIMAL,
    "NUMERIC": TypeKind.DECIMAL,
    "VARCHAR": TypeKind.VARCHAR,
    "STRING": TypeKind.VARCHAR,
    "TEXT": TypeKind.VARCHAR,
    "CHAR": TypeKind.CHAR,
    "DATE": TypeKind.DATE,
}


def type_from_name(name: str, *args: int) -> SQLType:
    """Resolve a SQL type name (as written in DDL) into a :class:`SQLType`.

    ``args`` carries the parenthesized arguments, e.g. ``VARCHAR(25)``
    passes ``25``.
    """
    kind = _NAME_TO_KIND.get(name.upper())
    if kind is None:
        raise TypeCheckError(f"unknown SQL type name: {name!r}")
    if kind in _TEXT_KINDS:
        return SQLType(kind, length=args[0] if args else None)
    if kind is TypeKind.DECIMAL and args:
        return SQLType(
            kind,
            precision=args[0],
            scale=args[1] if len(args) > 1 else 0,
        )
    return SQLType(kind)


def type_of_value(value: object) -> SQLType:
    """Infer the :class:`SQLType` of a Python runtime value."""
    if value is None:
        return NULL
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return BIGINT if abs(value) > 2**31 - 1 else INTEGER
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return varchar(len(value))
    if isinstance(value, datetime.date):
        return DATE
    raise TypeCheckError(f"unsupported runtime value type: {type(value)!r}")


def common_supertype(left: SQLType, right: SQLType) -> SQLType:
    """The narrowest type both operands can be widened to.

    NULL is compatible with anything; numerics widen along
    INTEGER → BIGINT → DECIMAL → DOUBLE; text kinds unify to VARCHAR.
    """
    if left.kind is TypeKind.NULL:
        return right
    if right.kind is TypeKind.NULL:
        return left
    if left.kind == right.kind:
        if left.is_text:
            lengths = [s.length for s in (left, right) if s.length is not None]
            return SQLType(left.kind, length=max(lengths) if lengths else None)
        return left
    if left.is_numeric and right.is_numeric:
        order = max(
            _NUMERIC_ORDER.index(left.kind), _NUMERIC_ORDER.index(right.kind)
        )
        return SQLType(_NUMERIC_ORDER[order])
    if left.is_text and right.is_text:
        lengths = [s.length for s in (left, right) if s.length is not None]
        return varchar(max(lengths) if lengths else None)
    raise TypeCheckError(f"incompatible types: {left} vs {right}")


def comparable(left: SQLType, right: SQLType) -> bool:
    """Whether values of the two types may be compared with ``=``/``<``."""
    try:
        common_supertype(left, right)
    except TypeCheckError:
        return False
    return True
