"""repro — a reproduction of "In-Situ Cross-Database Query Processing"
(XDB, ICDE 2023).

Quickstart::

    from repro import Deployment, XDB
    from repro.relational.schema import Field, Schema
    from repro.sql.types import INTEGER, varchar

    dep = Deployment({"CDB": "postgres", "VDB": "mariadb"})
    dep.load_table("CDB", "users",
                   Schema([Field("id", INTEGER), Field("name", varchar())]),
                   [(1, "ada"), (2, "grace")])
    dep.load_table("VDB", "events",
                   Schema([Field("user_id", INTEGER), Field("kind", varchar())]),
                   [(1, "login"), (1, "query"), (2, "login")])

    xdb = XDB(dep)
    report = xdb.submit(
        "SELECT u.name, COUNT(*) AS n FROM users u, events e "
        "WHERE u.id = e.user_id GROUP BY u.name")
    print(report.result.to_table())
    print(report.plan.describe())

Package map — see DESIGN.md for the full inventory:

* :mod:`repro.sql` — SQL front end (lexer/parser/AST/dialect renderers)
* :mod:`repro.relational` — schemas, expression compiler, logical algebra
* :mod:`repro.engine` — the single-node DBMS (storage, planner, executor,
  EXPLAIN, SQL/MED foreign tables)
* :mod:`repro.net` — simulated network and transfer accounting
* :mod:`repro.obs` — per-query observability: span tracer, metrics,
  Chrome trace / EXPLAIN ANALYZE exports
* :mod:`repro.qos` — overload robustness: admission control, query
  deadlines, cooperative cancellation, graceful degradation
* :mod:`repro.federation` — deployments of autonomous DBMSes
* :mod:`repro.connect` — DBMS connectors (metadata / costing / DDL)
* :mod:`repro.core` — **XDB**: the cross-database optimizer and the
  delegation engine
* :mod:`repro.baselines` — Garlic, Presto, and ScleraDB baselines
* :mod:`repro.workloads` — TPC-H and the pandemic scenario
* :mod:`repro.bench` — the experiment harness
"""

from repro.core.client import XDB, XDBReport
from repro.engine.database import Database
from repro.federation.deployment import Deployment
from repro.qos import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    GateConfig,
    QoSPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "XDB",
    "XDBReport",
    "Database",
    "Deployment",
    "GateConfig",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "QoSPolicy",
    "__version__",
]
