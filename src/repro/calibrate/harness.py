"""Run the micro-workload and harvest per-operator observations.

The harness is deliberately indirect: it does **not** read timings off
the physical plan.  It executes each query inside a
:class:`~repro.obs.context.QueryContext` with
``Database.instrument_execution`` enabled, then walks the *operator
spans* the engine mirrored into the trace — the same spans ``/trace``
exports — and turns each one into an :class:`Observation` pairing the
operator's measured self seconds with the cost-formula features
(driver cardinalities) the fit regresses against.  If the span export
breaks, calibration breaks: the observability spine is load-bearing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.calibrate.workload import MicroWorkload, build_workload
from repro.obs.context import QueryContext

#: Wall-seconds floor: keeps Q-error ratios finite when an operator ran
#: faster than the timer can resolve.
MIN_SECONDS = 1e-7


@dataclass
class Observation:
    """One measured operator instance from one query execution."""

    #: operator kind, normalized from the span label (``"SeqScan"``,
    #: ``"HashJoin"``, ``"DistinctOp"``, ...)
    op: str
    #: name of the workload query that produced it
    query: str
    #: cost-formula features: constant name -> driver cardinality, the
    #: same formulas as ``CostModel.node_self_cost`` but evaluated at
    #: *measured* cardinalities so the fit isolates constant error from
    #: cardinality-estimation error
    features: Dict[str, float] = field(default_factory=dict)
    #: measured self wall seconds (plus simulated transfer seconds for
    #: ForeignScan, whose cost constant models the whole fetch)
    seconds: float = MIN_SECONDS


def _span_kind(label: str) -> str:
    return label.split("[", 1)[0]


def _operator_spans(root, db_name: str) -> List[object]:
    """Every operator span for ``db_name`` under ``root``, pre-order."""
    found: List[object] = []

    def visit(span) -> None:
        if (
            span.kind == "operator"
            and span.attributes.get("db") == db_name
        ):
            found.append(span)
        for child in span.children:
            visit(child)

    visit(root)
    return found


def _span_self_seconds(span) -> float:
    """Inclusive measured seconds minus the children's inclusive."""
    inclusive = float(span.attributes.get("exec_seconds", 0.0))
    children = sum(
        float(child.attributes.get("exec_seconds", 0.0))
        for child in span.children
        if child.kind == "operator"
    )
    return max(inclusive - children, 0.0)


def _features_for(
    kind: str, rows_out: float, child_rows: List[float]
) -> Optional[Dict[str, float]]:
    """Cost-formula drivers for one operator (measured cardinalities).

    Mirrors ``CostModel.node_self_cost``; returns ``None`` for operator
    kinds the cost model does not charge per-row work to.
    """
    out = max(rows_out, 1.0)
    if kind in ("SeqScan", "ValuesScan"):
        return {"seq_scan_cost_per_row": out}
    if kind == "ForeignScan":
        return {"foreign_fetch_cost_per_row": out}
    if kind == "Filter":
        rows_in = max(child_rows[0] if child_rows else rows_out, 1.0)
        return {"cpu_tuple_cost": rows_in}
    if kind == "Project":
        return {"cpu_tuple_cost": out}
    if kind == "HashJoin":
        left = max(child_rows[0] if child_rows else 1.0, 1.0)
        right = max(
            child_rows[1] if len(child_rows) > 1 else 1.0, 1.0
        )
        return {
            "hash_build_cost_per_row": min(left, right),
            "cpu_tuple_cost": max(left, right) + out,
        }
    if kind == "NestedLoopJoin":
        left = max(child_rows[0] if child_rows else 1.0, 1.0)
        right = max(
            child_rows[1] if len(child_rows) > 1 else 1.0, 1.0
        )
        return {"cpu_tuple_cost": left * right}
    if kind == "HashAggregate":
        rows_in = max(sum(child_rows), 1.0)
        return {
            "cpu_tuple_cost": rows_in,
            "hash_build_cost_per_row": rows_in,
        }
    if kind == "Sort":
        rows_in = max(child_rows[0] if child_rows else rows_out, 1.0)
        return {"sort_cost_factor": rows_in * max(math.log2(rows_in), 1.0)}
    if kind in ("Limit", "DistinctOp", "UnionAllOp"):
        return {"cpu_tuple_cost": out}
    return None


def observe_query(
    workload: MicroWorkload, name: str, sql: str
) -> List[Observation]:
    """Execute one workload query and extract its operator observations."""
    with QueryContext(label=f"calibrate:{name}") as ctx:
        workload.local.execute(sql)
    spans = _operator_spans(ctx.root, workload.local.name)
    fdw_seconds = sum(
        record.seconds for record in ctx.transfers if record.tag == "fdw"
    )
    foreign_count = sum(
        1 for span in spans if _span_kind(span.name) == "ForeignScan"
    )
    observations: List[Observation] = []
    for span in spans:
        kind = _span_kind(span.name)
        child_rows = [
            float(child.attributes.get("rows_out", 0))
            for child in span.children
            if child.kind == "operator"
        ]
        features = _features_for(
            kind, float(span.attributes.get("rows_out", 0)), child_rows
        )
        if not features:
            continue
        seconds = _span_self_seconds(span)
        if kind == "ForeignScan" and foreign_count:
            # The fetch constant models production + wire transfer; the
            # simulated network seconds live on the context's ledger.
            seconds += fdw_seconds / foreign_count
        observations.append(
            Observation(
                op=kind,
                query=name,
                features=features,
                seconds=max(seconds, MIN_SECONDS),
            )
        )
    return observations


def run_workload(
    profile: str,
    rows: int,
    repeat: int = 3,
    execution_mode: str = "batch",
) -> List[Observation]:
    """All observations for one profile over ``repeat`` fresh runs.

    Each repeat rebuilds the workload from the same seed, so repeats
    measure timing noise rather than data drift.
    """
    observations: List[Observation] = []
    for _ in range(repeat):
        workload = build_workload(
            profile, rows=rows, execution_mode=execution_mode
        )
        workload.local.instrument_execution = True
        for name, sql in workload.queries:
            observations.extend(observe_query(workload, name, sql))
    return observations
