"""Cost-model calibration harness.

The engine profiles in :mod:`repro.engine.profiles` ship with hand-set
cost constants.  This package measures how wrong they are and fixes
them: it runs a parameterized micro-workload per engine profile with
per-operator instrumentation enabled (:mod:`repro.engine.instrument`),
reads the measured timings back off the observability spine's operator
spans, regresses the calibratable constants against the measurements,
and reports per-operator **Q-error** — ``max(est/actual, actual/est)``
— before and after.  The calibrated profile set it emits is consumed
transparently by :func:`repro.engine.profiles.load_calibrated`:
``CostModel``, EXPLAIN, and the Rule-4 annotator's connector costing
all read profiles through ``profile_for`` and pick the overlay up.

Run it with ``python -m repro.calibrate``.
"""

from repro.calibrate.fit import (
    evaluate_constants,
    fit_constants,
    q_error,
)
from repro.calibrate.harness import Observation, run_workload
from repro.calibrate.workload import MicroWorkload, build_workload

__all__ = [
    "MicroWorkload",
    "Observation",
    "build_workload",
    "evaluate_constants",
    "fit_constants",
    "q_error",
    "run_workload",
]
