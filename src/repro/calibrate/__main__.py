"""CLI: calibrate the engine profiles' cost constants.

Usage::

    PYTHONPATH=src python -m repro.calibrate \\
        --rows 40000 --repeat 3 \\
        --out benchmarks/results/BENCH_calibration.json \\
        --emit benchmarks/results/calibrated_profiles.json \\
        --check

``--check`` exits non-zero unless every profile's median Q-error
strictly improved — the CI gate.  ``--emit`` writes a calibrated
profile set loadable with
``repro.engine.profiles.load_calibrated(path)``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

from repro.calibrate.fit import (
    evaluate_constants,
    fit_constants,
    fit_intercepts,
)
from repro.calibrate.harness import run_workload
from repro.engine.profiles import (
    available_profiles,
    dump_calibrated,
    profile_base,
)


def calibrate_profile(
    name: str, rows: int, repeat: int, execution_mode: str
) -> Dict[str, object]:
    """Measure, fit, and score one profile; returns the report entry."""
    profile = profile_base(name)
    observations = run_workload(
        name, rows=rows, repeat=repeat, execution_mode=execution_mode
    )
    before = evaluate_constants(
        observations, profile.constants(), profile.calibration
    )
    fitted = fit_constants(observations, profile)
    after = evaluate_constants(
        observations, fitted, profile.calibration
    )
    # Whatever per-query time the per-row constants leave unexplained
    # becomes the per-statement startup intercept.
    intercepts = fit_intercepts(
        observations, fitted, profile, repeat=repeat
    )
    return {
        "constants_before": profile.constants(),
        "constants_after": {**fitted, **intercepts},
        "startup_fit": intercepts,
        "before": before,
        "after": after,
        "improved": after["median_q_error"] < before["median_q_error"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.calibrate",
        description="Calibrate engine-profile cost constants against "
        "measured per-operator executor timings.",
    )
    parser.add_argument(
        "--rows", type=int, default=40_000,
        help="fact-table rows in the micro-workload (default 40000)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="workload repetitions per profile (default 3)",
    )
    parser.add_argument(
        "--profiles", default=",".join(available_profiles()),
        help="comma-separated profile names (default: all)",
    )
    parser.add_argument(
        "--mode", default="batch", choices=("batch", "row"),
        help="executor mode to calibrate against (default batch)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the calibration report JSON here",
    )
    parser.add_argument(
        "--emit", default=None,
        help="write the calibrated profile set JSON here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every profile's median Q-error strictly "
        "improved",
    )
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.profiles.split(",") if n.strip()]
    report: Dict[str, object] = {
        "workload": {
            "rows": args.rows,
            "repeat": args.repeat,
            "execution_mode": args.mode,
        },
        "q_error": "max(estimated/actual, actual/estimated)",
        "profiles": {},
    }
    all_improved = True
    for name in names:
        entry = calibrate_profile(
            name, args.rows, args.repeat, args.mode
        )
        report["profiles"][name] = entry
        all_improved = all_improved and bool(entry["improved"])
        print(
            f"{name:>10}: median Q-error "
            f"{entry['before']['median_q_error']:.2f} -> "
            f"{entry['after']['median_q_error']:.2f} "
            f"({'improved' if entry['improved'] else 'NOT improved'}, "
            f"{entry['before']['observations']} observations)"
        )
    report["all_improved"] = all_improved

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    if args.emit:
        calibrated = [
            profile_base(name).with_constants(
                **report["profiles"][name]["constants_after"]
            )
            for name in names
        ]
        with open(args.emit, "w", encoding="utf-8") as handle:
            json.dump(
                dump_calibrated(calibrated), handle, indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"calibrated profiles written to {args.emit}")

    if args.check and not all_improved:
        print("FAIL: median Q-error did not strictly improve")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
