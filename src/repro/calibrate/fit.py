"""Fit cost constants to measured timings; score with Q-error.

The cost formulas are linear in the constants, so each observation
gives ``units = sum(constant * feature)`` with
``units = seconds * profile.calibration``.  Rather than a joint least
squares — which the largest operators would dominate, the wrong
objective for a *ratio* metric like Q-error — the fit solves the
constants in dependency order with per-observation ratio medians:

1. ``cpu_tuple_cost`` from the operators driven by it alone (filters,
   projections, limits, distinct, union, nested loops);
2. ``seq_scan_cost_per_row``, ``sort_cost_factor``, and
   ``foreign_fetch_cost_per_row``, each from its own operator family;
3. ``hash_build_cost_per_row`` from hash joins / aggregations after
   subtracting the already-fitted ``cpu_tuple_cost`` share.

Medians over repeats make the fit robust to scheduler noise in the
measured wall timings.
"""

from __future__ import annotations

from statistics import median
from typing import Dict, Iterable, List, Mapping

from repro.calibrate.harness import Observation
from repro.engine.profiles import CALIBRATABLE_CONSTANTS, EngineProfile

#: Smallest admissible constant: keeps fitted profiles strictly
#: positive so downstream cost comparisons never divide by zero.
CONSTANT_FLOOR = 1e-6


def q_error(estimated: float, actual: float) -> float:
    """The planner-lie metric: ``max(est/actual, actual/est)`` (>= 1)."""
    est = max(estimated, 1e-12)
    act = max(actual, 1e-12)
    return max(est / act, act / est)


def predicted_units(
    features: Mapping[str, float], constants: Mapping[str, float]
) -> float:
    return sum(
        constants.get(name, 0.0) * value
        for name, value in features.items()
    )


def _ratio_median(
    observations: Iterable[Observation],
    constant: str,
    calibration: float,
    residual_constants: Mapping[str, float],
) -> float:
    """Median of per-observation solutions for one constant.

    For each observation, subtract the share explained by the
    already-fitted ``residual_constants`` and divide what is left by
    this constant's own feature.
    """
    solutions: List[float] = []
    for obs in observations:
        feature = obs.features.get(constant, 0.0)
        if feature <= 0.0:
            continue
        explained = sum(
            residual_constants.get(name, 0.0) * value
            for name, value in obs.features.items()
            if name != constant
        )
        units = obs.seconds * calibration - explained
        solutions.append(max(units / feature, CONSTANT_FLOOR))
    if not solutions:
        return 0.0
    return median(solutions)


#: Fit order: constants whose observations depend on earlier fits last.
_FIT_PLAN = (
    # (constant, operator kinds that isolate it best)
    ("cpu_tuple_cost", ("Filter", "Project", "Limit", "DistinctOp",
                        "UnionAllOp", "NestedLoopJoin")),
    ("seq_scan_cost_per_row", ("SeqScan", "ValuesScan")),
    ("sort_cost_factor", ("Sort",)),
    ("foreign_fetch_cost_per_row", ("ForeignScan",)),
    ("hash_build_cost_per_row", ("HashJoin", "HashAggregate")),
)


def fit_constants(
    observations: List[Observation], profile: EngineProfile
) -> Dict[str, float]:
    """Calibrated constants for ``profile`` from measured observations.

    Constants with no supporting observations keep their seed values.
    """
    fitted: Dict[str, float] = {}
    for constant, kinds in _FIT_PLAN:
        subset = [obs for obs in observations if obs.op in kinds]
        value = _ratio_median(
            subset, constant, profile.calibration, fitted
        )
        if value <= 0.0:
            value = getattr(profile, constant)
        fitted[constant] = max(value, CONSTANT_FLOOR)
    assert set(fitted) == set(CALIBRATABLE_CONSTANTS)
    return fitted


def fit_intercepts(
    observations: List[Observation],
    constants: Mapping[str, float],
    profile: EngineProfile,
    repeat: int = 1,
) -> Dict[str, float]:
    """Per-query intercept fit for the per-statement startup constants.

    Reuses the per-operator span observations: group them by workload
    query, subtract the share the fitted per-row ``constants`` explain,
    and take the *median per-run leftover* as the statement startup —
    ``startup_cost`` in engine cost units and ``startup_latency`` as
    the same intercept converted to seconds, so the EXPLAIN-side and
    schedule-side representations of the fixed overhead agree.
    """
    by_query: Dict[str, List[Observation]] = {}
    for obs in observations:
        by_query.setdefault(obs.query, []).append(obs)
    runs = max(int(repeat), 1)
    intercepts: List[float] = []
    for query_obs in by_query.values():
        measured = sum(
            obs.seconds for obs in query_obs
        ) * profile.calibration
        explained = sum(
            predicted_units(obs.features, constants)
            for obs in query_obs
        )
        intercepts.append(max((measured - explained) / runs, 0.0))
    if not intercepts:
        return {
            "startup_cost": profile.startup_cost,
            "startup_latency": profile.startup_latency,
        }
    units = max(median(intercepts), CONSTANT_FLOOR)
    return {
        "startup_cost": units,
        "startup_latency": units / profile.calibration,
    }


def evaluate_constants(
    observations: List[Observation],
    constants: Mapping[str, float],
    calibration: float,
) -> Dict[str, object]:
    """Per-operator and overall Q-error of ``constants`` vs measurement."""
    per_op: Dict[str, List[float]] = {}
    for obs in observations:
        predicted = predicted_units(obs.features, constants)
        actual = obs.seconds * calibration
        per_op.setdefault(obs.op, []).append(q_error(predicted, actual))
    all_errors = [err for errors in per_op.values() for err in errors]
    return {
        "per_operator": {
            op: {
                "count": len(errors),
                "median_q_error": median(errors),
                "max_q_error": max(errors),
            }
            for op, errors in sorted(per_op.items())
        },
        "median_q_error": median(all_errors) if all_errors else 1.0,
        "max_q_error": max(all_errors) if all_errors else 1.0,
        "observations": len(all_errors),
    }
