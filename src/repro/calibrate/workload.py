"""The calibration micro-workload: small, deterministic, per-operator.

One workload instance is a two-database deployment (a local engine plus
a same-vendor remote reached through SQL/MED) loaded with synthetic
tables, and a fixed list of queries chosen so that every calibratable
cost constant is exercised by at least one operator:

* ``seq_scan_cost_per_row`` — full scans of ``fact``;
* ``cpu_tuple_cost`` — filters, projections, limits, nested loops;
* ``hash_build_cost_per_row`` — hash joins and aggregations;
* ``sort_cost_factor`` — ORDER BY over ``fact``;
* ``foreign_fetch_cost_per_row`` — ``ffact``, a foreign table served
  by the remote engine over the simulated network.

Everything is seeded: two runs with the same ``rows`` produce the same
tables, plans, and cardinalities, so measured timings are comparable
across repeats and profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.engine.database import Database
from repro.federation.deployment import Deployment
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.types import DOUBLE, INTEGER, varchar

#: Default fact-table size: large enough that per-operator wall timings
#: dominate timer overhead, small enough for CI.
DEFAULT_ROWS = 40_000

LOCAL = "L"
REMOTE = "R"


@dataclass
class MicroWorkload:
    """A wired deployment plus the calibration query list."""

    deployment: Deployment
    local: Database
    remote: Database
    #: ``(name, sql)`` pairs, executed in order against ``local``
    queries: List[Tuple[str, str]]
    rows: int


def build_workload(
    profile: str,
    rows: int = DEFAULT_ROWS,
    execution_mode: str = "batch",
    seed: int = 0xCA11B,
) -> MicroWorkload:
    """Build the micro-workload for one vendor ``profile``."""
    deployment = Deployment(
        {LOCAL: profile, REMOTE: profile},
        execution_mode=execution_mode,
    )
    local = deployment.databases[LOCAL]
    remote = deployment.databases[REMOTE]

    rng = random.Random(seed)
    dim_rows = max(rows // 40, 8)
    fact = [
        (
            i,
            rng.randrange(dim_rows),
            f"c{rng.randrange(8)}",
            rng.uniform(0.0, 500.0),
        )
        for i in range(rows)
    ]
    dim = [(i, f"label_{i:05d}") for i in range(dim_rows)]
    rfact = [
        (i, rng.uniform(0.0, 500.0)) for i in range(max(rows // 4, 16))
    ]

    local.create_table(
        "fact",
        Schema(
            [
                Field("id", INTEGER),
                Field("did", INTEGER),
                Field("cat", varchar(4)),
                Field("val", DOUBLE),
            ]
        ),
        fact,
    )
    local.create_table(
        "dim",
        Schema([Field("id", INTEGER), Field("label", varchar(12))]),
        dim,
    )
    remote.create_table(
        "rfact",
        Schema([Field("id", INTEGER), Field("val", DOUBLE)]),
        rfact,
    )
    # Declare the foreign table through the engine's own declarative
    # interface (dialect-rendered DDL), same as the delegation engine.
    ddl = ast.CreateForeignTable(
        name="ffact",
        columns=(
            ast.ColumnDef("id", INTEGER),
            ast.ColumnDef("val", DOUBLE),
        ),
        server=REMOTE,
        remote_object="rfact",
    )
    local.execute(local.dialect.render(ddl))

    queries: List[Tuple[str, str]] = [
        ("scan", "SELECT id, val FROM fact"),
        ("filter", "SELECT COUNT(*) AS n FROM fact WHERE val > 250.0"),
        ("filter_eq", "SELECT COUNT(*) AS n FROM fact WHERE cat = 'c1'"),
        (
            "join",
            "SELECT COUNT(*) AS n FROM fact, dim "
            "WHERE fact.did = dim.id",
        ),
        ("aggregate", "SELECT did, SUM(val) AS s FROM fact GROUP BY did"),
        ("sort", "SELECT id, val FROM fact ORDER BY val"),
        ("distinct", "SELECT DISTINCT did FROM fact"),
        ("limit", f"SELECT id, val FROM fact LIMIT {max(rows // 10, 1)}"),
        (
            "union",
            "SELECT id FROM fact UNION ALL SELECT id FROM dim",
        ),
        ("foreign", "SELECT id, val FROM ffact"),
        (
            "foreign_filter",
            "SELECT COUNT(*) AS n FROM ffact WHERE val > 100.0",
        ),
    ]
    return MicroWorkload(
        deployment=deployment,
        local=local,
        remote=remote,
        queries=queries,
        rows=rows,
    )
