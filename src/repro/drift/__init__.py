"""Schema-drift resilience: fingerprints, mutations, ledger, reaper.

The in-situ premise (the paper's §I) means remote engines stay
autonomous: their schemas can change — and their garbage can linger —
underneath the federation.  This package holds the client-side
machinery that makes both survivable:

* :mod:`~repro.drift.fingerprint` — schema fingerprints + field diffs
  backing the global catalog's verification;
* :mod:`~repro.drift.mutate` — applies
  :class:`~repro.faults.policy.SchemaDrift` faults to a live engine;
* :mod:`~repro.drift.ledger` — the per-namespace record of every
  delegated DDL object and its epoch;
* :mod:`~repro.drift.reaper` — the epoch-fenced orphan sweep;
* :mod:`~repro.drift.schedule` — seeded between-queries drift driver
  for benchmarks and chaos tests.
"""

from repro.drift.fingerprint import schema_diff, schema_fingerprint
from repro.drift.ledger import LedgerEntry, ObjectLedger
from repro.drift.mutate import DRIFT_KINDS, apply_drift, drifted_schema
from repro.drift.reaper import OrphanReaper, ReapReport
from repro.drift.schedule import DriftSchedule

__all__ = [
    "DRIFT_KINDS",
    "DriftSchedule",
    "LedgerEntry",
    "ObjectLedger",
    "OrphanReaper",
    "ReapReport",
    "apply_drift",
    "drifted_schema",
    "schema_diff",
    "schema_fingerprint",
]
