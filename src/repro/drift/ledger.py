"""The delegated-object ledger: every DDL object one client ever made.

The delegation engine creates short-lived ``xf_/xm_/xv_`` objects on
autonomous engines; rollbacks and cleanups drop them — except when an
engine is down, a DROP exhausts its retry budget, or a deadline's
grace window runs out, in which case the objects *leak*.  The ledger
is the client's durable memory of everything it created, so leaks are
a bounded, reconcilable debt instead of silent garbage:

* every created object is recorded under the **epoch** (the delegation
  counter value) of the cascade that created it;
* an epoch is **live** while its deployment may still be executed
  (prepared queries keep theirs live across re-executions) and
  **closed** once the deployment is rolled back or retired;
* the reaper (:mod:`repro.drift.reaper`) drops engine-held objects
  from closed epochs and never touches live ones — the fencing
  invariant that makes sweeping safe while queries run.

With a ``path`` the ledger persists as JSON after every mutation, so a
restarted client can still reap what a crashed one leaked.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

#: Entry lifecycle states.
STATUS_LIVE = "live"
STATUS_DROPPED = "dropped"
STATUS_LEAKED = "leaked"


@dataclass(frozen=True)
class LedgerEntry:
    """One delegated DDL object and what became of it."""

    db: str
    kind: str
    name: str
    epoch: int
    status: str = STATUS_LIVE

    @property
    def key(self) -> Tuple[str, str]:
        return (self.db, self.name.lower())


class ObjectLedger:
    """Per-namespace record of delegated objects, keyed by epoch."""

    def __init__(self, namespace: str = "", path: Optional[str] = None):
        self.namespace = namespace
        self._path = path
        self._lock = threading.Lock()
        #: (db, name_lower) -> entry
        self._entries: Dict[Tuple[str, str], LedgerEntry] = {}
        #: epochs whose deployment may still execute
        self._live_epochs: Set[int] = set()
        if path and os.path.exists(path):
            self._load(path)

    # -- epochs ---------------------------------------------------------

    def open_epoch(self, epoch: int) -> int:
        with self._lock:
            self._live_epochs.add(epoch)
        self._persist()
        return epoch

    def close_epoch(self, epoch: int) -> None:
        """Retire ``epoch``: its undropped objects become reapable."""
        with self._lock:
            self._live_epochs.discard(epoch)
        self._persist()

    def live_epochs(self) -> Set[int]:
        with self._lock:
            return set(self._live_epochs)

    def is_live(self, epoch: int) -> bool:
        with self._lock:
            return epoch in self._live_epochs

    # -- recording ------------------------------------------------------

    def record(self, db: str, kind: str, name: str, epoch: int) -> None:
        with self._lock:
            entry = LedgerEntry(db=db, kind=kind, name=name, epoch=epoch)
            self._entries[entry.key] = entry
        self._persist()

    def mark_dropped(self, db: str, name: str) -> None:
        self._mark(db, name, STATUS_DROPPED)

    def mark_leaked(self, db: str, name: str) -> None:
        self._mark(db, name, STATUS_LEAKED)

    def _mark(self, db: str, name: str, status: str) -> None:
        with self._lock:
            key = (db, name.lower())
            entry = self._entries.get(key)
            if entry is not None and entry.status != status:
                self._entries[key] = replace(entry, status=status)
        self._persist()

    # -- queries --------------------------------------------------------

    def entry_for(self, db: str, name: str) -> Optional[LedgerEntry]:
        with self._lock:
            return self._entries.get((db, name.lower()))

    def entries(self) -> List[LedgerEntry]:
        with self._lock:
            return list(self._entries.values())

    def leaked_entries(self) -> List[LedgerEntry]:
        return [e for e in self.entries() if e.status == STATUS_LEAKED]

    def leaked_count(self) -> int:
        """Cumulative outstanding leaked objects (reaping pays it down)."""
        return len(self.leaked_entries())

    def max_epoch(self) -> int:
        """Highest epoch ever recorded — a restarted client resumes its
        delegation counter above this so new object names can never
        collide with a crashed predecessor's leaked ones."""
        with self._lock:
            known = [e.epoch for e in self._entries.values()]
            known.extend(self._live_epochs)
            return max(known, default=0)

    def owns(self, name: str) -> bool:
        """Whether ``name`` matches this ledger's delegated-object shape.

        Delegated objects are ``x{f,m,v}_<namespace><epoch>_<task>``;
        the namespace check keeps concurrent clients' reapers off each
        other's objects.
        """
        lowered = name.lower()
        if not lowered.startswith(("xf_", "xm_", "xv_")):
            return False
        return lowered[3:].startswith(self.namespace.lower())

    def epoch_of_name(self, name: str) -> Optional[int]:
        """Parse the creating epoch out of a delegated object name."""
        if not self.owns(name):
            return None
        stem = name[3 + len(self.namespace):]
        digits = stem.split("_", 1)[0]
        try:
            return int(digits)
        except ValueError:
            return None

    # -- persistence ----------------------------------------------------

    def _persist(self) -> None:
        if not self._path:
            return
        with self._lock:
            payload = {
                "namespace": self.namespace,
                "live_epochs": sorted(self._live_epochs),
                "entries": [
                    {
                        "db": e.db,
                        "kind": e.kind,
                        "name": e.name,
                        "epoch": e.epoch,
                        "status": e.status,
                    }
                    for e in self._entries.values()
                ],
            }
        tmp = f"{self._path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._path)

    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        self._live_epochs = set(payload.get("live_epochs", []))
        for raw in payload.get("entries", []):
            entry = LedgerEntry(
                db=raw["db"],
                kind=raw["kind"],
                name=raw["name"],
                epoch=int(raw["epoch"]),
                status=raw.get("status", STATUS_LIVE),
            )
            self._entries[entry.key] = entry
