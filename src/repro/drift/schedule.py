"""Seeded between-queries drift schedules for benchmarks and chaos CI.

A :class:`DriftSchedule` rolls a die between query submissions and,
at the configured rate, applies one random schema mutation to a random
stored table of the federation — the workload-level counterpart of the
per-call :class:`~repro.faults.policy.SchemaDrift` fault.  Column
names in ``protected_columns`` (the ones the workload's queries
reference) are never dropped or renamed, so a schedule can be tuned
for recoverable drift; type *widening* is allowed anywhere.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set

from repro.drift.mutate import apply_drift
from repro.engine.catalog import BaseTable
from repro.faults.policy import SchemaDrift
from repro.sql.types import TypeKind

#: Default drift mix: ≥4 kinds, all recoverable under replanning when
#: ``protected_columns`` covers the workload's referenced columns.
DEFAULT_KINDS = (
    "add_column",
    "rename_column",
    "drop_column",
    "widen_column",
)


class DriftSchedule:
    """Applies seeded random drifts between queries; records history."""

    def __init__(
        self,
        deployment,
        seed: int = 0,
        rate: float = 0.1,
        kinds: Sequence[str] = DEFAULT_KINDS,
        protected_columns: Optional[Iterable[str]] = None,
        tables: Optional[Iterable[str]] = None,
    ):
        self._deployment = deployment
        self._rng = random.Random(seed)
        self.rate = rate
        self.kinds = tuple(kinds)
        self._protected: Set[str] = {
            name.lower() for name in (protected_columns or ())
        }
        self._tables = (
            {name.lower() for name in tables} if tables is not None else None
        )
        self._counter = 0
        #: every drift applied, in order
        self.applied: List[SchemaDrift] = []

    # -- candidates -----------------------------------------------------

    def _candidates(self) -> List[tuple]:
        """(db, BaseTable) pairs eligible for a drift."""
        out = []
        for db_name in sorted(self._deployment.databases):
            database = self._deployment.database(db_name)
            for table in database.catalog.tables():
                if table.temporary:
                    continue
                name = table.name.lower()
                if name.startswith(("xf_", "xm_", "xv_")):
                    continue
                if self._tables is not None and name not in self._tables:
                    continue
                out.append((db_name, table))
        return out

    def _free_columns(self, table: BaseTable) -> List[str]:
        return [
            field.name
            for field in table.schema
            if field.name.lower() not in self._protected
        ]

    def _build_drift(self) -> Optional[SchemaDrift]:
        candidates = self._candidates()
        if not candidates:
            return None
        db, table = self._rng.choice(candidates)
        for kind in self._rng.sample(list(self.kinds), len(self.kinds)):
            if kind == "add_column":
                self._counter += 1
                return SchemaDrift(
                    db=db,
                    table=table.name,
                    kind="add_column",
                    column=f"drift_{self._counter}",
                    new_type=("INTEGER",),
                )
            if kind in ("rename_column", "drop_column"):
                free = self._free_columns(table)
                if not free:
                    continue
                column = self._rng.choice(free)
                if kind == "drop_column":
                    return SchemaDrift(
                        db=db,
                        table=table.name,
                        kind="drop_column",
                        column=column,
                    )
                self._counter += 1
                return SchemaDrift(
                    db=db,
                    table=table.name,
                    kind="rename_column",
                    column=column,
                    new_name=f"{column}_v{self._counter}",
                )
            if kind == "widen_column":
                narrow = [
                    field.name
                    for field in table.schema
                    if field.type.kind is TypeKind.INTEGER
                ]
                if not narrow:
                    continue
                return SchemaDrift(
                    db=db,
                    table=table.name,
                    kind="retype_column",
                    column=self._rng.choice(narrow),
                    new_type=("BIGINT",),
                )
        return None

    # -- the driver -----------------------------------------------------

    def maybe_drift(self) -> Optional[SchemaDrift]:
        """Roll the die; apply and return a drift (or None) for this gap."""
        if self._rng.random() >= self.rate:
            return None
        drift = self._build_drift()
        if drift is None:
            return None
        apply_drift(self._deployment.database(drift.db), drift)
        self.applied.append(drift)
        return drift
