"""The epoch-fenced orphan reaper.

Reconciles what each engine actually holds against the ledger and
drops **orphans**: delegated objects whose creating epoch is closed
(their deployment was rolled back or retired) or that the ledger
already wrote off as leaked.  Two fencing rules make the sweep safe to
run while queries execute:

1. objects from a **live** epoch are never dropped — a prepared query
   mid-flight keeps its cascade;
2. objects whose name does not carry this client's namespace (or whose
   epoch cannot be attributed at all) are left alone — another
   client's reaper owns them.

Sweeps are *deferred*: a breaker closing (half-open probe success)
marks the engine pending via :meth:`note_recovery`, and the next
submission — or an explicit ``XDB.reap()`` — performs the guarded
calls.  Running engine calls from inside the health registry's
callback would recurse into the very guarded path that fired it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.drift.ledger import ObjectLedger
from repro.errors import ReproError
from repro.sql import ast


@dataclass
class ReapReport:
    """What one reaper sweep did, per fencing outcome."""

    #: (db, kind, name) orphans dropped from the engines
    dropped: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (db, kind, name) kept because their epoch is still live
    kept_live: List[Tuple[str, str, str]] = field(default_factory=list)
    #: engines the sweep could not reach (still down / breaker open)
    unreachable: List[str] = field(default_factory=list)
    #: (db, kind, name) whose DROP failed (stay leaked for next sweep)
    failed: List[Tuple[str, str, str]] = field(default_factory=list)
    #: ledger entries reconciled dropped because the engine no longer
    #: holds them (e.g. someone cleaned up manually)
    reconciled: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def orphans_dropped(self) -> int:
        return len(self.dropped)

    def describe(self) -> str:
        parts = [f"{len(self.dropped)} orphan(s) dropped"]
        if self.kept_live:
            parts.append(f"{len(self.kept_live)} live kept")
        if self.failed:
            parts.append(f"{len(self.failed)} drop(s) failed")
        if self.unreachable:
            parts.append(f"unreachable: {sorted(self.unreachable)}")
        if self.reconciled:
            parts.append(f"{len(self.reconciled)} reconciled")
        return ", ".join(parts)


class OrphanReaper:
    """Sweeps delegated-object orphans off recovered engines."""

    def __init__(self, ledger: ObjectLedger, connectors, health=None):
        self._ledger = ledger
        self._connectors = dict(connectors)
        self._health = health
        self._lock = threading.Lock()
        #: engines whose breaker closed since the last sweep
        self._pending: Set[str] = set()
        #: lifetime counter (observability)
        self.orphans_reaped = 0

    # -- recovery listener (deferred trigger) ---------------------------

    def note_recovery(self, db: str) -> None:
        """Mark ``db`` for sweeping at the next opportunity.

        Called by the health registry when a breaker transitions back
        to CLOSED (half-open probe success).  Only records intent — no
        engine calls happen here.
        """
        if db in self._connectors:
            with self._lock:
                self._pending.add(db)

    def pending(self) -> Set[str]:
        with self._lock:
            return set(self._pending)

    def sweep_pending(self) -> Optional[ReapReport]:
        """Sweep engines marked by :meth:`note_recovery`, if any."""
        with self._lock:
            dbs = sorted(self._pending)
            self._pending.clear()
        if not dbs:
            return None
        return self.sweep(dbs)

    # -- the sweep ------------------------------------------------------

    def sweep(self, dbs=None) -> ReapReport:
        """Reconcile engine-held objects against the ledger.

        Best-effort per engine: an unreachable engine is skipped (and
        stays pending for the next recovery), a failing DROP leaves
        the entry leaked for the next sweep.  Never raises for engine
        trouble — reaping is maintenance, not a query.
        """
        report = ReapReport()
        names = sorted(dbs) if dbs is not None else sorted(self._connectors)
        live_epochs = self._ledger.live_epochs()
        for db in names:
            connector = self._connectors.get(db)
            if connector is None:
                continue
            try:
                held = connector.list_objects(("xf_", "xm_", "xv_"))
            except ReproError:
                report.unreachable.append(db)
                with self._lock:
                    self._pending.add(db)
                continue
            held_names = {name.lower() for _, name in held}
            for kind, name in sorted(held):
                self._reconcile_object(
                    db, kind, name, connector, live_epochs, report
                )
            # Ledger-side reconcile: leaked entries whose object is no
            # longer on the (reachable) engine were cleaned up out of
            # band — close them out so leaked_count() reflects reality.
            for entry in self._ledger.leaked_entries():
                if entry.db == db and entry.name.lower() not in held_names:
                    self._ledger.mark_dropped(entry.db, entry.name)
                    report.reconciled.append(
                        (entry.db, entry.kind, entry.name)
                    )
        return report

    def _reconcile_object(
        self, db, kind, name, connector, live_epochs, report
    ) -> None:
        entry = self._ledger.entry_for(db, name)
        if entry is not None:
            epoch: Optional[int] = entry.epoch
        else:
            if not self._ledger.owns(name):
                return  # another client's object — not ours to judge
            epoch = self._ledger.epoch_of_name(name)
            if epoch is None:
                return  # cannot attribute an epoch: fence, don't drop
        if epoch in live_epochs:
            report.kept_live.append((db, kind, name))
            return
        try:
            connector.execute_ddl(
                ast.DropObject(kind=kind, name=name, if_exists=True)
            )
        except ReproError:
            report.failed.append((db, kind, name))
            self._ledger.mark_leaked(db, name)
            return
        self._ledger.mark_dropped(db, name)
        report.dropped.append((db, kind, name))
        self.orphans_reaped += 1

    # -- audit (no drops) ----------------------------------------------

    def audit(self, dbs=None) -> Dict[str, List[Tuple[str, str]]]:
        """Orphans currently held per engine, without dropping any.

        Benchmarks use this to plot orphan-count-over-time curves;
        unreachable engines are simply absent from the result.
        """
        orphans: Dict[str, List[Tuple[str, str]]] = {}
        names = sorted(dbs) if dbs is not None else sorted(self._connectors)
        live_epochs = self._ledger.live_epochs()
        for db in names:
            connector = self._connectors.get(db)
            if connector is None:
                continue
            try:
                held = connector.list_objects(("xf_", "xm_", "xv_"))
            except ReproError:
                continue
            found: List[Tuple[str, str]] = []
            for kind, name in sorted(held):
                entry = self._ledger.entry_for(db, name)
                if entry is not None:
                    epoch: Optional[int] = entry.epoch
                elif self._ledger.owns(name):
                    epoch = self._ledger.epoch_of_name(name)
                else:
                    continue
                if epoch is None or epoch in live_epochs:
                    continue
                found.append((kind, name))
            if found:
                orphans[db] = found
        return orphans
