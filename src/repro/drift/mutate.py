"""Apply a :class:`~repro.faults.policy.SchemaDrift` to a live engine.

Drift mutations act on the *engine side* — they rewrite a stored
table's schema and rows in place, exactly as an autonomous DBA's DDL
would, without telling the federation anything.  The global catalog
only learns about the change through fingerprint verification or a
schema-shaped delegation failure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.catalog import BaseTable
from repro.errors import CatalogError
from repro.relational.schema import Field, Schema
from repro.sql.types import SQLType, TypeKind, type_from_name

#: Drift kinds :func:`apply_drift` understands.
DRIFT_KINDS = (
    "add_column",
    "drop_column",
    "rename_column",
    "retype_column",
    "drop_table",
)


def type_from_spec(spec) -> SQLType:
    """Build a type from a JSON-able ``["NAME", *args]`` spec."""
    if isinstance(spec, SQLType):
        return spec
    if isinstance(spec, str):
        return type_from_name(spec)
    return type_from_name(spec[0], *spec[1:])


def _coerce(value, target: SQLType):
    """Best-effort value coercion for ``retype_column`` drifts."""
    if value is None:
        return None
    if target.kind in (TypeKind.VARCHAR, TypeKind.CHAR):
        text = str(value)
        if target.length is not None:
            text = text[: target.length]
        return text
    if target.kind in (TypeKind.INTEGER, TypeKind.BIGINT):
        try:
            return int(float(value))
        except (TypeError, ValueError):
            return None
    if target.kind in (TypeKind.DOUBLE, TypeKind.DECIMAL):
        try:
            return float(value)
        except (TypeError, ValueError):
            return None
    return value


def apply_drift(database, drift) -> None:
    """Mutate ``database``'s live schema per ``drift`` (see DRIFT_KINDS).

    ``database`` is a :class:`repro.engine.database.Database`;
    ``drift`` any object with the :class:`~repro.faults.policy.
    SchemaDrift` fields.  Raises :class:`CatalogError` when the drift
    does not apply (unknown table/column) — a mis-specified fault
    schedule should fail loudly, not silently skip.
    """
    catalog = database.catalog
    table = catalog.get(drift.table)
    if not isinstance(table, BaseTable):
        raise CatalogError(
            f"drift target {drift.table!r} is not a stored table on "
            f"{database.name!r}"
        )

    if drift.kind == "drop_table":
        catalog.drop(table.name, "TABLE")
        return

    fields: List[Field] = list(table.schema)
    names = [f.name.lower() for f in fields]

    def column_index() -> int:
        if drift.column is None or drift.column.lower() not in names:
            raise CatalogError(
                f"drift column {drift.column!r} not in "
                f"{database.name}.{table.name}"
            )
        return names.index(drift.column.lower())

    if drift.kind == "add_column":
        new_type = (
            type_from_spec(drift.new_type)
            if drift.new_type is not None
            else type_from_name("INTEGER")
        )
        fields.append(Field(drift.column or "drifted", new_type))
        rows = [tuple(row) + (None,) for row in table.rows]
    elif drift.kind == "drop_column":
        index = column_index()
        del fields[index]
        rows = [
            tuple(v for i, v in enumerate(row) if i != index)
            for row in table.rows
        ]
    elif drift.kind == "rename_column":
        index = column_index()
        if not drift.new_name:
            raise CatalogError("rename_column drift needs new_name")
        fields[index] = fields[index].renamed(drift.new_name)
        rows = table.rows
    elif drift.kind == "retype_column":
        index = column_index()
        if drift.new_type is None:
            raise CatalogError("retype_column drift needs new_type")
        new_type = type_from_spec(drift.new_type)
        fields[index] = Field(fields[index].name, new_type)
        rows = [
            tuple(
                _coerce(v, new_type) if i == index else v
                for i, v in enumerate(row)
            )
            for row in table.rows
        ]
    else:
        raise CatalogError(f"unknown drift kind {drift.kind!r}")

    table.schema = Schema(fields).unqualified()
    table.rows[:] = [tuple(row) for row in rows]
    table.invalidate_stats()


def drifted_schema(schema: Schema, drift) -> Optional[Schema]:
    """What ``schema`` looks like after ``drift`` (None for drop_table)."""
    probe = BaseTable("_probe", schema, rows=[])

    class _Catalog:
        def get(self, name):
            return probe

        def drop(self, name, kind=None):
            return None

    class _Database:
        name = "_probe"
        catalog = _Catalog()

    if drift.kind == "drop_table":
        return None
    apply_drift(_Database(), drift)
    return probe.schema
