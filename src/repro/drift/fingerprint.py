"""Schema fingerprints and field-level diffs.

A fingerprint condenses one table's column names/types plus the
catalog's stats epoch for that table into a short stable hash.  The
global catalog records a fingerprint per (db, table) at refresh time;
verification recomputes it from the engine's *live* schema under the
same epoch, so a mismatch is exactly a schema change (the epoch term
folds the catalog's refresh generation into the identity without
hiding drift behind it).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from repro.relational.schema import Schema


def schema_fingerprint(schema: Schema, stats_epoch: int = 0) -> str:
    """Stable hash of column names/types + the catalog's stats epoch."""
    columns = ",".join(
        f"{field.name.lower()}:{field.type}" for field in schema
    )
    payload = f"{columns}|epoch={stats_epoch}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def schema_diff(
    expected: Schema, actual: Optional[Schema]
) -> Tuple[List[str], List[str], List[str], bool]:
    """Field-level diff: ``(added, removed, retyped, dropped)``.

    ``added``/``removed`` are column names (a rename appears as one of
    each); ``retyped`` entries read ``"col: old -> new"``; ``dropped``
    is True when the live table is gone entirely.
    """
    if actual is None:
        return [], [field.name for field in expected], [], True
    expected_types = {f.name.lower(): f.type for f in expected}
    actual_types = {f.name.lower(): f.type for f in actual}
    added = [
        field.name
        for field in actual
        if field.name.lower() not in expected_types
    ]
    removed = [
        field.name
        for field in expected
        if field.name.lower() not in actual_types
    ]
    retyped = [
        f"{field.name}: {expected_types[field.name.lower()]}"
        f" -> {actual_types[field.name.lower()]}"
        for field in expected
        if field.name.lower() in actual_types
        and actual_types[field.name.lower()]
        != expected_types[field.name.lower()]
    ]
    return added, removed, retyped, False
