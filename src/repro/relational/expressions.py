"""Compilation of AST expressions into Python closures.

``compile_expression`` binds an :class:`repro.sql.ast.Expression` against
a :class:`repro.relational.schema.Schema` and returns a
:class:`CompiledExpression`: a zero-allocation callable over row tuples
plus the inferred output type.  SQL three-valued logic is implemented
throughout (``None`` is SQL NULL and propagates per the standard).

Aggregate calls must be rewritten away before compilation (the plan
builder replaces them with references to aggregate output columns);
encountering one here is a binding error.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import BindError, ExecutionError, TypeCheckError
from repro.sql import ast
from repro.sql.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SQLType,
    TypeKind,
    common_supertype,
    comparable,
    type_of_value,
    varchar,
)

RowFn = Callable[[tuple], object]


@dataclass(frozen=True)
class CompiledExpression:
    """A bound, executable expression: ``fn(row) -> value`` plus type."""

    fn: RowFn
    type: SQLType

    def __call__(self, row: tuple) -> object:
        return self.fn(row)


# ---------------------------------------------------------------------------
# three-valued logic primitives
# ---------------------------------------------------------------------------


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene AND: False dominates, None is 'unknown'."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene OR: True dominates, None is 'unknown'."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    """Kleene NOT: unknown stays unknown."""
    return None if value is None else not value


_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: Dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
}


def add_months(value: datetime.date, months: int) -> datetime.date:
    """Date plus a month interval, clamping the day like SQL engines do."""
    month_index = value.year * 12 + (value.month - 1) + months
    year, month = divmod(month_index, 12)
    month += 1
    day = value.day
    while day > 28:
        try:
            return datetime.date(year, month, day)
        except ValueError:
            day -= 1
    return datetime.date(year, month, day)


def shift_date(value: datetime.date, amount: int, unit: str) -> datetime.date:
    """Date plus ``amount`` DAY/MONTH/YEAR."""
    if unit == "DAY":
        return value + datetime.timedelta(days=amount)
    if unit == "MONTH":
        return add_months(value, amount)
    if unit == "YEAR":
        return add_months(value, amount * 12)
    raise ExecutionError(f"unsupported interval unit {unit!r}")


_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def like_regex(pattern: str) -> "re.Pattern[str]":
    """The compiled (and cached) regex implementing a LIKE pattern."""
    regex = _LIKE_CACHE.get(pattern)
    if regex is None:
        escaped = re.escape(pattern).replace("%", ".*").replace("_", ".")
        regex = re.compile(f"^{escaped}$", re.DOTALL)
        if len(_LIKE_CACHE) < 4096:
            _LIKE_CACHE[pattern] = regex
    return regex


def like_matches(value: Optional[str], pattern: Optional[str]) -> Optional[bool]:
    """SQL LIKE with ``%`` and ``_`` wildcards; NULL-propagating."""
    if value is None or pattern is None:
        return None
    return like_regex(pattern).match(value) is not None


# ---------------------------------------------------------------------------
# scalar function library
# ---------------------------------------------------------------------------


def _fn_upper(args: List[object]) -> object:
    (value,) = args
    return None if value is None else str(value).upper()


def _fn_lower(args: List[object]) -> object:
    (value,) = args
    return None if value is None else str(value).lower()


def _fn_length(args: List[object]) -> object:
    (value,) = args
    return None if value is None else len(str(value))


def _fn_abs(args: List[object]) -> object:
    (value,) = args
    return None if value is None else abs(value)


def _fn_round(args: List[object]) -> object:
    value = args[0]
    digits = args[1] if len(args) > 1 else 0
    if value is None or digits is None:
        return None
    return round(float(value), int(digits))


def _fn_coalesce(args: List[object]) -> object:
    for value in args:
        if value is not None:
            return value
    return None


def _fn_substr(args: List[object]) -> object:
    value = args[0]
    if value is None or args[1] is None:
        return None
    start = int(args[1]) - 1  # SQL is 1-based
    if len(args) > 2:
        if args[2] is None:
            return None
        return str(value)[start : start + int(args[2])]
    return str(value)[start:]


def _fn_concat(args: List[object]) -> object:
    if any(value is None for value in args):
        return None
    return "".join(str(value) for value in args)


@dataclass(frozen=True)
class _ScalarFunction:
    impl: Callable[[List[object]], object]
    arity_min: int
    arity_max: int
    result_type: Callable[[List[SQLType]], SQLType]


_SCALAR_FUNCTIONS: Dict[str, _ScalarFunction] = {
    "UPPER": _ScalarFunction(_fn_upper, 1, 1, lambda ts: varchar()),
    "LOWER": _ScalarFunction(_fn_lower, 1, 1, lambda ts: varchar()),
    "LENGTH": _ScalarFunction(_fn_length, 1, 1, lambda ts: INTEGER),
    "ABS": _ScalarFunction(_fn_abs, 1, 1, lambda ts: ts[0]),
    "ROUND": _ScalarFunction(_fn_round, 1, 2, lambda ts: DOUBLE),
    "COALESCE": _ScalarFunction(
        _fn_coalesce,
        1,
        99,
        lambda ts: _common_of_all(ts),
    ),
    "SUBSTR": _ScalarFunction(_fn_substr, 2, 3, lambda ts: varchar()),
    "SUBSTRING": _ScalarFunction(_fn_substr, 2, 3, lambda ts: varchar()),
    "CONCAT": _ScalarFunction(_fn_concat, 1, 99, lambda ts: varchar()),
}


def _common_of_all(types: List[SQLType]) -> SQLType:
    result = types[0]
    for candidate in types[1:]:
        result = common_supertype(result, candidate)
    return result


def is_scalar_function(name: str) -> bool:
    """Whether ``name`` is a supported (non-aggregate) scalar function."""
    return name.upper() in _SCALAR_FUNCTIONS


def scalar_function(name: str) -> Optional[_ScalarFunction]:
    """Look up a scalar function entry (the kernel compiler's hook)."""
    return _SCALAR_FUNCTIONS.get(name.upper())


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


def compile_expression(
    expr: ast.Expression, schema
) -> CompiledExpression:
    """Bind and compile ``expr`` against ``schema``."""
    return _Compiler(schema).compile(expr)


def compile_predicate(expr: ast.Expression, schema) -> RowFn:
    """Compile a predicate: returns ``fn(row) -> bool`` (NULL counts False)."""
    compiled = compile_expression(expr, schema)
    if compiled.type.kind not in (TypeKind.BOOLEAN, TypeKind.NULL):
        raise TypeCheckError(
            f"predicate must be boolean, got {compiled.type}"
        )
    inner = compiled.fn
    return lambda row: inner(row) is True


class _Compiler:
    """Single-schema expression compiler (one instance per plan node)."""

    def __init__(self, schema):
        self._schema = schema

    def compile(self, expr: ast.Expression) -> CompiledExpression:
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise BindError(
                f"cannot compile expression node {type(expr).__name__}"
            )
        return method(expr)

    # -- leaves ---------------------------------------------------------

    def _compile_ColumnRef(self, expr: ast.ColumnRef) -> CompiledExpression:
        index = self._schema.resolve(expr.name, expr.table)
        field_type = self._schema[index].type
        return CompiledExpression(lambda row: row[index], field_type)

    def _compile_Literal(self, expr: ast.Literal) -> CompiledExpression:
        value = expr.value
        return CompiledExpression(lambda row: value, type_of_value(value))

    def _compile_IntervalLiteral(self, expr) -> CompiledExpression:
        raise BindError(
            "interval literals are only valid as date +/- INTERVAL operands"
        )

    def _compile_Star(self, expr: ast.Star) -> CompiledExpression:
        raise BindError("'*' is only valid in a select list or COUNT(*)")

    # -- operators --------------------------------------------------------

    def _compile_BinaryOp(self, expr: ast.BinaryOp) -> CompiledExpression:
        if expr.op in ("AND", "OR"):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            combine = sql_and if expr.op == "AND" else sql_or
            lf, rf = left.fn, right.fn
            return CompiledExpression(
                lambda row: combine(lf(row), rf(row)), BOOLEAN
            )

        if expr.op in _COMPARATORS:
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if not comparable(left.type, right.type):
                raise TypeCheckError(
                    f"cannot compare {left.type} {expr.op} {right.type}"
                )
            compare = _COMPARATORS[expr.op]
            lf, rf = left.fn, right.fn

            def compare_fn(row, lf=lf, rf=rf, compare=compare):
                lv = lf(row)
                if lv is None:
                    return None
                rv = rf(row)
                if rv is None:
                    return None
                return compare(lv, rv)

            return CompiledExpression(compare_fn, BOOLEAN)

        if expr.op == "||":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            lf, rf = left.fn, right.fn

            def concat_fn(row):
                lv, rv = lf(row), rf(row)
                if lv is None or rv is None:
                    return None
                return str(lv) + str(rv)

            return CompiledExpression(concat_fn, varchar())

        if expr.op in ("+", "-") and isinstance(
            expr.right, ast.IntervalLiteral
        ):
            operand = self.compile(expr.left)
            if operand.type.kind is not TypeKind.DATE:
                raise TypeCheckError(
                    f"INTERVAL arithmetic requires a DATE, got {operand.type}"
                )
            amount = expr.right.amount
            if expr.op == "-":
                amount = -amount
            unit = expr.right.unit
            inner = operand.fn

            def interval_fn(row):
                value = inner(row)
                if value is None:
                    return None
                return shift_date(value, amount, unit)

            return CompiledExpression(interval_fn, DATE)

        if expr.op in _ARITHMETIC or expr.op == "/":
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if not (left.type.is_numeric and right.type.is_numeric):
                raise TypeCheckError(
                    f"arithmetic {expr.op} requires numeric operands, got "
                    f"{left.type} and {right.type}"
                )
            lf, rf = left.fn, right.fn
            if expr.op == "/":

                def divide_fn(row):
                    lv = lf(row)
                    if lv is None:
                        return None
                    rv = rf(row)
                    if rv is None:
                        return None
                    if rv == 0:
                        raise ExecutionError("division by zero")
                    return lv / rv

                return CompiledExpression(divide_fn, DOUBLE)

            operate = _ARITHMETIC[expr.op]

            def arith_fn(row, operate=operate):
                lv = lf(row)
                if lv is None:
                    return None
                rv = rf(row)
                if rv is None:
                    return None
                return operate(lv, rv)

            return CompiledExpression(
                arith_fn, common_supertype(left.type, right.type)
            )

        raise BindError(f"unsupported binary operator {expr.op!r}")

    def _compile_UnaryOp(self, expr: ast.UnaryOp) -> CompiledExpression:
        operand = self.compile(expr.operand)
        inner = operand.fn
        if expr.op == "NOT":
            return CompiledExpression(lambda row: sql_not(inner(row)), BOOLEAN)
        if expr.op == "-":
            if not operand.type.is_numeric:
                raise TypeCheckError(
                    f"unary minus requires a numeric operand, got {operand.type}"
                )

            def negate_fn(row):
                value = inner(row)
                return None if value is None else -value

            return CompiledExpression(negate_fn, operand.type)
        raise BindError(f"unsupported unary operator {expr.op!r}")

    def _compile_IsNull(self, expr: ast.IsNull) -> CompiledExpression:
        inner = self.compile(expr.operand).fn
        if expr.negated:
            return CompiledExpression(
                lambda row: inner(row) is not None, BOOLEAN
            )
        return CompiledExpression(lambda row: inner(row) is None, BOOLEAN)

    def _compile_Between(self, expr: ast.Between) -> CompiledExpression:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        for bound in (low, high):
            if not comparable(operand.type, bound.type):
                raise TypeCheckError(
                    f"BETWEEN bounds must be comparable with {operand.type}"
                )
        of, lf, hf = operand.fn, low.fn, high.fn
        negated = expr.negated

        def between_fn(row):
            value = of(row)
            if value is None:
                return None
            lo, hi = lf(row), hf(row)
            if lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return not result if negated else result

        return CompiledExpression(between_fn, BOOLEAN)

    def _compile_InList(self, expr: ast.InList) -> CompiledExpression:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        for item in items:
            if not comparable(operand.type, item.type):
                raise TypeCheckError(
                    f"IN list item type {item.type} is not comparable "
                    f"with {operand.type}"
                )
        of = operand.fn
        item_fns = [item.fn for item in items]
        negated = expr.negated

        # Fast path: all-literal IN lists become a set membership test.
        if all(isinstance(item, ast.Literal) for item in expr.items):
            values = {item.value for item in expr.items}  # type: ignore[union-attr]
            has_null = None in values
            values.discard(None)

            def in_set_fn(row):
                value = of(row)
                if value is None:
                    return None
                if value in values:
                    return not negated
                if has_null:
                    return None
                return negated

            return CompiledExpression(in_set_fn, BOOLEAN)

        def in_list_fn(row):
            value = of(row)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                item_value = item_fn(row)
                if item_value is None:
                    saw_null = True
                elif item_value == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return CompiledExpression(in_list_fn, BOOLEAN)

    def _compile_Like(self, expr: ast.Like) -> CompiledExpression:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        if not (operand.type.is_text or operand.type.kind is TypeKind.NULL):
            raise TypeCheckError(
                f"LIKE requires a text operand, got {operand.type}"
            )
        of, pf = operand.fn, pattern.fn
        negated = expr.negated

        def like_fn(row):
            result = like_matches(of(row), pf(row))
            if result is None:
                return None
            return not result if negated else result

        return CompiledExpression(like_fn, BOOLEAN)

    def _compile_FunctionCall(self, expr: ast.FunctionCall) -> CompiledExpression:
        if ast.is_aggregate_call(expr):
            raise BindError(
                f"aggregate {expr.name} is not allowed in this context "
                "(aggregates must appear in a grouped select list or HAVING)"
            )
        function = _SCALAR_FUNCTIONS.get(expr.name.upper())
        if function is None:
            raise BindError(f"unknown function {expr.name!r}")
        if not function.arity_min <= len(expr.args) <= function.arity_max:
            raise BindError(
                f"function {expr.name} expects between {function.arity_min} "
                f"and {function.arity_max} arguments, got {len(expr.args)}"
            )
        compiled_args = [self.compile(arg) for arg in expr.args]
        arg_fns = [arg.fn for arg in compiled_args]
        impl = function.impl
        result_type = function.result_type([arg.type for arg in compiled_args])
        return CompiledExpression(
            lambda row: impl([fn(row) for fn in arg_fns]), result_type
        )

    def _compile_CaseWhen(self, expr: ast.CaseWhen) -> CompiledExpression:
        branches = [
            (self.compile(cond).fn, self.compile(result))
            for cond, result in expr.whens
        ]
        else_compiled = (
            self.compile(expr.else_result)
            if expr.else_result is not None
            else None
        )
        result_type = _common_of_all(
            [result.type for _, result in branches]
            + ([else_compiled.type] if else_compiled else [])
        )
        compiled_branches = [(cond, result.fn) for cond, result in branches]
        else_fn = else_compiled.fn if else_compiled else None

        def case_fn(row):
            for cond_fn, result_fn in compiled_branches:
                if cond_fn(row) is True:
                    return result_fn(row)
            return else_fn(row) if else_fn else None

        return CompiledExpression(case_fn, result_type)

    def _compile_Extract(self, expr: ast.Extract) -> CompiledExpression:
        operand = self.compile(expr.operand)
        if operand.type.kind is not TypeKind.DATE:
            raise TypeCheckError(
                f"EXTRACT requires a DATE operand, got {operand.type}"
            )
        attr = expr.unit.lower()
        inner = operand.fn

        def extract_fn(row):
            value = inner(row)
            return None if value is None else getattr(value, attr)

        return CompiledExpression(extract_fn, INTEGER)

    def _compile_Cast(self, expr: ast.Cast) -> CompiledExpression:
        operand = self.compile(expr.operand)
        target = expr.target
        inner = operand.fn

        def cast_fn(row):
            value = inner(row)
            if value is None:
                return None
            return cast_value(value, target)

        return CompiledExpression(cast_fn, target)


def cast_value(value: object, target: SQLType) -> object:
    """Runtime CAST semantics for the supported kinds."""
    kind = target.kind
    try:
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            if isinstance(value, datetime.date):
                raise TypeCheckError("cannot cast DATE to integer")
            return int(value)
        if kind in (TypeKind.DOUBLE, TypeKind.DECIMAL):
            if isinstance(value, datetime.date):
                raise TypeCheckError("cannot cast DATE to numeric")
            return float(value)
        if kind in (TypeKind.VARCHAR, TypeKind.CHAR):
            if isinstance(value, datetime.date):
                return value.isoformat()
            text = str(value)
            if target.length is not None:
                return text[: target.length]
            return text
        if kind is TypeKind.DATE:
            if isinstance(value, datetime.date):
                return value
            return datetime.date.fromisoformat(str(value))
        if kind is TypeKind.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            text = str(value).strip().lower()
            if text in ("t", "true", "1", "yes"):
                return True
            if text in ("f", "false", "0", "no"):
                return False
            raise TypeCheckError(f"cannot cast {value!r} to BOOLEAN")
    except (ValueError, TypeError) as exc:
        raise ExecutionError(f"CAST failed for {value!r} -> {target}: {exc}")
    raise TypeCheckError(f"unsupported CAST target {target}")
