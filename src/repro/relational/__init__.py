"""Relational core: schemas, compiled expressions, and logical algebra.

This layer is shared between the single-node engines
(:mod:`repro.engine`) and the XDB cross-database optimizer
(:mod:`repro.core`): both operate on the same logical operator tree and
the same compiled-expression machinery.
"""

from repro.relational.schema import Field, Schema
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Alias,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SortKey,
    Union,
)

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "Alias",
    "Distinct",
    "Field",
    "Filter",
    "Join",
    "Limit",
    "LogicalPlan",
    "Project",
    "Scan",
    "Schema",
    "Sort",
    "SortKey",
    "Union",
]
