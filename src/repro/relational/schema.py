"""Schemas: ordered, optionally qualified, typed field lists.

A :class:`Field` is a column of an intermediate or stored relation; the
``relation`` qualifier is the *binding name* (table alias) it is visible
under, which is what qualified column references resolve against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import BindError, CatalogError
from repro.sql.types import SQLType


@dataclass(frozen=True)
class Field:
    """One column of a relation: qualifier, name, and SQL type."""

    name: str
    type: SQLType
    relation: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.relation}.{self.name}" if self.relation else self.name

    def renamed(self, name: str) -> "Field":
        return replace(self, name=name)

    def requalified(self, relation: Optional[str]) -> "Field":
        return replace(self, relation=relation)


class Schema:
    """An ordered collection of fields with name-resolution helpers."""

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        seen = set()
        for field in self.fields:
            key = (field.relation, field.name.lower())
            if key in seen:
                raise CatalogError(
                    f"duplicate column {field.qualified_name!r} in schema"
                )
            seen.add(key)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __getitem__(self, index: int) -> Field:
        return self.fields[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.qualified_name}:{f.type}" for f in self.fields)
        return f"Schema({cols})"

    @property
    def names(self) -> List[str]:
        return [field.name for field in self.fields]

    def resolve(self, name: str, relation: Optional[str] = None) -> int:
        """Index of the field matching ``[relation.]name``.

        Raises :class:`BindError` for unknown or ambiguous references.
        Matching is case-insensitive, like mainstream SQL engines.
        """
        name_lower = name.lower()
        relation_lower = relation.lower() if relation else None
        matches = [
            index
            for index, field in enumerate(self.fields)
            if field.name.lower() == name_lower
            and (
                relation_lower is None
                or (
                    field.relation is not None
                    and field.relation.lower() == relation_lower
                )
            )
        ]
        display = f"{relation}.{name}" if relation else name
        if not matches:
            raise BindError(f"unknown column {display!r}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column reference {display!r}")
        return matches[0]

    def field_of(self, name: str, relation: Optional[str] = None) -> Field:
        return self.fields[self.resolve(name, relation)]

    def relations(self) -> List[str]:
        """Distinct relation qualifiers present, in order of appearance."""
        seen: List[str] = []
        for field in self.fields:
            if field.relation is not None and field.relation not in seen:
                seen.append(field.relation)
        return seen

    def fields_of_relation(self, relation: str) -> List[Field]:
        relation_lower = relation.lower()
        return [
            field
            for field in self.fields
            if field.relation is not None
            and field.relation.lower() == relation_lower
        ]

    def row_width(self) -> int:
        """Estimated bytes per row; drives transfer accounting."""
        return sum(field.type.byte_width() for field in self.fields)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: this schema followed by ``other``."""
        return Schema(self.fields + other.fields)

    def requalified(self, relation: Optional[str]) -> "Schema":
        """All fields re-qualified under a single binding name."""
        return Schema(field.requalified(relation) for field in self.fields)

    def unqualified(self) -> "Schema":
        """All fields with their qualifier stripped (result schemas)."""
        return Schema(field.requalified(None) for field in self.fields)
