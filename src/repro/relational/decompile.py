"""Decompilation: logical plans back into SELECT ASTs.

This is the inverse of :mod:`repro.relational.builder` and the engine
room of the paper's delegation approach: a task's algebraic expression
is turned into the ``CREATE VIEW ... AS SELECT`` text that gets shipped
to a DBMS.  The mediator baselines use the same machinery to push
per-DBMS subqueries down.

The decompiler guarantees that the produced query's output columns match
``plan.schema`` in order and (uniquified) name, so placeholder scans on
the consuming side line up by position.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OptimizerError
from repro.relational import algebra
from repro.relational.builder import unique_names
from repro.sql import ast

_RefMap = Callable[[int], ast.Expression]


def plan_to_select(plan: algebra.LogicalPlan):
    """Decompile ``plan`` into an equivalent query AST (SELECT or
    UNION ALL)."""
    return _Decompiler().decompile(plan)


def _query_output_names(query) -> List[str]:
    """Output column names of a decompiled query AST."""
    if isinstance(query, ast.UnionAll):
        return _query_output_names(query.branches()[0])
    return [item.alias for item in query.items]


class _Decompiler:
    def __init__(self) -> None:
        self._alias_count = 0

    def _fresh_alias(self) -> str:
        self._alias_count += 1
        return f"sq_{self._alias_count}"

    # -- top level ----------------------------------------------------------

    def decompile(self, plan: algebra.LogicalPlan) -> ast.Select:
        limit: Optional[int] = None
        order_by: Tuple[ast.OrderItem, ...] = ()
        distinct = False
        sort_source: Optional[algebra.Sort] = None

        node = plan
        if isinstance(node, algebra.Limit):
            limit = node.count
            node = node.child
        if isinstance(node, algebra.Sort):
            sort_source = node
            node = node.child
        if isinstance(node, algebra.Distinct):
            distinct = True
            node = node.child

        if isinstance(node, algebra.Union):
            if not distinct:
                return self._decompile_union(node, sort_source, limit)
            # DISTINCT over a UNION ALL chain (e.g. over gathered
            # partition branches): UNION ALL syntax cannot carry the
            # distinctness, so wrap the union as a derived table under
            # a SELECT DISTINCT.
            subquery = self._decompile_union(node, None, None)
            alias = self._fresh_alias()
            names = _query_output_names(subquery)
            order_by = ()
            if sort_source is not None:

                def sort_ref(expr: ast.Expression) -> ast.Expression:
                    if isinstance(expr, ast.ColumnRef):
                        index = node.schema.resolve(expr.name, expr.table)
                        return ast.ColumnRef(names[index], alias)
                    return expr

                order_by = tuple(
                    ast.OrderItem(sort_ref(key.expr), key.ascending)
                    for key in sort_source.keys
                )
            return ast.Select(
                items=tuple(
                    ast.SelectItem(ast.ColumnRef(name, alias), name)
                    for name in names
                ),
                from_items=(ast.DerivedTable(subquery, alias),),
                order_by=order_by,
                limit=limit,
                distinct=True,
            )

        select = self._decompile_body(node)
        if sort_source is not None:
            order_by = tuple(
                ast.OrderItem(
                    self._rewrite_output_ref(key.expr, node, select),
                    key.ascending,
                )
                for key in sort_source.keys
            )
        return ast.Select(
            items=select.items,
            from_items=select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=order_by,
            limit=limit,
            distinct=distinct or select.distinct,
        )

    def _decompile_union(
        self,
        node: "algebra.Union",
        sort_source: Optional[algebra.Sort],
        limit: Optional[int],
    ):
        left = self.decompile(node.left)
        right = self.decompile(node.right)
        if not isinstance(right, ast.Select):
            # Right-nested unions: wrap as a derived table to stay in the
            # grammar's left-nested shape.
            right = ast.Select(
                items=(ast.SelectItem(ast.Star()),),
                from_items=(ast.DerivedTable(right, self._fresh_alias()),),
            )
        order_by = ()
        if sort_source is not None:
            order_by = tuple(
                ast.OrderItem(
                    self._union_sort_ref(key.expr, node), key.ascending
                )
                for key in sort_source.keys
            )
        return ast.UnionAll(left, right, order_by, limit)

    def _union_sort_ref(
        self, expr: ast.Expression, node: "algebra.Union"
    ) -> ast.Expression:
        if isinstance(expr, ast.ColumnRef):
            index = node.schema.resolve(expr.name, expr.table)
            return ast.ColumnRef(node.schema[index].name)
        return expr

    def _rewrite_output_ref(
        self,
        expr: ast.Expression,
        node: algebra.LogicalPlan,
        select: ast.Select,
    ) -> ast.Expression:
        """Rewrite a sort key over ``node.schema`` into an output-name ref."""
        if isinstance(expr, ast.ColumnRef):
            index = node.schema.resolve(expr.name, expr.table)
            item = select.items[index]
            name = item.alias
            if name is None and isinstance(item.expr, ast.ColumnRef):
                return item.expr
            if name is None:
                raise OptimizerError(
                    "cannot decompile sort key over unnamed output column"
                )
            return ast.ColumnRef(name)
        return expr

    def _decompile_body(self, node: algebra.LogicalPlan) -> ast.Select:
        having: Optional[ast.Expression] = None
        project: Optional[algebra.Project] = None

        if isinstance(node, algebra.Project):
            project = node
            node = node.child
        if isinstance(node, algebra.Filter) and isinstance(
            node.child, algebra.Aggregate
        ):
            having = node.predicate
            node = node.child

        if isinstance(node, algebra.Aggregate):
            return self._decompile_aggregate(node, project, having)
        if having is not None:
            raise OptimizerError("HAVING filter without aggregate")
        if project is not None:
            from_item, where, ref_of = self._block(project.child)
            items = tuple(
                ast.SelectItem(
                    self._rewrite(item.expr, project.child, ref_of),
                    item.name,
                )
                for item in project.items
            )
            return ast.Select(
                items=items, from_items=(from_item,), where=where
            )

        # Bare Scan / Filter / Join / Alias tree: emit an explicit column
        # list so output order and names are stable.
        from_item, where, ref_of = self._block(node)
        names = unique_names(node.schema.names)
        items = tuple(
            ast.SelectItem(ref_of(index), name)
            for index, name in enumerate(names)
        )
        return ast.Select(items=items, from_items=(from_item,), where=where)

    def _decompile_aggregate(
        self,
        aggregate: algebra.Aggregate,
        project: Optional[algebra.Project],
        having: Optional[ast.Expression],
    ) -> ast.Select:
        from_item, where, ref_of = self._block(aggregate.child)

        key_exprs = [
            self._rewrite(key.expr, aggregate.child, ref_of)
            for key in aggregate.keys
        ]
        agg_exprs: List[ast.Expression] = []
        for spec in aggregate.aggregates:
            if spec.arg is None:
                args: Tuple[ast.Expression, ...] = (ast.Star(),)
            else:
                args = (self._rewrite(spec.arg, aggregate.child, ref_of),)
            agg_exprs.append(
                ast.FunctionCall(spec.func, args, spec.distinct)
            )

        # Map the aggregate's output columns to SQL expressions so select
        # items / HAVING written over them can be inlined.
        output_expr: Dict[str, ast.Expression] = {}
        for key, expr in zip(aggregate.keys, key_exprs):
            output_expr[key.name.lower()] = expr
        for spec, expr in zip(aggregate.aggregates, agg_exprs):
            output_expr[spec.name.lower()] = expr

        def inline(expr: ast.Expression) -> ast.Expression:
            def replace(node: ast.Expression):
                if isinstance(node, ast.ColumnRef):
                    index = aggregate.schema.resolve(node.name, node.table)
                    field = aggregate.schema[index]
                    return output_expr[field.name.lower()]
                return None

            from repro.relational.builder import rebuild_expression

            return rebuild_expression(expr, replace)

        if project is not None:
            items = tuple(
                ast.SelectItem(inline(item.expr), item.name)
                for item in project.items
            )
        else:
            items = tuple(
                ast.SelectItem(expr, key.name)
                for key, expr in zip(aggregate.keys, key_exprs)
            ) + tuple(
                ast.SelectItem(expr, spec.name)
                for spec, expr in zip(aggregate.aggregates, agg_exprs)
            )

        return ast.Select(
            items=items,
            from_items=(from_item,),
            where=where,
            group_by=tuple(key_exprs),
            having=inline(having) if having is not None else None,
        )

    # -- FROM blocks ---------------------------------------------------------

    def _block(
        self, node: algebra.LogicalPlan
    ) -> Tuple[ast.FromItem, Optional[ast.Expression], _RefMap]:
        """Flatten ``node`` into (from_item, where, output-reference map)."""
        if isinstance(node, algebra.Scan):
            alias = node.binding if node.binding != node.table else None
            from_item = ast.TableRef((node.table,), alias)
            binding = node.binding

            def scan_ref(index: int) -> ast.Expression:
                return ast.ColumnRef(node.schema[index].name, binding)

            return from_item, None, scan_ref

        if isinstance(node, algebra.Filter):
            from_item, where, ref_of = self._block(node.child)
            predicate = self._rewrite(node.predicate, node.child, ref_of)
            combined = ast.conjoin(
                ast.conjuncts(where) + ast.conjuncts(predicate)
            )
            return from_item, combined, ref_of

        if isinstance(node, algebra.Join):
            left_item, left_where, left_ref = self._block(node.left)
            right_item, right_where, right_ref = self._block(node.right)
            left_width = len(node.left.schema)

            def join_ref(index: int) -> ast.Expression:
                if index < left_width:
                    return left_ref(index)
                return right_ref(index - left_width)

            condition = (
                self._rewrite(node.condition, node, join_ref)
                if node.condition is not None
                else None
            )
            if node.kind == "LEFT":
                if right_where is not None:
                    raise OptimizerError(
                        "cannot lift a filter out of a LEFT JOIN operand"
                    )
                from_item: ast.FromItem = ast.Join(
                    left_item, right_item, "LEFT", condition
                )
                return from_item, left_where, join_ref
            if condition is not None:
                from_item = ast.Join(left_item, right_item, "INNER", condition)
            else:
                from_item = ast.Join(left_item, right_item, "CROSS", None)
            where = ast.conjoin(
                ast.conjuncts(left_where) + ast.conjuncts(right_where)
            )
            return from_item, where, join_ref

        if isinstance(node, algebra.Alias):
            subquery = self.decompile(node.child)
            from_item = ast.DerivedTable(subquery, node.binding)
            names = _query_output_names(subquery)

            def alias_ref(index: int) -> ast.Expression:
                return ast.ColumnRef(names[index], node.binding)

            return from_item, None, alias_ref

        # Anything else (Project / Aggregate / Union / Sort / Limit /
        # Distinct deep inside a join) becomes a derived table.
        subquery = self.decompile(node)
        alias = self._fresh_alias()
        from_item = ast.DerivedTable(subquery, alias)
        names = _query_output_names(subquery)

        def derived_ref(index: int) -> ast.Expression:
            return ast.ColumnRef(names[index], alias)

        return from_item, None, derived_ref

    # -- expression rewriting ---------------------------------------------------

    def _rewrite(
        self,
        expr: ast.Expression,
        over: algebra.LogicalPlan,
        ref_of: _RefMap,
    ) -> ast.Expression:
        """Rewrite column refs over ``over.schema`` into block references."""
        from repro.relational.builder import rebuild_expression

        schema = over.schema

        def replace(node: ast.Expression):
            if isinstance(node, ast.ColumnRef):
                index = schema.resolve(node.name, node.table)
                return ref_of(index)
            return None

        return rebuild_expression(expr, replace)
