"""Binding: AST SELECT statements → logical plans.

The builder resolves table names through a :class:`TableResolver`
(implemented by engine catalogs and by XDB's global catalog), expands
views and derived tables, splits aggregates out of select lists, and
produces a :class:`repro.relational.algebra.LogicalPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BindError
from repro.relational import algebra
from repro.relational.schema import Schema
from repro.sql import ast


@dataclass
class ResolvedTable:
    """What a :class:`TableResolver` returns for a table reference.

    Exactly one of the payloads applies:

    * a *stored* relation: ``schema`` is set (``view_query`` is None);
    * a *view*: ``view_query`` holds the defining SELECT, which the
      builder expands in place.

    ``source_db`` names the DBMS the relation lives on (used by XDB's
    Rule 1 and by the engines' foreign-scan machinery); ``table`` is the
    canonical stored name.  ``replica_dbs`` lists every DBMS holding a
    copy when the relation is replicated (empty for the common
    single-holder case) — resolvers that know about replicas (XDB's
    global catalog) populate it so the annotator can route around a
    dead holder.
    """

    table: str
    schema: Optional[Schema] = None
    view_query: Optional[ast.Select] = None
    source_db: Optional[str] = None
    replica_dbs: Tuple[str, ...] = ()


class TableResolver:
    """Interface the builder uses to look up table references."""

    def resolve_table(self, parts: Tuple[str, ...]) -> ResolvedTable:
        raise NotImplementedError


def build_plan(query, resolver: TableResolver) -> algebra.LogicalPlan:
    """Bind a query (SELECT or UNION ALL) and return a logical plan."""
    if isinstance(query, ast.UnionAll):
        return _build_union(query, resolver)
    return _PlanBuilder(resolver).build(query)


def _build_union(
    union: ast.UnionAll, resolver: TableResolver
) -> algebra.LogicalPlan:
    left = build_plan(union.left, resolver)
    right = build_plan(union.right, resolver)
    plan: algebra.LogicalPlan = algebra.Union(left, right)
    if union.order_by:
        keys = []
        for order in union.order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(plan.schema):
                    raise BindError(
                        f"ORDER BY position {position} out of range"
                    )
                expr = ast.ColumnRef(plan.schema[position - 1].name)
            keys.append(algebra.SortKey(expr, order.ascending))
        plan = algebra.Sort(plan, keys)
    if union.limit is not None:
        plan = algebra.Limit(plan, union.limit)
    return plan


# ---------------------------------------------------------------------------
# expression rewriting helpers
# ---------------------------------------------------------------------------


def rebuild_expression(
    expr: ast.Expression, replace
) -> ast.Expression:
    """Structurally rebuild ``expr``, applying ``replace`` top-down.

    ``replace(node)`` returns a replacement node or ``None`` to recurse.
    """
    replacement = replace(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            rebuild_expression(expr.left, replace),
            rebuild_expression(expr.right, replace),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, rebuild_expression(expr.operand, replace))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(
            rebuild_expression(expr.operand, replace), expr.negated
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            rebuild_expression(expr.operand, replace),
            rebuild_expression(expr.low, replace),
            rebuild_expression(expr.high, replace),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            rebuild_expression(expr.operand, replace),
            tuple(rebuild_expression(item, replace) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            rebuild_expression(expr.operand, replace),
            rebuild_expression(expr.pattern, replace),
            expr.negated,
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(rebuild_expression(arg, replace) for arg in expr.args),
            expr.distinct,
        )
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            tuple(
                (
                    rebuild_expression(cond, replace),
                    rebuild_expression(result, replace),
                )
                for cond, result in expr.whens
            ),
            rebuild_expression(expr.else_result, replace)
            if expr.else_result is not None
            else None,
        )
    if isinstance(expr, ast.Extract):
        return ast.Extract(
            expr.unit, rebuild_expression(expr.operand, replace)
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(
            rebuild_expression(expr.operand, replace), expr.target
        )
    # Leaves (ColumnRef, Literal, IntervalLiteral, Star) are returned as-is.
    return expr


def substitute(
    expr: ast.Expression, mapping: Dict[ast.Expression, ast.Expression]
) -> ast.Expression:
    """Replace maximal subtrees structurally equal to a mapping key."""

    def replace(node: ast.Expression):
        return mapping.get(node)

    return rebuild_expression(expr, replace)


def collect_aggregates(expr: ast.Expression) -> List[ast.FunctionCall]:
    """All aggregate calls in ``expr`` (outermost only), in tree order."""
    found: List[ast.FunctionCall] = []

    def walk(node: ast.Expression) -> None:
        if ast.is_aggregate_call(node):
            found.append(node)  # type: ignore[arg-type]
            return
        for child in node.children():
            walk(child)

    walk(expr)
    return found


def unique_names(names: Sequence[str]) -> List[str]:
    """Make output column names unique (case-insensitive) via suffixes."""
    seen: Dict[str, int] = {}
    result: List[str] = []
    for name in names:
        key = name.lower()
        count = seen.get(key, 0)
        seen[key] = count + 1
        if count == 0:
            result.append(name)
        else:
            candidate = f"{name}_{count}"
            while candidate.lower() in seen:
                count += 1
                candidate = f"{name}_{count}"
            seen[candidate.lower()] = 1
            result.append(candidate)
    return result


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------


class _PlanBuilder:
    def __init__(self, resolver: TableResolver):
        self._resolver = resolver
        self._synthetic = 0

    def build(self, select: ast.Select) -> algebra.LogicalPlan:
        plan = self._build_from(select.from_items)

        if select.where is not None:
            plan = algebra.Filter(plan, select.where)

        items = self._expand_items(select.items, plan.schema)
        alias_map = {
            item.alias: item.expr for item in items if item.alias is not None
        }

        group_exprs = [
            self._resolve_against_aliases(g, alias_map) for g in select.group_by
        ]
        having = (
            self._resolve_against_aliases(select.having, alias_map)
            if select.having is not None
            else None
        )

        has_aggregates = (
            bool(group_exprs)
            or any(ast.contains_aggregate(item.expr) for item in items)
            or (having is not None and ast.contains_aggregate(having))
        )

        if has_aggregates:
            plan, items, having = self._build_aggregate(
                plan, items, group_exprs, having
            )
            if having is not None:
                plan = algebra.Filter(plan, having)
        elif having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        project_items = self._finalize_projection(items)
        plan = algebra.Project(plan, project_items)

        if select.distinct:
            plan = algebra.Distinct(plan)

        if select.order_by:
            keys = self._build_sort_keys(
                select.order_by, project_items, plan.schema
            )
            plan = algebra.Sort(plan, keys)

        if select.limit is not None:
            plan = algebra.Limit(plan, select.limit)

        return plan

    # -- FROM clause -----------------------------------------------------

    def _build_from(
        self, from_items: Sequence[ast.FromItem]
    ) -> algebra.LogicalPlan:
        if not from_items:
            raise BindError("queries without a FROM clause are not supported")
        plan = self._build_from_item(from_items[0])
        for item in from_items[1:]:
            plan = algebra.Join(
                plan, self._build_from_item(item), None, "CROSS"
            )
        return plan

    def _build_from_item(self, item: ast.FromItem) -> algebra.LogicalPlan:
        if isinstance(item, ast.TableRef):
            return self._build_table_ref(item)
        if isinstance(item, ast.DerivedTable):
            subplan = build_plan(item.query, self._resolver)
            return algebra.Alias(subplan, item.alias)
        if isinstance(item, ast.Join):
            left = self._build_from_item(item.left)
            right = self._build_from_item(item.right)
            return algebra.Join(left, right, item.condition, item.kind)
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _build_table_ref(self, ref: ast.TableRef) -> algebra.LogicalPlan:
        resolved = self._resolver.resolve_table(ref.parts)
        binding = ref.binding_name
        if resolved.view_query is not None:
            subplan = build_plan(resolved.view_query, self._resolver)
            return algebra.Alias(subplan, binding)
        if resolved.schema is None:
            raise BindError(
                f"resolver returned neither schema nor view for "
                f"{'.'.join(ref.parts)!r}"
            )
        return algebra.Scan(
            table=resolved.table,
            binding=binding,
            schema=resolved.schema,
            source_db=resolved.source_db,
            replica_dbs=resolved.replica_dbs,
        )

    # -- select list ------------------------------------------------------

    def _expand_items(
        self, items: Sequence[ast.SelectItem], schema: Schema
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                if item.expr.table is not None:
                    fields = schema.fields_of_relation(item.expr.table)
                    if not fields:
                        raise BindError(
                            f"unknown relation {item.expr.table!r} in "
                            f"{item.expr.table}.*"
                        )
                else:
                    fields = list(schema.fields)
                for field in fields:
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(field.name, field.relation),
                            None,
                        )
                    )
            else:
                expanded.append(item)
        if not expanded:
            raise BindError("empty select list")
        return expanded

    @staticmethod
    def _resolve_against_aliases(
        expr: ast.Expression, alias_map: Dict[str, ast.Expression]
    ) -> ast.Expression:
        """Expand select-list aliases referenced by GROUP BY / HAVING."""

        def replace(node: ast.Expression):
            if (
                isinstance(node, ast.ColumnRef)
                and node.table is None
                and node.name in alias_map
            ):
                return alias_map[node.name]
            return None

        return rebuild_expression(expr, replace)

    # -- aggregation -------------------------------------------------------

    def _build_aggregate(
        self,
        plan: algebra.LogicalPlan,
        items: List[ast.SelectItem],
        group_exprs: List[ast.Expression],
        having: Optional[ast.Expression],
    ):
        # 1. Collect distinct aggregate calls across select/having.
        agg_calls: List[ast.FunctionCall] = []
        for item in items:
            agg_calls.extend(collect_aggregates(item.expr))
        if having is not None:
            agg_calls.extend(collect_aggregates(having))
        unique_calls: List[ast.FunctionCall] = []
        for call in agg_calls:
            if call not in unique_calls:
                unique_calls.append(call)

        specs: List[algebra.AggregateSpec] = []
        call_to_ref: Dict[ast.Expression, ast.Expression] = {}
        for index, call in enumerate(unique_calls):
            name = f"agg_{index}"
            arg: Optional[ast.Expression]
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                arg = None
            elif len(call.args) == 1:
                arg = call.args[0]
            else:
                raise BindError(
                    f"aggregate {call.name} takes exactly one argument"
                )
            specs.append(
                algebra.AggregateSpec(call.name, arg, name, call.distinct)
            )
            call_to_ref[call] = ast.ColumnRef(name)

        # 2. Name the group keys.
        key_items: List[algebra.ProjectItem] = []
        key_to_ref: Dict[ast.Expression, ast.Expression] = {}
        used_key_names: List[str] = []
        for index, expr in enumerate(group_exprs):
            if isinstance(expr, ast.ColumnRef):
                name = expr.name
            else:
                alias = next(
                    (
                        item.alias
                        for item in items
                        if item.alias is not None and item.expr == expr
                    ),
                    None,
                )
                name = alias or f"key_{index}"
            if name.lower() in (n.lower() for n in used_key_names):
                name = f"{name}_{index}"
            used_key_names.append(name)
            key_items.append(algebra.ProjectItem(expr, name))
            if isinstance(expr, ast.ColumnRef):
                key_to_ref[expr] = expr  # still resolvable afterwards
            else:
                key_to_ref[expr] = ast.ColumnRef(name)

        aggregate = algebra.Aggregate(plan, key_items, specs)

        # 3. Rewrite select items / having over the aggregate's output.
        mapping: Dict[ast.Expression, ast.Expression] = {}
        mapping.update(call_to_ref)
        mapping.update(key_to_ref)

        new_items = [
            ast.SelectItem(substitute(item.expr, mapping), item.alias)
            for item in items
        ]
        new_having = substitute(having, mapping) if having is not None else None
        return aggregate, new_items, new_having

    # -- projection & ordering -----------------------------------------------

    def _finalize_projection(
        self, items: List[ast.SelectItem]
    ) -> List[algebra.ProjectItem]:
        raw_names: List[str] = []
        for index, item in enumerate(items):
            if item.alias:
                raw_names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                raw_names.append(item.expr.name)
            else:
                raw_names.append(f"col_{index}")
        names = unique_names(raw_names)
        return [
            algebra.ProjectItem(item.expr, name)
            for item, name in zip(items, names)
        ]

    def _build_sort_keys(
        self,
        order_by: Sequence[ast.OrderItem],
        project_items: Sequence[algebra.ProjectItem],
        schema: Schema,
    ) -> List[algebra.SortKey]:
        keys: List[algebra.SortKey] = []
        for order in order_by:
            expr = order.expr
            # ORDER BY <position>
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(project_items):
                    raise BindError(
                        f"ORDER BY position {position} out of range"
                    )
                expr = ast.ColumnRef(project_items[position - 1].name)
            else:
                # Replace references to projected expressions / aliases.
                mapping = {
                    item.expr: ast.ColumnRef(item.name)
                    for item in project_items
                    if not isinstance(item.expr, ast.ColumnRef)
                }
                expr = substitute(expr, mapping)
            keys.append(algebra.SortKey(expr, order.ascending))
        return keys
