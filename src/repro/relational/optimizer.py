"""Shared logical rewrites: filter pushdown, projection pruning, and
cost-based join reordering.

Both the local engine planners and XDB's cross-database logical
optimizer (§IV-B step 1) run these rewrites; they differ only in the
cardinality oracle they supply.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import BindError, OptimizerError
from repro.relational import algebra
from repro.relational.builder import rebuild_expression
from repro.relational.schema import Schema
from repro.sql import ast

# A cardinality oracle: unit plan -> estimated rows (>= 1).
CardinalityFn = Callable[[algebra.LogicalPlan], float]
# A distinct-count oracle: (unit plan, column name) -> ndv (>= 1).
NdvFn = Callable[[algebra.LogicalPlan, ast.ColumnRef], float]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _refs_resolve(schema: Schema, expr: ast.Expression) -> bool:
    """True if every column reference in ``expr`` binds in ``schema``."""
    for ref in ast.column_refs(expr):
        try:
            schema.resolve(ref.name, ref.table)
        except BindError:
            return False
    return True


def _rewrite_through_project(
    expr: ast.Expression, project: algebra.Project
) -> Optional[ast.Expression]:
    """Rewrite ``expr`` (over the project's output) over its input.

    Only succeeds when every referenced output column is a bare column
    reference (no computed columns involved).
    """
    out_schema = project.schema

    replaced: List[bool] = [True]

    def replace(node: ast.Expression):
        if isinstance(node, ast.ColumnRef):
            index = out_schema.resolve(node.name, node.table)
            source = project.items[index].expr
            if isinstance(source, ast.ColumnRef):
                return source
            replaced[0] = False
            return node
        return None

    result = rebuild_expression(expr, replace)
    return result if replaced[0] else None


def _rewrite_through_alias(
    expr: ast.Expression, alias: algebra.Alias
) -> Optional[ast.Expression]:
    """Rewrite refs ``alias.col`` into the child's own qualifiers."""
    out_schema = alias.schema
    child_schema = alias.child.schema

    def replace(node: ast.Expression):
        if isinstance(node, ast.ColumnRef):
            index = out_schema.resolve(node.name, node.table)
            child_field = child_schema[index]
            return ast.ColumnRef(child_field.name, child_field.relation)
        return None

    return rebuild_expression(expr, replace)


def _rewrite_through_aggregate(
    expr: ast.Expression, aggregate: algebra.Aggregate
) -> Optional[ast.Expression]:
    """Rewrite ``expr`` over the aggregate output into one over its input.

    Succeeds only when the expression touches group-key columns alone.
    """
    out_schema = aggregate.schema
    key_count = len(aggregate.keys)
    ok = [True]

    def replace(node: ast.Expression):
        if isinstance(node, ast.ColumnRef):
            index = out_schema.resolve(node.name, node.table)
            if index >= key_count:
                ok[0] = False
                return node
            return aggregate.keys[index].expr
        return None

    result = rebuild_expression(expr, replace)
    return result if ok[0] else None


# ---------------------------------------------------------------------------
# filter pushdown
# ---------------------------------------------------------------------------


def push_filters(plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
    """Push filter conjuncts as close to the scans as possible."""
    return _push(plan, [])


def _push(
    plan: algebra.LogicalPlan, pending: List[ast.Expression]
) -> algebra.LogicalPlan:
    """Rebuild ``plan`` with ``pending`` conjuncts pushed into it."""
    if isinstance(plan, algebra.Filter):
        return _push(plan.child, pending + ast.conjuncts(plan.predicate))

    if isinstance(plan, algebra.Join):
        left, right = plan.left, plan.right
        condition_conjuncts = ast.conjuncts(plan.condition)
        to_left: List[ast.Expression] = []
        to_right: List[ast.Expression] = []
        for_join: List[ast.Expression] = []
        above: List[ast.Expression] = []

        candidates = list(pending)
        if plan.kind == "INNER":
            candidates += condition_conjuncts
            condition_conjuncts = []

        for conjunct in candidates:
            on_left = _refs_resolve(left.schema, conjunct)
            on_right = _refs_resolve(right.schema, conjunct)
            if on_left and plan.kind in ("INNER", "LEFT", "CROSS"):
                to_left.append(conjunct)
            elif on_right and plan.kind in ("INNER", "CROSS"):
                to_right.append(conjunct)
            elif on_right and plan.kind == "LEFT":
                # Pushing below the null-padding side changes semantics.
                above.append(conjunct)
            elif _refs_resolve(plan.schema, conjunct):
                if plan.kind == "INNER" or plan.kind == "CROSS":
                    for_join.append(conjunct)
                else:
                    above.append(conjunct)
            else:
                above.append(conjunct)

        new_left = _push(left, to_left)
        new_right = _push(right, to_right)

        if plan.kind == "LEFT":
            new_plan: algebra.LogicalPlan = algebra.Join(
                new_left, new_right, plan.condition, "LEFT"
            )
        else:
            condition = ast.conjoin(for_join)
            kind = "INNER" if condition is not None else "CROSS"
            new_plan = algebra.Join(new_left, new_right, condition, kind)

        if above:
            new_plan = algebra.Filter(new_plan, ast.conjoin(above))
        return new_plan

    if isinstance(plan, algebra.Project):
        pushable: List[ast.Expression] = []
        stuck: List[ast.Expression] = []
        for conjunct in pending:
            rewritten = _rewrite_through_project(conjunct, plan)
            if rewritten is not None:
                pushable.append(rewritten)
            else:
                stuck.append(conjunct)
        new_plan = plan.with_children([_push(plan.child, pushable)])
        if stuck:
            new_plan = algebra.Filter(new_plan, ast.conjoin(stuck))
        return new_plan

    if isinstance(plan, algebra.Alias):
        rewritten = [
            _rewrite_through_alias(conjunct, plan) for conjunct in pending
        ]
        return plan.with_children([_push(plan.child, rewritten)])

    if isinstance(plan, algebra.Aggregate):
        pushable, stuck = [], []
        for conjunct in pending:
            rewritten = _rewrite_through_aggregate(conjunct, plan)
            if rewritten is not None:
                pushable.append(rewritten)
            else:
                stuck.append(conjunct)
        new_plan = plan.with_children([_push(plan.child, pushable)])
        if stuck:
            new_plan = algebra.Filter(new_plan, ast.conjoin(stuck))
        return new_plan

    if isinstance(plan, algebra.Limit):
        # Limits do not commute with filters; keep pending above them.
        inner = plan.with_children([_push(plan.child, [])])
        if pending:
            return algebra.Filter(inner, ast.conjoin(pending))
        return inner

    if isinstance(plan, (algebra.Sort, algebra.Distinct)):
        return plan.with_children([_push(plan.children()[0], pending)])

    # Scans and anything unknown: recurse into children, then apply.
    new_children = [_push(child, []) for child in plan.children()]
    new_plan = plan.with_children(new_children) if new_children else plan
    if pending:
        return algebra.Filter(new_plan, ast.conjoin(pending))
    return new_plan


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def prune_columns(plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
    """Insert projections over scans keeping only referenced columns."""
    required = {
        (field.relation, field.name.lower()) for field in plan.schema
    }
    return _prune(plan, required)


def _expr_requirements(
    expr: ast.Expression, schema: Schema
) -> Set[Tuple[Optional[str], str]]:
    needed = set()
    for ref in ast.column_refs(expr):
        index = schema.resolve(ref.name, ref.table)
        field = schema[index]
        needed.add((field.relation, field.name.lower()))
    return needed


def _prune(
    plan: algebra.LogicalPlan,
    required: Set[Tuple[Optional[str], str]],
) -> algebra.LogicalPlan:
    if isinstance(plan, algebra.Scan):
        keep = [
            field
            for field in plan.schema
            if (field.relation, field.name.lower()) in required
        ]
        if len(keep) == len(plan.schema) or not keep:
            return plan
        items = [
            algebra.ProjectItem(
                ast.ColumnRef(field.name, field.relation), field.name
            )
            for field in keep
        ]
        return algebra.Project(plan, items)

    if isinstance(plan, algebra.Filter):
        child_required = required | _expr_requirements(
            plan.predicate, plan.child.schema
        )
        return plan.with_children([_prune(plan.child, child_required)])

    if isinstance(plan, algebra.Join):
        child_required = set(required)
        if plan.condition is not None:
            child_required |= _expr_requirements(plan.condition, plan.schema)
        left_fields = {
            (field.relation, field.name.lower()) for field in plan.left.schema
        }
        left_required = {key for key in child_required if key in left_fields}
        right_fields = {
            (field.relation, field.name.lower())
            for field in plan.right.schema
        }
        right_required = {
            key for key in child_required if key in right_fields
        }
        return plan.with_children(
            [
                _prune(plan.left, left_required),
                _prune(plan.right, right_required),
            ]
        )

    if isinstance(plan, algebra.Project):
        child_required: Set[Tuple[Optional[str], str]] = set()
        for item in plan.items:
            child_required |= _expr_requirements(item.expr, plan.child.schema)
        return plan.with_children([_prune(plan.child, child_required)])

    if isinstance(plan, algebra.Aggregate):
        child_required = set()
        for key in plan.keys:
            child_required |= _expr_requirements(key.expr, plan.child.schema)
        for spec in plan.aggregates:
            if spec.arg is not None:
                child_required |= _expr_requirements(
                    spec.arg, plan.child.schema
                )
        return plan.with_children([_prune(plan.child, child_required)])

    if isinstance(plan, algebra.Sort):
        child_required = set(required)
        for key in plan.keys:
            child_required |= _expr_requirements(key.expr, plan.child.schema)
        return plan.with_children([_prune(plan.child, child_required)])

    if isinstance(plan, algebra.Alias):
        # Translate (binding, name) requirements to the child's fields.
        child_required = set()
        for index, field in enumerate(plan.schema):
            if (field.relation, field.name.lower()) in required:
                child_field = plan.child.schema[index]
                child_required.add(
                    (child_field.relation, child_field.name.lower())
                )
        pruned_child = _prune(plan.child, child_required)
        if len(pruned_child.schema) != len(plan.child.schema):
            # The child narrowed; rebuild the alias over the narrow child.
            return algebra.Alias(pruned_child, plan.binding)
        return plan.with_children([pruned_child])

    if isinstance(plan, (algebra.Limit, algebra.Distinct)):
        return plan.with_children([_prune(plan.children()[0], required)])

    new_children = [
        _prune(child, {(f.relation, f.name.lower()) for f in child.schema})
        for child in plan.children()
    ]
    return plan.with_children(new_children) if new_children else plan


# ---------------------------------------------------------------------------
# join reordering (Selinger-style left-deep DP)
# ---------------------------------------------------------------------------


@dataclass
class JoinRegion:
    """A maximal region of INNER/CROSS joins plus its predicate pool."""

    units: List[algebra.LogicalPlan]
    equi_edges: List[Tuple[int, int, ast.Expression]]
    complex_predicates: List[Tuple[FrozenSet[int], ast.Expression]]


def _unit_index(
    units: Sequence[algebra.LogicalPlan], expr: ast.Expression
) -> Optional[FrozenSet[int]]:
    """Which units an expression's references span (None if unresolvable)."""
    spanned: Set[int] = set()
    for ref in ast.column_refs(expr):
        found = None
        for index, unit in enumerate(units):
            try:
                unit.schema.resolve(ref.name, ref.table)
            except BindError:
                continue
            found = index
            break
        if found is None:
            return None
        spanned.add(found)
    return frozenset(spanned)


def collect_join_region(
    plan: algebra.LogicalPlan,
) -> Optional[Tuple[JoinRegion, List[ast.Expression]]]:
    """Flatten a tree of INNER/CROSS joins (with interleaved filters).

    Returns the region plus leftover predicates that could not be
    classified, or None when ``plan`` is not a reorderable join tree.
    """
    units: List[algebra.LogicalPlan] = []
    predicates: List[ast.Expression] = []

    def gather(node: algebra.LogicalPlan) -> bool:
        if isinstance(node, algebra.Join) and node.kind in ("INNER", "CROSS"):
            gather_ok = gather(node.left) and gather(node.right)
            if node.condition is not None:
                predicates.extend(ast.conjuncts(node.condition))
            return gather_ok
        if isinstance(node, algebra.Filter):
            # Filters between joins join the predicate pool.
            if isinstance(node.child, algebra.Join) and node.child.kind in (
                "INNER",
                "CROSS",
            ):
                predicates.extend(ast.conjuncts(node.predicate))
                return gather(node.child)
            units.append(node)
            return True
        units.append(node)
        return True

    if not (
        isinstance(plan, algebra.Join) and plan.kind in ("INNER", "CROSS")
    ):
        return None
    if not gather(plan):
        return None
    if len(units) < 2:
        return None

    equi_edges: List[Tuple[int, int, ast.Expression]] = []
    complex_predicates: List[Tuple[FrozenSet[int], ast.Expression]] = []
    leftover: List[ast.Expression] = []
    for predicate in predicates:
        span = _unit_index(units, predicate)
        if span is None:
            leftover.append(predicate)
        elif len(span) == 2 and _is_equi(predicate):
            first, second = sorted(span)
            equi_edges.append((first, second, predicate))
        elif len(span) <= 1:
            # Should have been pushed down already; treat as complex.
            complex_predicates.append((span, predicate))
        else:
            complex_predicates.append((span, predicate))
    region = JoinRegion(units, equi_edges, complex_predicates)
    return region, leftover


def _is_equi(predicate: ast.Expression) -> bool:
    return (
        isinstance(predicate, ast.BinaryOp)
        and predicate.op == "="
        and isinstance(predicate.left, ast.ColumnRef)
        and isinstance(predicate.right, ast.ColumnRef)
    )


def reorder_joins(
    plan: algebra.LogicalPlan,
    cardinality: CardinalityFn,
    ndv: NdvFn,
    shape: str = "left-deep",
) -> algebra.LogicalPlan:
    """Recursively reorder INNER/CROSS join regions by dynamic
    programming.

    ``cardinality`` estimates rows of a unit subplan; ``ndv`` estimates
    per-column distinct counts for join-selectivity computation.
    ``shape`` selects the search space: ``"left-deep"`` (the paper's
    restriction) or ``"bushy"`` (full partition DP — the paper's
    future-work extension, which increases pipeline parallelism).
    """
    if shape not in ("left-deep", "bushy"):
        raise OptimizerError(f"unknown plan shape {shape!r}")
    # First recurse into children so nested regions are handled.
    new_children = [
        reorder_joins(child, cardinality, ndv, shape)
        for child in plan.children()
    ]
    plan = plan.with_children(new_children) if new_children else plan

    collected = collect_join_region(plan)
    if collected is None:
        return plan
    region, leftover = collected
    if shape == "bushy":
        ordered = _dp_bushy(region, cardinality, ndv)
    else:
        ordered = _dp_order(region, cardinality, ndv)
    if leftover:
        ordered = algebra.Filter(ordered, ast.conjoin(leftover))
    return ordered


def _edge_stats(
    region: JoinRegion,
    cardinality: CardinalityFn,
    ndv: NdvFn,
) -> Tuple[
    List[float],
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int], List[ast.Expression]],
]:
    """Unit cardinalities plus per-pair selectivities and predicates."""
    units = region.units
    unit_rows = [max(cardinality(unit), 1.0) for unit in units]

    # Per-edge selectivity: 1 / max(ndv(left key), ndv(right key)).
    edge_selectivity: Dict[Tuple[int, int], float] = {}
    edges_between: Dict[Tuple[int, int], List[ast.Expression]] = {}
    for first, second, predicate in region.equi_edges:
        assert isinstance(predicate, ast.BinaryOp)
        left_ref, right_ref = predicate.left, predicate.right
        # Align refs with units.
        if not _resolves_in(units[first], left_ref):
            left_ref, right_ref = right_ref, left_ref
        sel = 1.0 / max(
            ndv(units[first], left_ref), ndv(units[second], right_ref), 1.0
        )
        key = (first, second)
        if key in edge_selectivity:
            # Multiple equi predicates between the same pair: compound key.
            edge_selectivity[key] *= sel
        else:
            edge_selectivity[key] = sel
        edges_between.setdefault(key, []).append(predicate)
    return unit_rows, edge_selectivity, edges_between


def _make_set_rows(
    unit_rows: List[float],
    edge_selectivity: Dict[Tuple[int, int], float],
):
    """Memoized Cout row estimator for unit subsets.

    Each subset's estimate is independent of how the DP decomposes it,
    so it is computed (units × applicable edge selectivities, clamped
    to ≥1 at the end) exactly once and cached by frozenset.
    """
    edge_items = list(edge_selectivity.items())
    memo: Dict[FrozenSet[int], float] = {}

    def set_rows(members: FrozenSet[int]) -> float:
        cached = memo.get(members)
        if cached is not None:
            return cached
        rows = 1.0
        for member in members:
            rows *= unit_rows[member]
        for (first, second), sel in edge_items:
            if first in members and second in members:
                rows *= sel
        rows = max(rows, 1.0)
        memo[members] = rows
        return rows

    return set_rows


def _adjacency(
    unit_count: int, edge_selectivity: Dict[Tuple[int, int], float]
) -> List[Set[int]]:
    """Per-unit neighbor sets over the equi-join graph."""
    neighbors: List[Set[int]] = [set() for _ in range(unit_count)]
    for first, second in edge_selectivity:
        neighbors[first].add(second)
        neighbors[second].add(first)
    return neighbors


def _dp_order(
    region: JoinRegion,
    cardinality: CardinalityFn,
    ndv: NdvFn,
) -> algebra.LogicalPlan:
    units = region.units
    unit_count = len(units)
    unit_rows, edge_selectivity, edges_between = _edge_stats(
        region, cardinality, ndv
    )
    set_rows = _make_set_rows(unit_rows, edge_selectivity)
    adjacency = _adjacency(unit_count, edge_selectivity)

    # Left-deep DP over subsets, avoiding cross products when possible.
    best: Dict[FrozenSet[int], Tuple[float, Tuple[int, ...]]] = {}
    for index in range(unit_count):
        best[frozenset([index])] = (0.0, (index,))

    for size in range(2, unit_count + 1):
        for members in map(frozenset, itertools.combinations(range(unit_count), size)):
            # ``set_rows(members)`` does not depend on which unit joins
            # last, so it is hoisted out of the candidate loop; entries
            # whose last join would be a cross product (no edge back
            # into the rest) are kept aside and only compete when no
            # connected candidate exists — same preference order as
            # before, fewer comparisons on the common path.
            rows_here: Optional[float] = None
            candidates: List[Tuple[float, Tuple[int, ...]]] = []
            disconnected: List[Tuple[float, Tuple[int, ...]]] = []
            for unit in members:
                rest = members - {unit}
                prev = best.get(rest)
                if prev is None:
                    continue
                if rows_here is None:
                    rows_here = set_rows(members)
                entry = (prev[0] + rows_here, prev[1] + (unit,))
                if size == 2 or not adjacency[unit].isdisjoint(rest):
                    candidates.append(entry)
                else:
                    disconnected.append(entry)
            pool = candidates or disconnected
            if pool:
                best[members] = min(pool)

    full = frozenset(range(unit_count))
    if full not in best:
        raise OptimizerError("join reordering failed to cover all units")
    order = best[full][1]

    # Build the left-deep tree, attaching predicates as they connect.
    remaining_complex = list(region.complex_predicates)
    used_edges: Set[Tuple[int, int]] = set()
    plan = units[order[0]]
    joined: Set[int] = {order[0]}
    for unit_index in order[1:]:
        conditions: List[ast.Expression] = []
        for member in joined:
            key = (min(member, unit_index), max(member, unit_index))
            if key in edges_between and key not in used_edges:
                conditions.extend(edges_between[key])
                used_edges.add(key)
        joined.add(unit_index)
        condition = ast.conjoin(conditions)
        kind = "INNER" if condition is not None else "CROSS"
        plan = algebra.Join(plan, units[unit_index], condition, kind)
        # Attach complex predicates once their span is covered.
        still_pending = []
        attach: List[ast.Expression] = []
        for span, predicate in remaining_complex:
            if span <= joined:
                attach.append(predicate)
            else:
                still_pending.append((span, predicate))
        remaining_complex = still_pending
        if attach:
            plan = algebra.Filter(plan, ast.conjoin(attach))

    if remaining_complex:
        plan = algebra.Filter(
            plan, ast.conjoin([p for _, p in remaining_complex])
        )
    return plan


def _resolves_in(unit: algebra.LogicalPlan, ref: ast.ColumnRef) -> bool:
    try:
        unit.schema.resolve(ref.name, ref.table)
    except BindError:
        return False
    return True


# ---------------------------------------------------------------------------
# bushy join ordering (full partition DP)
# ---------------------------------------------------------------------------


def _dp_bushy(
    region: JoinRegion,
    cardinality: CardinalityFn,
    ndv: NdvFn,
) -> algebra.LogicalPlan:
    """Full DP over subset partitions: bushy trees allowed.

    Bushy shapes let independent subtrees execute in parallel — the
    pipeline-parallelism benefit the paper's preliminary experiments
    observed (§IV-B footnote 5).  Cost metric is Cout, as in the
    left-deep DP, so the bushy result is never worse in estimated
    intermediate volume.
    """
    units = region.units
    unit_count = len(units)
    unit_rows, edge_selectivity, edges_between = _edge_stats(
        region, cardinality, ndv
    )
    set_rows = _make_set_rows(unit_rows, edge_selectivity)
    adjacency = _adjacency(unit_count, edge_selectivity)

    def connected(one: FrozenSet[int], other: FrozenSet[int]) -> bool:
        return any(
            not adjacency[member].isdisjoint(other) for member in one
        )

    # best[S] = (cost, split) where split is None for singletons or
    # (S1, S2) for a join of two best sub-plans.
    best: Dict[FrozenSet[int], Tuple[float, Optional[Tuple[FrozenSet[int], FrozenSet[int]]]]] = {}
    for index in range(unit_count):
        best[frozenset([index])] = (0.0, None)

    all_units = list(range(unit_count))
    for size in range(2, unit_count + 1):
        for members in map(frozenset, itertools.combinations(all_units, size)):
            rows_here = set_rows(members)
            candidates = []
            fallback = []
            member_list = sorted(members)
            anchor = member_list[0]
            # Enumerate partitions (S1 contains the anchor to dedupe).
            rest = [m for m in member_list if m != anchor]
            for bits in range(2 ** len(rest)):
                one = {anchor}
                for position, member in enumerate(rest):
                    if bits & (1 << position):
                        one.add(member)
                one_set = frozenset(one)
                other_set = members - one_set
                if not other_set:
                    continue
                one_best = best.get(one_set)
                other_best = best.get(other_set)
                if one_best is None or other_best is None:
                    continue
                cost = one_best[0] + other_best[0] + rows_here
                entry = (cost, (one_set, other_set))
                if connected(one_set, other_set):
                    candidates.append(entry)
                else:
                    fallback.append(entry)
            pool = candidates or fallback
            if pool:
                best[members] = min(
                    pool, key=lambda item: (item[0], sorted(item[1][0]))
                )

    full = frozenset(all_units)
    if full not in best:
        raise OptimizerError("bushy join ordering failed to cover all units")

    remaining_complex = list(region.complex_predicates)
    used_edges: Set[Tuple[int, int]] = set()

    def build(members: FrozenSet[int]) -> algebra.LogicalPlan:
        cost, split = best[members]
        del cost
        if split is None:
            (index,) = members
            return units[index]
        one_set, other_set = split
        left = build(one_set)
        right = build(other_set)
        conditions: List[ast.Expression] = []
        for a in one_set:
            for b in other_set:
                key = (min(a, b), max(a, b))
                if key in edges_between and key not in used_edges:
                    conditions.extend(edges_between[key])
                    used_edges.add(key)
        condition = ast.conjoin(conditions)
        kind = "INNER" if condition is not None else "CROSS"
        plan: algebra.LogicalPlan = algebra.Join(left, right, condition, kind)
        # Attach complex predicates once their span is covered here.
        nonlocal remaining_complex
        still_pending = []
        attach: List[ast.Expression] = []
        for span, predicate in remaining_complex:
            if span <= members:
                attach.append(predicate)
            else:
                still_pending.append((span, predicate))
        remaining_complex = still_pending
        if attach:
            plan = algebra.Filter(plan, ast.conjoin(attach))
        return plan

    plan = build(full)
    if remaining_complex:
        plan = algebra.Filter(
            plan, ast.conjoin([p for _, p in remaining_complex])
        )
    return plan
