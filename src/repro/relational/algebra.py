"""Logical relational algebra operators.

The same operator tree is used by the local engine planner and by XDB's
cross-database optimizer.  Nodes carry *AST* expressions (never compiled
closures) so any subtree can be decompiled back into SQL text — that is
the mechanism the delegation engine and the mediator baselines use to
push work into DBMSes.

Every node exposes:

* ``schema`` — the output :class:`~repro.relational.schema.Schema`;
* ``children()`` — input operators;
* ``with_children(new_children)`` — functional rewrite support;
* ``estimated_rows`` — an optimizer-filled cardinality slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import BindError, TypeCheckError
from repro.relational.expressions import compile_expression
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.types import BIGINT, DOUBLE, SQLType, TypeKind


class LogicalPlan:
    """Base class for logical operators."""

    schema: Schema
    estimated_rows: Optional[float]

    def __init__(self) -> None:
        self.estimated_rows = None

    def children(self) -> List["LogicalPlan"]:
        return []

    def with_children(
        self, children: Sequence["LogicalPlan"]
    ) -> "LogicalPlan":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    # -- debugging -------------------------------------------------------

    def label(self) -> str:
        """One-line description used by EXPLAIN-style output."""
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def leaves(self) -> List["Scan"]:
        """All scan leaves in this subtree, left to right."""
        if isinstance(self, Scan):
            return [self]
        found: List[Scan] = []
        for child in self.children():
            found.extend(child.leaves())
        return found


class Scan(LogicalPlan):
    """A leaf: scanning a stored relation (or a placeholder, see below).

    ``source_db`` records the DBMS the relation lives on — the annotation
    the XDB optimizer's Rule 1 starts from.  ``replica_dbs`` lists
    *every* DBMS holding a copy when the relation is replicated (it
    includes ``source_db``; empty means un-replicated) — Rule 1 picks
    the cheapest healthy holder, so losing one holder changes placement
    instead of failing the query.  ``placeholder`` marks the dummy
    operator the plan finalizer inserts at task boundaries (the "?" of
    the paper's notation).
    """

    def __init__(
        self,
        table: str,
        binding: str,
        schema: Schema,
        source_db: Optional[str] = None,
        placeholder: bool = False,
        requalify: bool = True,
        replica_dbs: Tuple[str, ...] = (),
        partition_of: Optional[str] = None,
        partition_index: Optional[int] = None,
    ):
        super().__init__()
        self.table = table
        self.binding = binding
        # Placeholder scans keep the producing task's field qualifiers so
        # the consumer task's expressions keep resolving unchanged.
        self.schema = schema.requalified(binding) if requalify else schema
        self.source_db = source_db
        self.replica_dbs = tuple(replica_dbs)
        self.placeholder = placeholder
        # Set by the partition expansion pass: the logical table this
        # scan is one shard of, and which shard.
        self.partition_of = partition_of
        self.partition_index = partition_index

    def label(self) -> str:
        where = f"@{self.source_db}" if self.source_db else ""
        mark = "?" if self.placeholder else self.table
        alias = f" AS {self.binding}" if self.binding != self.table else ""
        return f"Scan[{mark}{alias}]{where}"


class Filter(LogicalPlan):
    """Row selection by a boolean predicate."""

    def __init__(self, child: LogicalPlan, predicate: ast.Expression):
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        # Type-check eagerly so malformed predicates fail at plan time.
        compiled = compile_expression(predicate, child.schema)
        if compiled.type.kind not in (TypeKind.BOOLEAN, TypeKind.NULL):
            raise TypeCheckError(
                f"filter predicate must be boolean, got {compiled.type}"
            )

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        (child,) = children
        return Filter(child, self.predicate)

    def label(self) -> str:
        from repro.sql.render import render

        return f"Filter[{render(self.predicate)}]"


@dataclass(frozen=True)
class ProjectItem:
    """One output column of a projection: expression plus output name."""

    expr: ast.Expression
    name: str


class Project(LogicalPlan):
    """Column projection / computation.

    Items that are bare column references keep their relation qualifier in
    the output schema, so predicates above the projection can still use
    qualified names; computed columns are unqualified.
    """

    def __init__(self, child: LogicalPlan, items: Sequence[ProjectItem]):
        super().__init__()
        self.child = child
        self.items = tuple(items)
        fields = []
        for item in self.items:
            compiled = compile_expression(item.expr, child.schema)
            relation = None
            if isinstance(item.expr, ast.ColumnRef):
                index = child.schema.resolve(item.expr.name, item.expr.table)
                relation = child.schema[index].relation
            fields.append(Field(item.name, compiled.type, relation))
        self.schema = Schema(fields)

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def label(self) -> str:
        from repro.sql.render import render

        cols = ", ".join(
            render(item.expr)
            if isinstance(item.expr, ast.ColumnRef)
            and item.expr.name == item.name
            else f"{render(item.expr)} AS {item.name}"
            for item in self.items
        )
        return f"Project[{cols}]"


class Join(LogicalPlan):
    """A binary join; ``condition`` may be None for a cross join."""

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        condition: Optional[ast.Expression] = None,
        kind: str = "INNER",
    ):
        super().__init__()
        if kind not in ("INNER", "LEFT", "CROSS"):
            raise BindError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.schema = left.schema.concat(right.schema)
        if condition is not None:
            compiled = compile_expression(condition, self.schema)
            if compiled.type.kind not in (TypeKind.BOOLEAN, TypeKind.NULL):
                raise TypeCheckError(
                    f"join condition must be boolean, got {compiled.type}"
                )

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return Join(left, right, self.condition, self.kind)

    def equi_keys(
        self,
    ) -> Optional[List[Tuple[ast.ColumnRef, ast.ColumnRef]]]:
        """(left, right) column pairs if the condition is a pure equi-join.

        Returns None when any conjunct is not ``left_col = right_col``
        (those joins fall back to nested loops in the executor).
        """
        if self.condition is None:
            return None
        pairs: List[Tuple[ast.ColumnRef, ast.ColumnRef]] = []
        left_schema, right_schema = self.left.schema, self.right.schema
        for conjunct in ast.conjuncts(self.condition):
            if not (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
            ):
                return None
            first, second = conjunct.left, conjunct.right
            if _resolves(left_schema, first) and _resolves(right_schema, second):
                pairs.append((first, second))
            elif _resolves(left_schema, second) and _resolves(
                right_schema, first
            ):
                pairs.append((second, first))
            else:
                return None
        return pairs

    def label(self) -> str:
        from repro.sql.render import render

        condition = render(self.condition) if self.condition else "true"
        return f"Join[{self.kind} ON {condition}]"


def _resolves(schema: Schema, ref: ast.ColumnRef) -> bool:
    try:
        schema.resolve(ref.name, ref.table)
    except BindError:
        return False
    return True


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: function, argument (None = COUNT(*)), output name."""

    func: str
    arg: Optional[ast.Expression]
    name: str
    distinct: bool = False

    def result_type(self, input_schema: Schema) -> SQLType:
        if self.func == "COUNT":
            return BIGINT
        if self.arg is None:
            raise BindError(f"{self.func} requires an argument")
        arg_type = compile_expression(self.arg, input_schema).type
        if self.func == "AVG":
            return DOUBLE
        if self.func == "SUM":
            if arg_type.kind is TypeKind.INTEGER:
                return BIGINT
            return arg_type
        if self.func in ("MIN", "MAX"):
            return arg_type
        raise BindError(f"unknown aggregate function {self.func!r}")


class Aggregate(LogicalPlan):
    """Hash aggregation: group keys plus aggregate computations.

    The output schema is ``[key_0..key_n, agg_0..agg_m]`` with key fields
    keeping the qualifier of simple column references.
    """

    def __init__(
        self,
        child: LogicalPlan,
        keys: Sequence[ProjectItem],
        aggregates: Sequence[AggregateSpec],
    ):
        super().__init__()
        self.child = child
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)
        fields = []
        for key in self.keys:
            compiled = compile_expression(key.expr, child.schema)
            relation = None
            if isinstance(key.expr, ast.ColumnRef):
                index = child.schema.resolve(key.expr.name, key.expr.table)
                relation = child.schema[index].relation
            fields.append(Field(key.name, compiled.type, relation))
        for spec in self.aggregates:
            fields.append(Field(spec.name, spec.result_type(child.schema)))
        self.schema = Schema(fields)

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.keys, self.aggregates)

    def label(self) -> str:
        keys = ", ".join(key.name for key in self.keys)
        aggs = ", ".join(
            f"{spec.func}({'*' if spec.arg is None else ''})->{spec.name}"
            for spec in self.aggregates
        )
        return f"Aggregate[keys=({keys}) aggs=({aggs})]"


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY key (an expression over the child schema)."""

    expr: ast.Expression
    ascending: bool = True


class Sort(LogicalPlan):
    """Total ordering of the child by a key list."""

    def __init__(self, child: LogicalPlan, keys: Sequence[SortKey]):
        super().__init__()
        self.child = child
        self.keys = tuple(keys)
        self.schema = child.schema
        for key in self.keys:
            compile_expression(key.expr, child.schema)

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def label(self) -> str:
        from repro.sql.render import render

        keys = ", ".join(
            render(key.expr) + ("" if key.ascending else " DESC")
            for key in self.keys
        )
        return f"Sort[{keys}]"


class Limit(LogicalPlan):
    """Keep the first ``count`` rows of the child."""

    def __init__(self, child: LogicalPlan, count: int):
        super().__init__()
        self.child = child
        self.count = count
        self.schema = child.schema

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def label(self) -> str:
        return f"Limit[{self.count}]"


class Distinct(LogicalPlan):
    """Duplicate elimination over whole rows."""

    def __init__(self, child: LogicalPlan):
        super().__init__()
        self.child = child
        self.schema = child.schema

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return Distinct(child)


class Union(LogicalPlan):
    """``UNION ALL`` of two positionally compatible inputs.

    Output columns take the left input's names (unqualified); types are
    widened to the per-position common supertype.  An explicit
    ``schema`` overrides that default — the partition expansion pass
    gathers identical branches and must keep their *qualified* field
    names so expressions above the union keep resolving.
    """

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        schema: Optional[Schema] = None,
    ):
        super().__init__()
        if len(left.schema) != len(right.schema):
            raise TypeCheckError(
                f"UNION ALL branches have different arities: "
                f"{len(left.schema)} vs {len(right.schema)}"
            )
        self.explicit_schema = schema is not None
        if schema is not None:
            if len(schema) != len(left.schema):
                raise TypeCheckError(
                    f"UNION ALL explicit schema has arity {len(schema)}, "
                    f"branches have {len(left.schema)}"
                )
            self.schema = schema
        else:
            from repro.sql.types import common_supertype

            fields = []
            for left_field, right_field in zip(left.schema, right.schema):
                fields.append(
                    Field(
                        left_field.name,
                        common_supertype(left_field.type, right_field.type),
                    )
                )
            self.schema = Schema(fields)
        self.left = left
        self.right = right

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Union":
        left, right = children
        return Union(
            left, right, schema=self.schema if self.explicit_schema else None
        )

    def label(self) -> str:
        return "UnionAll"


class Alias(LogicalPlan):
    """Re-binds the child's output under a new relation name.

    Used for derived tables and view expansion: the child keeps its own
    internal naming while the outer query sees ``binding.column``.
    """

    def __init__(self, child: LogicalPlan, binding: str):
        super().__init__()
        self.child = child
        self.binding = binding
        self.schema = child.schema.requalified(binding)

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Alias":
        (child,) = children
        return Alias(child, self.binding)

    def label(self) -> str:
        return f"Alias[{self.binding}]"
