"""ScleraDB-like baseline (§VI-B).

Sclera also executes joins "in-situ" on the underlying DBMSes, but —
per the paper's analysis — it (i) moves **every** intermediate table
explicitly, (ii) relays each movement **through its mediator** (so each
intermediate crosses the network twice), and (iii) places each join by
a simple heuristic (the left input's DBMS) rather than by cost.  The
combination costs it up to ~30× against XDB.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.mediator import BaselineReport
from repro.connect.connector import DBMSConnector
from repro.core.annotate import Annotation
from repro.core.catalog import GlobalCatalog
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.plan import Movement
from repro.engine.cost import CardinalityEstimator, CostModel
from repro.errors import OptimizerError
from repro.federation.deployment import Deployment
from repro.net.metrics import summarize
from repro.relational import algebra
from repro.relational.decompile import plan_to_select
from repro.sql import ast
from repro.sql.parser import parse_statement


class ScleraSystem:
    """Naive in-situ execution with mediator-relayed explicit movement."""

    name = "Sclera"
    protocol = "jdbc"

    def __init__(self, deployment: Deployment):
        self.deployment = deployment
        self.connectors: Dict[str, DBMSConnector] = {
            name: DBMSConnector(
                connector.database,
                deployment.network,
                deployment.middleware_node,
                protocol=self.protocol,
            )
            for name, connector in deployment.connectors.items()
        }
        self.catalog = GlobalCatalog(self.connectors)
        self.optimizer = LogicalOptimizer(self.catalog)
        self.finalizer = PlanFinalizer()
        self._temp_counter = 0

    # -- heuristic annotation: left input's DBMS, always explicit ----------

    def _annotate(self, plan: algebra.LogicalPlan) -> Annotation:
        annotation = Annotation()
        self._annotate_node(plan, annotation)
        return annotation

    def _annotate_node(
        self, node: algebra.LogicalPlan, annotation: Annotation
    ) -> str:
        if isinstance(node, algebra.Scan):
            if node.source_db is None:
                raise OptimizerError(
                    f"scan of {node.table!r} lacks a source DBMS"
                )
            annotation.bind_node(node, node.source_db)
            return node.source_db
        children = node.children()
        child_dbs = [
            self._annotate_node(child, annotation) for child in children
        ]
        db = child_dbs[0]  # unary inherit; binary: the LEFT input's DBMS
        annotation.bind_node(node, db)
        for child, child_db in zip(children, child_dbs):
            movement = (
                Movement.IMPLICIT
                if child_db == db
                else Movement.EXPLICIT
            )
            annotation.bind_edge(child, node, movement)
        return db

    # -- execution -----------------------------------------------------------

    def run(self, query: str) -> BaselineReport:
        network = self.deployment.network
        ledger = network.log
        mark = len(ledger)

        select = parse_statement(query)
        if not isinstance(select, ast.QUERY_STATEMENTS):
            raise OptimizerError("Sclera accepts SELECT queries only")
        plan = self.optimizer.optimize(select)
        annotation = self._annotate(plan)
        dplan = self.finalizer.finalize(plan, annotation)

        # Fully serialized chain: compute each task, relay its result
        # through the mediator to the consumer, materialize, continue.
        total_seconds = 0.0
        processing_seconds = 0.0
        transfer_seconds = 0.0
        created: List[tuple] = []
        results: Dict[int, object] = {}

        for task in dplan.topological():
            connector = self.connectors[task.annotation]
            for edge in dplan.in_edges(task):
                child = dplan.tasks[edge.producer_id]
                child_result = results[edge.producer_id]
                self._temp_counter += 1
                temp_name = f"sclera_tmp_{self._temp_counter}"
                # Relay through the mediator: child db -> mediator node
                # happened at fetch time; mediator -> consumer now.
                connector.push_rows(
                    temp_name,
                    child_result.schema,
                    child_result.rows,
                    tag=f"sclera-ship:{edge.producer_id}",
                )
                created.append((task.annotation, temp_name))
                self._resolve_placeholder(task, edge.placeholder, temp_name)
                child_connector = self.connectors[child.annotation]
                leg_in = network.transfer_time(
                    child_connector.node,
                    self.deployment.middleware_node,
                    child_result.byte_size(),
                )
                leg_out = network.transfer_time(
                    self.deployment.middleware_node,
                    connector.node,
                    child_result.byte_size(),
                )
                transfer_seconds += leg_in + leg_out
                transfer_seconds += self._relay_seconds(
                    len(child_result), connector
                )

            subquery = plan_to_select(task.expr)
            if dplan.root_id == task.task_id:
                result = connector.run_query(
                    subquery, self.deployment.client_node
                )
            else:
                result = connector.fetch(
                    subquery, tag=f"sclera-fetch:{task.task_id}"
                )
            results[task.task_id] = result
            processing_seconds += self._task_seconds(task, connector)

        total_seconds = processing_seconds + transfer_seconds
        root_result = results[dplan.root_id]

        for db, temp_name in created:
            self.connectors[db].database.execute(
                f"DROP TABLE IF EXISTS {temp_name}"
            )

        return BaselineReport(
            system=self.name,
            result=root_result,
            total_seconds=total_seconds,
            processing_seconds=processing_seconds,
            transfer_seconds=transfer_seconds,
            transfers=summarize(ledger[mark:]),
            subquery_count=dplan.task_count(),
        )

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _resolve_placeholder(task, placeholder: str, table: str) -> None:
        for scan in task.expr.leaves():
            if scan.placeholder and scan.binding == placeholder:
                scan.table = table
                scan.placeholder = False
                return
        raise OptimizerError(
            f"placeholder {placeholder!r} missing in Sclera task"
        )

    def _relay_seconds(self, rows: int, consumer: DBMSConnector) -> float:
        """Per-row cost of relaying an intermediate through the mediator.

        The mediator deserializes the producer's stream (JDBC) and the
        consumer ingests and materializes it — every intermediate pays
        both legs, which is the bulk of Sclera's ~30× penalty.
        """
        from repro.engine.fdw import PROTOCOL_CPU_FACTORS
        from repro.engine.profiles import profile_for

        factor = PROTOCOL_CPU_FACTORS[self.protocol]
        mediator_profile = profile_for("postgres")
        mediator_leg = mediator_profile.cost_to_seconds(
            rows * mediator_profile.foreign_fetch_cost_per_row * factor
        )
        consumer_profile = consumer.profile
        consumer_leg = consumer_profile.cost_to_seconds(
            rows
            * (
                consumer_profile.foreign_fetch_cost_per_row * factor
                + consumer_profile.seq_scan_cost_per_row
            )
            + consumer_profile.startup_cost * 5
        )
        return mediator_leg + consumer_leg

    def _task_seconds(self, task, connector: DBMSConnector) -> float:
        database = connector.database
        estimator = CardinalityEstimator(database.planner.scan_stats)
        cost = CostModel(database.profile).plan_cost(task.expr, estimator)
        return database.profile.startup_latency + (
            database.profile.cost_to_seconds(cost)
        )
