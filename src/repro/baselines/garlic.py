"""Garlic-like baseline (§VI-A): a single-node PostgreSQL mediator.

Follows the paper's implementation: the mediator connects to the
sources through its SQL/MED capabilities with binary transfer, pushes
selections, projections, and co-located joins down, and performs all
cross-database operations itself.
"""

from __future__ import annotations

from repro.baselines.mediator import MediatorSystem


class GarlicSystem(MediatorSystem):
    """Single-node mediator, binary protocol, co-located-join pushdown."""

    name = "Garlic"
    protocol = "binary"
    pushdown_colocated_joins = True
    mediator_profile = "postgres"
    workers = 1
