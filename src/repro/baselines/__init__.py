"""Baseline systems the paper compares against (§VI).

All three are mediator-based and reuse XDB's front end (parser, global
catalog, logical optimizer) so that performance differences come from
the *execution architecture*, exactly as in the paper:

* :class:`~repro.baselines.garlic.GarlicSystem` — single-node
  PostgreSQL-style mediator; pushes selections, projections, and
  co-located joins; binary transfer protocol.
* :class:`~repro.baselines.presto.PrestoSystem` — scale-out mediator
  with W workers; per-table pushdown only; JDBC connectors.
* :class:`~repro.baselines.sclera.ScleraSystem` — "naive in-situ":
  joins run on the DBMSes but every intermediate is explicitly
  relayed through the mediator.
"""

from repro.baselines.garlic import GarlicSystem
from repro.baselines.mediator import BaselineReport, MediatorSystem
from repro.baselines.presto import PrestoSystem
from repro.baselines.sclera import ScleraSystem

__all__ = [
    "BaselineReport",
    "GarlicSystem",
    "MediatorSystem",
    "PrestoSystem",
    "ScleraSystem",
]
