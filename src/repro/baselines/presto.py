"""Presto/Trino-like baseline (§VI-A): a scale-out MW system.

Defining characteristics reproduced from the paper:

* JDBC connectors — per-row text serialization makes the transfer
  share *larger* than Garlic's despite the same logical data volume;
* per-table pushdown only (filters/projections; never joins, even
  co-located ones);
* cross-database operators run on a W-worker mediator cluster —
  scaling W speeds up the "actual" processing but does nothing for the
  centralized data movement (the Fig. 11 effect).
"""

from __future__ import annotations

from repro.baselines.mediator import MediatorSystem
from repro.federation.deployment import Deployment


class PrestoSystem(MediatorSystem):
    """Scale-out mediator with JDBC connectors."""

    name = "Presto"
    protocol = "jdbc"
    pushdown_colocated_joins = False
    mediator_profile = "postgres"

    def __init__(
        self,
        deployment: Deployment,
        workers: int = 4,
        mediator_name: str = None,
    ):
        self.workers = workers
        super().__init__(
            deployment,
            mediator_name=mediator_name or f"presto_mediator_{workers}w",
        )
        self.name = f"Presto({workers}w)"
